/**
 * @file
 * E7 — paper §6 / reference [13]: the MPEG2 8x8 texture pipeline.
 * The two-slot SUPER_DUALIMIX operation folds each 2-tap butterfly
 * MAC (two multiplies plus an add/subtract) into one operation pair;
 * the paper reports ~50% improvement for the texture pipeline.
 */

#include <cstdio>

#include "support/logging.hh"

#include "tir/scheduler.hh"
#include "workloads/texture.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    std::printf("E7 / ref [13]: MPEG2 texture pipeline, %u rows of "
                "paired 8-point butterflies (TM3270)\n",
                texture_geom::numRows);
    std::printf("%-28s %10s %10s %8s %8s\n", "variant", "cycles", "ops",
                "OPI", "gain");

    double base = 0;
    for (bool two_slot : {false, true}) {
        System sys(tm3270Config());
        stageTexture(sys, 17);
        tir::CompiledProgram cp =
            tir::compile(buildTexturePipeline(two_slot), tm3270Config());
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!r.halted || !verifyTexture(sys, 17, err))
            fatal("texture kernel failed: %s", err.c_str());
        if (base == 0)
            base = double(r.cycles);
        std::printf("%-28s %10llu %10llu %8.2f %8.2f\n",
                    two_slot ? "SUPER_DUALIMIX (two-slot)"
                             : "scalar multiplies",
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.ops), r.opi(),
                    base / double(r.cycles));
    }
    std::printf("(paper: new operations improve the 8x8 texture "
                "pipeline by 50%%)\n");
    return 0;
}
