/**
 * @file
 * E3 — paper Fig. 3 / §2.3: memory-region based prefetching for
 * block-based image processing.
 *
 * An image of bytes is processed at 4x4 block granularity, blocks
 * left-to-right and top-down. Three prefetch settings are compared on
 * the TM3270:
 *   - no prefetching;
 *   - traditional next-sequential line prefetch (stride = 128, the
 *     line size);
 *   - region prefetch with stride = image width * block height, so
 *     the row of blocks below is fetched while the current row is
 *     processed (the paper's Figure 3 pattern).
 *
 * The three modes run as one SweepDriver submission: they share a
 * single compiled program through the ProgramCache (the kernel and
 * configuration are identical; only the MMIO region setup in each
 * job's init differs).
 */

#include <cstdio>

#include "driver/sweep.hh"
#include "support/logging.hh"
#include "support/prof.hh"
#include "tir/builder.hh"

using namespace tm3270;
using tir::Builder;
using tir::VReg;

namespace
{

constexpr unsigned W = 512;
constexpr unsigned H = 256;
constexpr unsigned blockH = 4;
constexpr Addr img = 0x00100000;
constexpr Addr out = 0x00200000;

tir::TirProgram
buildBlockKernel()
{
    Builder b;
    VReg py = b.var(); ///< current block-row base
    VReg po = b.var();
    VReg yend = b.var();
    b.assign(py, b.imm32(int32_t(img)));
    b.assign(po, b.imm32(int32_t(out)));
    b.assign(yend, b.imm32(int32_t(img + W * H)));

    int row_loop = b.newBlock();
    int col_loop = b.newBlock();
    int row_next = b.newBlock();
    int done = b.newBlock();

    b.setBlock(0);
    b.jmpi(row_loop);

    b.setBlock(row_loop);
    VReg px = b.var();
    VReg xend = b.var();
    b.assign(px, py);
    b.assign(xend, b.iadd(py, b.imm32(int32_t(W))));
    b.jmpi(col_loop);

    b.setBlock(col_loop);
    {
        // One 4x4 block: four word loads, a reduction, and some
        // block-level processing work.
        VReg w0 = b.ld32d(px, 0);
        VReg w1 = b.ld32d(px, int32_t(W));
        VReg w2 = b.ld32d(px, int32_t(2 * W));
        VReg w3 = b.ld32d(px, int32_t(3 * W));
        VReg s0 = b.ume8uu(w0, b.zero());
        VReg s1 = b.ume8uu(w1, b.zero());
        VReg s2 = b.ume8uu(w2, b.zero());
        VReg s3 = b.ume8uu(w3, b.zero());
        VReg sum = b.iadd(b.iadd(s0, s1), b.iadd(s2, s3));
        // Block processing: a short dependent computation.
        VReg t = b.ixor(b.imul(sum, b.imm32(2654435761)),
                        b.lsri(sum, 3));
        t = b.iadd(t, b.quadavg(w0, w3));
        b.st32r(t, po, b.zero());
        b.assign(po, b.iaddi(po, 4));
        b.assign(px, b.iaddi(px, 4));
        VReg more = b.ilesu(px, xend);
        b.jmpt(more, col_loop);
    }

    b.setBlock(row_next);
    {
        b.assign(py, b.iadd(py, b.imm32(int32_t(W * blockH))));
        VReg more = b.ilesu(py, yend);
        b.jmpt(more, row_loop);
    }

    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

struct Mode
{
    const char *name;
    int32_t stride; ///< 0 = no prefetch
};

/** The block kernel as a sweep workload; @p stride configures the
 *  prefetch region during init. The name is mode-independent so every
 *  mode shares one ProgramCache cell. */
workloads::Workload
blockWorkload(int32_t stride)
{
    workloads::Workload w;
    w.name = "blockproc";
    w.description = "4x4 block processing (Figure 3)";
    w.build = buildBlockKernel;
    w.init = [stride](System &sys) {
        workloads::fillRandom(sys, img, W * H, 42);
        if (stride != 0) {
            sys.processor.lsu().prefetcher().setRegion(0, img,
                                                       img + W * H,
                                                       stride);
        }
    };
    w.verify = [](System &, std::string &) { return true; };
    return w;
}

} // namespace

int
main()
{
    prof::attach(prof::envProfiler());
    const Mode modes[] = {
        {"no prefetch", 0},
        {"next-sequential (stride 128)", 128},
        {"region, stride = width*4", int32_t(W * blockH)},
    };

    std::printf("E3 / Figure 3: region prefetching, %ux%u image, 4x4 "
                "blocks (TM3270)\n",
                W, H);
    std::printf("%-30s %10s %10s %10s %10s %8s\n", "mode", "cycles",
                "stalls", "misses", "pf-useful", "speedup");

    std::vector<driver::SimJob> jobs;
    for (const Mode &m : modes)
        jobs.push_back(driver::makeJob(blockWorkload(m.stride), 'D',
                                       tm3270Config(), m.name));

    driver::SweepDriver drv;
    driver::SweepReport rep = drv.run(jobs);

    int ret = 0;
    double base_cycles = 0;
    for (size_t i = 0; i < std::size(modes); ++i) {
        const driver::JobResult &jr = rep.results[i];
        if (!jr.ok) {
            // Through the WarnSink, so failure reports stay
            // serialized with any sweep-worker warnings.
            warn("FAILED %s: %s", jr.tag.c_str(), jr.error.c_str());
            ret = 1;
            continue;
        }
        if (i == 0)
            base_cycles = double(jr.run.cycles);
        auto stat = [&jr](const char *name) {
            auto it = jr.stats.find(name);
            return it == jr.stats.end() ? uint64_t(0) : it->second;
        };
        std::printf("%-30s %10llu %10llu %10llu %10llu %8.2f\n",
                    modes[i].name,
                    static_cast<unsigned long long>(jr.run.cycles),
                    static_cast<unsigned long long>(jr.run.stallCycles),
                    static_cast<unsigned long long>(
                        stat("lsu.load_line_misses")),
                    static_cast<unsigned long long>(
                        stat("lsu.prefetch_useful")),
                    base_cycles / double(jr.run.cycles));
    }
    std::printf("(paper: with the row-of-blocks stride, processing "
                "incurs no stall cycles once prefetch keeps ahead)\n");
    std::printf("sweep: %llu compile(s) for %zu jobs (%llu cache "
                "hits)\n",
                static_cast<unsigned long long>(rep.cacheMisses),
                jobs.size(),
                static_cast<unsigned long long>(rep.cacheHits));
    driver::writeSweepReport(rep, "prefetch", "BENCH_prefetch.json");
    return ret;
}
