/**
 * @file
 * E8 — paper §6 / reference [14]: temporal video up-conversion.
 * A motion-compensated field is interpolated between the previous and
 * next fields with half-pel horizontal vectors. The paper reports
 * ~40% improvement from the new operations and a further ~20% from
 * data prefetching.
 */

#include <cstdio>

#include "support/logging.hh"

#include "tir/scheduler.hh"
#include "workloads/upconv.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    struct Variant
    {
        const char *name;
        UpconvFlags flags;
    };
    const Variant variants[] = {
        {"baseline (portable subset)", {false, false}},
        {"+ new operations (LD_FRAC8)", {true, false}},
        {"+ region prefetching", {true, true}},
    };

    std::printf("E8 / ref [14]: temporal up-conversion, %ux%u fields "
                "(TM3270)\n",
                upconv_geom::W, upconv_geom::H);
    std::printf("%-30s %10s %10s %8s %10s\n", "variant", "cycles",
                "stalls", "gain", "step gain");

    double base = 0, prev = 0;
    for (const Variant &v : variants) {
        System sys(tm3270Config());
        stageUpconversion(sys, 23);
        tir::CompiledProgram cp =
            tir::compile(buildUpconversion(v.flags), tm3270Config());
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!r.halted || !verifyUpconversion(sys, 23, err))
            fatal("%s failed: %s", v.name, err.c_str());
        if (base == 0)
            base = double(r.cycles);
        if (prev == 0)
            prev = double(r.cycles);
        std::printf("%-30s %10llu %10llu %8.2f %10.2f\n", v.name,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.stallCycles),
                    base / double(r.cycles), prev / double(r.cycles));
        prev = double(r.cycles);
    }
    std::printf("(paper: new operations ~ +40%%, prefetching ~ +20%% "
                "more)\n");
    return 0;
}
