/**
 * @file
 * E1 — paper Fig. 1 / §2.1: VLIW instruction compression statistics
 * over the compiled workload suite. Reports per-program code size,
 * bytes per instruction, the distribution of instruction sizes, and
 * the compression ratio against the uncompressed encoding (28 bytes
 * per instruction). The published corner cases hold by construction:
 * an empty instruction costs 2 bytes, a maximal one 28.
 */

#include <cstdio>
#include <map>

#include "tir/scheduler.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    std::printf("E1 / Figure 1: instruction compression over the "
                "workload programs (TM3270 schedule)\n");
    std::printf("%-14s %8s %10s %12s %10s %8s\n", "program", "instrs",
                "bytes", "bytes/instr", "uncomp", "ratio");

    size_t tot_instrs = 0, tot_bytes = 0;
    std::map<uint32_t, uint64_t> size_hist;
    MachineConfig cfg = tm3270Config();

    for (const Workload &w : table5Suite()) {
        tir::CompiledProgram cp = tir::compile(w.build(), cfg);
        size_t instrs = cp.encoded.insts.size();
        size_t bytes = cp.encoded.bytes.size();
        size_t uncomp = instrs * 28;
        for (unsigned i = 0; i < instrs; ++i)
            ++size_hist[cp.encoded.sizeOf(i)];
        std::printf("%-14s %8zu %10zu %12.2f %10zu %8.2f\n",
                    w.name.c_str(), instrs, bytes,
                    double(bytes) / double(instrs), uncomp,
                    double(uncomp) / double(bytes));
        tot_instrs += instrs;
        tot_bytes += bytes;
    }
    std::printf("%-14s %8zu %10zu %12.2f %10zu %8.2f\n", "total",
                tot_instrs, tot_bytes,
                double(tot_bytes) / double(tot_instrs), tot_instrs * 28,
                double(tot_instrs * 28) / double(tot_bytes));

    std::printf("\ninstruction size distribution (bytes : count):\n");
    for (const auto &[sz, cnt] : size_hist)
        std::printf("  %2u : %llu\n", sz,
                    static_cast<unsigned long long>(cnt));
    std::printf("(paper: empty instruction = 2 bytes, maximal = 28 "
                "bytes; the template scheme efficiently encodes "
                "low-ILP code)\n");
    return 0;
}
