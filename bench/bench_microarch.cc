/**
 * @file
 * E9 — micro-characterization: prints the architecture tables
 * (paper Tables 1 and 6) derived from the machine configurations,
 * then runs google-benchmark micro-benchmarks of the simulator
 * substrate itself (simulation rate, encode/decode, cache and CABAC
 * throughput, and the host-parallel sweep driver at several worker
 * counts).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cabac/cabac.hh"
#include "cache/cache.hh"
#include "driver/sweep.hh"
#include "support/prof.hh"
#include "encode/decoder.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

using namespace tm3270;

namespace
{

void
printConfigTables()
{
    std::printf("E9: architecture characteristics (paper Tables 1 and "
                "6)\n");
    std::printf("%-24s %-26s %-26s\n", "feature", "TM3260 (A)",
                "TM3270 (D)");
    MachineConfig a = tm3260Config(), d = tm3270Config();
    auto cache_str = [](const CacheGeometry &g) {
        return strfmt("%u KB, %u B lines, %u-way", g.sizeBytes / 1024,
                      g.lineBytes, g.assoc);
    };
    std::printf("%-24s %-26s %-26s\n", "frequency",
                strfmt("%u MHz", a.freqMHz).c_str(),
                strfmt("%u MHz", d.freqMHz).c_str());
    std::printf("%-24s %-26s %-26s\n", "instruction cache",
                cache_str(a.icache).c_str(), cache_str(d.icache).c_str());
    std::printf("%-24s %-26s %-26s\n", "data cache",
                cache_str(a.dcache).c_str(), cache_str(d.dcache).c_str());
    std::printf("%-24s %-26s %-26s\n", "write-miss policy",
                a.lsu.allocateOnWriteMiss ? "allocate" : "fetch",
                d.lsu.allocateOnWriteMiss ? "allocate" : "fetch");
    std::printf("%-24s %-26u %-26u\n", "load latency", a.loadLatency,
                d.loadLatency);
    std::printf("%-24s %-26u %-26u\n", "jump delay slots",
                a.jumpDelaySlots, d.jumpDelaySlots);
    std::printf("%-24s %-26u %-26u\n", "loads / instruction",
                a.maxLoadsPerInst, d.maxLoadsPerInst);
    std::printf("%-24s %-26s %-26s\n", "icache access",
                a.icacheSequential ? "sequential" : "parallel",
                d.icacheSequential ? "sequential" : "parallel");
    std::printf("\n");
}

EncodedProgram
counterProgram(unsigned iters)
{
    tir::Builder b;
    tir::VReg i = b.var();
    tir::VReg limit = b.var();
    b.assign(i, b.imm32(0));
    b.assign(limit, b.imm32(int32_t(iters - 8)));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);
    tir::VReg c = b.iles(i, limit);
    b.assign(i, b.iaddi(i, 8));
    b.jmpt(c, loop);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(i);
    tir::CompiledProgram cp =
        tir::compile(b.take(), tm3270Config());
    return cp.encoded;
}

void
BM_SimulatorRate(benchmark::State &state)
{
    EncodedProgram prog = counterProgram(100000);
    MainMemory mem(1 << 20);
    uint64_t instrs = 0;
    for (auto _ : state) {
        Processor cpu(tm3270Config(), mem);
        cpu.loadProgram(prog);
        RunResult r = cpu.run();
        instrs += r.instrs;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRate)->Unit(benchmark::kMillisecond);

void
BM_EncodeDecodeRoundtrip(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        tm3270::workloads::memcpyWorkload().build(), tm3270Config());
    for (auto _ : state) {
        EncodedProgram p =
            encodeProgram(cp.insts, cp.jumpTargets);
        auto dec = decodeProgram(p.bytes);
        benchmark::DoNotOptimize(dec.size());
    }
    state.counters["instrs"] = double(cp.insts.size());
}
BENCHMARK(BM_EncodeDecodeRoundtrip);

void
BM_CacheProbe(benchmark::State &state)
{
    Cache c(CacheGeometry{"bench", 128 * 1024, 4, 128, true});
    MainMemory mem(1 << 22);
    int way;
    for (Addr a = 0; a < 128 * 1024; a += 128) {
        c.allocate(a, way);
        c.fillFromMemory(mem, a, way);
    }
    uint64_t hits = 0;
    Addr a = 0;
    for (auto _ : state) {
        hits += c.probe(a) >= 0;
        a = (a + 128) & (128 * 1024 - 1);
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CacheProbe);

void
BM_CabacGoldenDecode(benchmark::State &state)
{
    SyntheticField f = generateField(50000, 64, 0.85, 5);
    for (auto _ : state) {
        CabacDecoder dec(f.stream);
        std::vector<CabacContext> ctx = f.initCtx;
        unsigned sum = 0;
        for (size_t i = 0; i < f.bins.size(); ++i)
            sum += dec.decodeBit(ctx[f.ctxSequence[i]]);
        benchmark::DoNotOptimize(sum);
    }
    state.counters["bins/s"] = benchmark::Counter(
        double(f.bins.size()) * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CabacGoldenDecode)->Unit(benchmark::kMillisecond);

/** Host throughput of a (workload x config) sweep through the
 *  SweepDriver at a given worker count (arg 0). items/s = simulated
 *  VLIW instructions per wall second across the whole matrix. */
void
BM_ParallelSweep(benchmark::State &state)
{
    const unsigned workers = unsigned(state.range(0));
    std::vector<tm3270::driver::SimJob> jobs;
    using tm3270::workloads::Workload;
    for (const Workload &w : tm3270::workloads::table5Suite()) {
        if (w.name != "memcpy" && w.name != "filter"
            && w.name != "rgb2yuv")
            continue;
        for (char c : {'A', 'B', 'C', 'D'})
            jobs.push_back(tm3270::driver::makeJob(w, c));
    }
    // One driver across iterations: after the first, every cell is a
    // ProgramCache hit and the measurement isolates simulation time.
    tm3270::driver::SweepDriver drv(workers);
    uint64_t instrs = 0;
    for (auto _ : state) {
        tm3270::driver::SweepReport rep = drv.run(jobs);
        if (rep.failed)
            state.SkipWithError("sweep job failed");
        instrs += rep.simInstrs;
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(int64_t(instrs));
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    tm3270::prof::attach(tm3270::prof::envProfiler());
    printConfigTables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
