/**
 * @file
 * E5 — paper Figure 7 (with Tables 5/6): relative performance of the
 * four processor configurations on the video-processing workload
 * suite.
 *
 *   A = TM3260 (240 MHz, 16 KB D$, 64 B lines, fetch-on-write-miss)
 *   B = TM3270 core, TM3260 cache capacity, 240 MHz
 *   C = as B at 350 MHz
 *   D = TM3270 (350 MHz, 128 KB D$, 128 B lines)
 *
 * Kernels are written in the TM3260-portable subset and re-compiled
 * per configuration (the paper's "re-compilation only" methodology:
 * no TM3270-specific features are used). Relative performance is
 * wall-clock speedup over configuration A. The paper reports D/A
 * averaging 2.29, an A > B,C anomaly on MPEG2 (128-byte lines thrash
 * the 16 KB cache) and the largest A->B jump on memcpy
 * (allocate-on-write-miss).
 *
 * The 11x4 matrix of independent simulations is submitted through the
 * parallel SweepDriver (worker count: TM_JOBS, default host cores);
 * a host-throughput report is written to BENCH_sweep.json so the
 * sweep wall-clock is gated like BENCH_simrate.json.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "driver/sweep.hh"
#include "support/logging.hh"
#include "support/prof.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    prof::attach(prof::envProfiler());
    const char configs[] = {'A', 'B', 'C', 'D'};
    std::vector<Workload> suite = table5Suite();
    std::vector<driver::SimJob> jobs;
    for (const Workload &w : suite)
        for (char c : configs)
            jobs.push_back(driver::makeJob(w, c));

    driver::SweepDriver drv;
    std::printf("E5 / Figure 7: relative performance (higher is "
                "better, A = 1.00); %zu jobs on %u worker(s)\n",
                jobs.size(), drv.workers());
    driver::SweepReport rep = drv.run(jobs);

    std::printf("%-14s %8s %8s %8s %8s   %12s\n", "workload", "A", "B",
                "C", "D", "cycles(A)");
    int ret = 0;
    double geo_d = 1.0, sum_d = 0.0;
    unsigned n = 0;
    for (size_t wi = 0; wi < suite.size(); ++wi) {
        double time_a = 0;
        double rel[4] = {0, 0, 0, 0};
        uint64_t cyc_a = 0;
        for (unsigned i = 0; i < 4; ++i) {
            const driver::JobResult &jr = rep.results[wi * 4 + i];
            if (!jr.ok) {
                // Through the WarnSink, so failure reports stay
                // serialized with any sweep-worker warnings.
                warn("FAILED %s: %s", jr.tag.c_str(), jr.error.c_str());
                ret = 1;
                continue;
            }
            double t =
                jr.run.microseconds(configByLetter(configs[i]).freqMHz);
            if (i == 0) {
                time_a = t;
                cyc_a = jr.run.cycles;
            }
            rel[i] = time_a / t;
        }
        std::printf("%-14s %8.2f %8.2f %8.2f %8.2f   %12llu\n",
                    suite[wi].name.c_str(), rel[0], rel[1], rel[2],
                    rel[3], static_cast<unsigned long long>(cyc_a));
        geo_d *= rel[3];
        sum_d += rel[3];
        ++n;
    }
    std::printf("%-14s %8s %8s %8s %8.2f   (paper: 2.29)\n", "average",
                "", "", "", sum_d / n);
    std::printf("%-14s %8s %8s %8s %8.2f\n", "geomean", "", "", "",
                std::pow(geo_d, 1.0 / n));

    std::printf("\nsweep: %.0f ms wall (serial-equivalent %.0f ms, "
                "%.2fx pool speedup), %.1f Minstr/s host, "
                "%llu compiles + %llu cache hits\n",
                rep.wallMs, rep.jobWallMsSum, rep.speedup(),
                rep.instrsPerSecond() / 1e6,
                static_cast<unsigned long long>(rep.cacheMisses),
                static_cast<unsigned long long>(rep.cacheHits));
    driver::writeSweepReport(rep, "figure7", "BENCH_sweep.json");
    return ret;
}
