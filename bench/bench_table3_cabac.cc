/**
 * @file
 * E2 — paper Table 3: performance of the complete CABAC decoding
 * process for I, P and B fields of a 4.5 Mbit/s standard-resolution
 * bitstream, with and without the SUPER_CABAC operations.
 *
 * The paper's average bits/field are reproduced exactly (215,408 /
 * 103,544 / 153,035). Field types differ in context statistics: the
 * better a field compresses, the more bins (and decode work) per
 * stream bit, which is why the paper's B fields cost the most VLIW
 * instructions per bit. P(MPS) per type is chosen to land the
 * non-optimized instr/bit in the paper's neighborhood.
 */

#include <cstdio>

#include "support/logging.hh"

#include "tir/scheduler.hh"
#include "workloads/cabac_prog.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

struct FieldSpec
{
    const char *type;
    size_t bitsPerField; ///< paper Table 3
    double pMps;
    uint64_t seed;
};

const FieldSpec fields[] = {
    {"I", 215408, 0.74, 101},
    {"P", 103544, 0.84, 102},
    {"B", 153035, 0.89, 103},
};

uint64_t
decodeField(const SyntheticField &f, bool optimized)
{
    System sys(tm3270Config());
    stageCabacField(sys, f);
    tir::CompiledProgram cp = tir::compile(
        buildCabacDecode(unsigned(f.bins.size()), optimized),
        tm3270Config());
    RunResult r = sys.runProgram(cp.encoded);
    if (!r.halted)
        fatal("CABAC program did not halt");
    std::string err;
    if (!verifyCabacBits(sys, f, err))
        fatal("CABAC decode mismatch: %s", err.c_str());
    return r.instrs;
}

} // namespace

int
main()
{
    std::printf("E2 / Table 3: CABAC decoding, I/P/B fields of a "
                "4.5 Mbit/s bitstream\n");
    std::printf("%-5s %12s %10s | %12s %9s | %12s %9s | %7s\n", "type",
                "bits/field", "bins", "plain", "instr/bit", "optimized",
                "instr/bit", "speedup");

    for (const FieldSpec &fs : fields) {
        SyntheticField f =
            generateField(fs.bitsPerField, 64, fs.pMps, fs.seed);
        uint64_t plain = decodeField(f, false);
        uint64_t fast = decodeField(f, true);
        std::printf("%-5s %12zu %10zu | %12llu %9.1f | %12llu %9.1f | "
                    "%7.2f\n",
                    fs.type, f.streamBits, f.bins.size(),
                    static_cast<unsigned long long>(plain),
                    double(plain) / double(f.streamBits),
                    static_cast<unsigned long long>(fast),
                    double(fast) / double(f.streamBits),
                    double(plain) / double(fast));
    }
    std::printf("(paper: I 21.1 -> 12.5 [1.7x], P 28.0 -> 17.4 [1.6x], "
                "B 33.8 -> 22.3 [1.5x])\n");
    return 0;
}
