/**
 * @file
 * Ablation study of the TM3270 design choices discussed in the paper:
 * starting from configuration D, one parameter is reverted at a time
 * toward its TM3260 value and three representative workloads are
 * re-run (re-compiled where the parameter affects scheduling).
 *
 *   - data cache line size (128 -> 64 bytes; §6's MPEG2 discussion)
 *   - write-miss policy (allocate -> fetch-on-write; §4.1)
 *   - data cache capacity (128 KB -> 16 KB)
 *   - load-use latency (4 -> 3 cycles; Table 6)
 *   - jump delay slots (5 -> 3; Table 6)
 *   - loads per instruction (1 -> 2; §4.2 notes the cost of a second
 *     load port, so this direction is a what-if)
 *
 * All (variant x workload) cells go through the parallel SweepDriver;
 * the shared ProgramCache compiles each workload only once per
 * distinct set of scheduling-relevant parameters (cache-geometry and
 * write-policy ablations reuse the baseline's program).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "driver/sweep.hh"
#include "support/logging.hh"
#include "support/prof.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

struct Variant
{
    const char *name;
    std::function<void(MachineConfig &)> tweak;
};

} // namespace

int
main()
{
    prof::attach(prof::envProfiler());
    const Variant variants[] = {
        {"TM3270 baseline (D)", [](MachineConfig &) {}},
        {"64-byte D$ lines",
         [](MachineConfig &c) { c.dcache.lineBytes = 64; }},
        {"fetch-on-write-miss",
         [](MachineConfig &c) { c.lsu.allocateOnWriteMiss = false; }},
        {"16 KB data cache",
         [](MachineConfig &c) { c.dcache.sizeBytes = 16 * 1024; }},
        {"3-cycle load latency",
         [](MachineConfig &c) { c.loadLatency = 3; }},
        {"3 jump delay slots",
         [](MachineConfig &c) { c.jumpDelaySlots = 3; }},
        {"2 loads / instruction",
         [](MachineConfig &c) {
             c.maxLoadsPerInst = 2;
             c.loadSlotMask = slotBit(4) | slotBit(5);
         }},
    };
    const char *names[] = {"memcpy", "mpeg2_a", "filter"};

    std::vector<Workload> picks;
    for (const char *n : names)
        for (const Workload &w : table5Suite())
            if (w.name == n)
                picks.push_back(w);

    std::vector<driver::SimJob> jobs;
    for (const Variant &v : variants) {
        for (const Workload &w : picks) {
            MachineConfig cfg = tm3270Config();
            v.tweak(cfg);
            jobs.push_back(driver::makeJob(
                w, 'D', cfg, strfmt("%s/%s", w.name.c_str(), v.name)));
        }
    }

    driver::SweepDriver drv;
    driver::SweepReport rep = drv.run(jobs);

    std::printf("Ablations on the TM3270 (cycles; ratio vs baseline "
                "in parentheses); %zu jobs on %u worker(s)\n",
                jobs.size(), drv.workers());
    std::printf("%-24s", "variant");
    for (const char *n : names)
        std::printf(" %18s", n);
    std::printf("\n");

    int ret = 0;
    const size_t ncols = picks.size();
    for (size_t vi = 0; vi < std::size(variants); ++vi) {
        std::printf("%-24s", variants[vi].name);
        for (size_t col = 0; col < ncols; ++col) {
            const driver::JobResult &jr = rep.results[vi * ncols + col];
            const driver::JobResult &base = rep.results[col];
            if (!jr.ok) {
                // Through the WarnSink, so failure reports stay
                // serialized with any sweep-worker warnings.
                warn("FAILED %s: %s", jr.tag.c_str(), jr.error.c_str());
                ret = 1;
                continue;
            }
            std::printf(" %10llu (%4.2f)",
                        static_cast<unsigned long long>(jr.run.cycles),
                        double(jr.run.cycles) / double(base.run.cycles));
        }
        std::printf("\n");
    }
    std::printf("\n(ratios > 1.00 mean the reverted choice costs "
                "cycles on that workload; the line-size and capacity "
                "rows explain Fig. 7's MPEG2 anomaly)\n");
    std::printf("sweep: %.0f ms wall, %.2fx pool speedup, "
                "%llu compiles + %llu cache hits\n",
                rep.wallMs, rep.speedup(),
                static_cast<unsigned long long>(rep.cacheMisses),
                static_cast<unsigned long long>(rep.cacheHits));
    driver::writeSweepReport(rep, "ablation", "BENCH_ablation.json");
    return ret;
}
