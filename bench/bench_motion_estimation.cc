/**
 * @file
 * E6 — paper §6 / reference [12]: motion estimation on the TM3270.
 * Full-search SAD matching plus half-pel refinement, with the
 * TM3270-specific features enabled incrementally. The paper reports
 * an additional gain of more than a factor two over the
 * recompiled-only baseline when non-aligned access, advanced data
 * prefetching and the new operations are used.
 */

#include <cstdio>

#include "support/logging.hh"

#include "tir/scheduler.hh"
#include "workloads/motion_est.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    struct Variant
    {
        const char *name;
        MeFlags flags;
    };
    const Variant variants[] = {
        {"baseline (aligned + funshift)", {false, false, false}},
        {"+ non-aligned access", {true, false, false}},
        {"+ LD_FRAC8 collapsed loads", {true, true, false}},
        {"+ region prefetching", {true, true, true}},
    };

    std::printf("E6 / ref [12]: motion estimation, %u blocks, %ux%u "
                "reference, +/-%u full search + half-pel (TM3270)\n",
                me_geom::numBlocks, me_geom::refW, me_geom::refH,
                me_geom::searchR);
    std::printf("%-32s %10s %10s %8s %8s\n", "variant", "cycles",
                "stalls", "time us", "gain");

    double base = 0;
    for (const Variant &v : variants) {
        System sys(tm3270Config());
        stageMotionEstimation(sys, 99);
        tir::CompiledProgram cp =
            tir::compile(buildMotionEstimation(v.flags), tm3270Config());
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("%s failed: %s", v.name, err.c_str());
        if (base == 0)
            base = double(r.cycles);
        std::printf("%-32s %10llu %10llu %8.1f %8.2f\n", v.name,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.stallCycles),
                    r.microseconds(350), base / double(r.cycles));
    }
    std::printf("(paper: more than a factor two over the "
                "recompiled-only kernel)\n");
    return 0;
}
