/**
 * @file
 * E4 — paper Table 4 and §5: area and power breakdown.
 *
 * Area is the published 90 nm floorplan breakdown (Fig. 6). Power is
 * the activity-based model calibrated on the MP3 decoder proxy (the
 * paper's measurement workload: 384 kbit/s stereo at 44.1 kHz,
 * OPI ~ 4.5, CPI ~ 1.0), then applied to other workloads to reproduce
 * the claimed OPI/CPI dependence and the 1.2 V -> 0.8 V scaling.
 */

#include <cstdio>

#include "support/logging.hh"

#include "power/power_model.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

ActivitySample
sampleWorkload(const Workload &w, RunResult *out_r = nullptr)
{
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    w.init(sys);
    tir::CompiledProgram cp = tir::compile(w.build(), cfg);
    sys.processor.loadProgram(cp.encoded);
    RunResult r = sys.processor.run();
    if (out_r)
        *out_r = r;
    ActivitySample a = ActivitySample::fromRun(sys, r);
    sys.processor.lsu().flushCaches();
    std::string err;
    if (!w.verify(sys, err))
        fatal("%s failed verification: %s", w.name.c_str(), err.c_str());
    return a;
}

} // namespace

int
main()
{
    // Calibrate the power model against the MP3 proxy run.
    RunResult mp3_r;
    ActivitySample mp3 = sampleWorkload(mp3Workload(), &mp3_r);
    PowerModel model;
    model.calibrate(mp3);

    std::printf("E4 / Table 4: TM3270 area and power breakdown\n");
    std::printf("MP3 proxy operating point: OPI %.2f (paper ~4.5), "
                "CPI %.2f (paper ~1.0)\n\n",
                mp3.opi, mp3.cpi);

    std::printf("%-8s %10s | %18s %10s\n", "module", "area mm^2",
                "mW/MHz @1.2V", "paper");
    double area = 0, power = 0;
    for (unsigned i = 0; i < numModules; ++i) {
        auto m = static_cast<Module>(i);
        double p = model.moduleMwPerMhz(m, mp3, 1.2);
        std::printf("%-8s %10.2f | %18.3f %10.3f\n", moduleName(m),
                    moduleAreaMm2(m), p, paperPowerMwPerMhz(m));
        area += moduleAreaMm2(m);
        power += p;
    }
    std::printf("%-8s %10.2f | %18.3f %10.3f\n", "Total", area, power,
                0.935);
    std::printf("(paper total: 8.08 mm^2, 0.935 mW/MHz)\n\n");

    // Voltage scaling: CV^2f.
    double p08 = model.totalMwPerMhz(mp3, 0.8);
    std::printf("Voltage scaling: %.3f mW/MHz at 1.2 V -> %.3f mW/MHz "
                "at 0.8 V (paper: 0.935 -> 0.415)\n",
                power, p08);
    // The paper: MP3 decoding runs in ~8 MHz -> 3.32 mW at 0.8 V.
    std::printf("MP3 decoding at 8 MHz, 0.8 V: %.2f mW (paper: 3.32 "
                "mW)\n\n",
                model.powerMw(mp3, 8.0, 0.8));

    // OPI/CPI dependence: other workloads under the same calibration.
    std::printf("Power tracks OPI and CPI, not the application "
                "(paper §5.2):\n");
    std::printf("%-14s %6s %6s %12s\n", "workload", "OPI", "CPI",
                "mW/MHz@1.2V");
    std::printf("%-14s %6.2f %6.2f %12.3f\n", "mp3", mp3.opi, mp3.cpi,
                power);
    for (const char *name :
         {"filter", "rgb2yuv", "memcpy", "mpeg2_a", "majority_sel"}) {
        for (const Workload &w : table5Suite()) {
            if (w.name != name)
                continue;
            ActivitySample a = sampleWorkload(w);
            std::printf("%-14s %6.2f %6.2f %12.3f\n", name, a.opi,
                        a.cpi, model.totalMwPerMhz(a, 1.2));
        }
    }
    std::printf("(stalled cycles are clock-gated: higher CPI -> lower "
                "mW/MHz, with the BIU share growing)\n");
    return 0;
}
