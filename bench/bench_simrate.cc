/**
 * @file
 * Simulation-rate benchmark gate: simulated VLIW instructions per
 * wall-clock second on the TM3270 CABAC and motion-estimation
 * workloads. This tracks the *simulator's* speed (host perf), not the
 * modeled hardware, so the fast-path interpreter (interned stats +
 * predecoded micro-op stream) stays honest from PR to PR.
 *
 * Run from the build directory:
 *
 *     ./bench/bench_simrate
 *
 * A JSON report is written to BENCH_simrate.json in the working
 * directory by default (pass your own --benchmark_out= to override).
 * The headline metric is items_per_second: simulated VLIW
 * instructions per second. Staging and verification run outside the
 * timed region (PauseTiming/ResumeTiming) so the metric tracks the
 * simulation loop itself, not per-iteration setup. Every run still
 * re-verifies workload output against the host reference, so a
 * simrate win can never silently trade away correctness.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "tir/scheduler.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"
#include "workloads/cabac_prog.hh"
#include "workloads/motion_est.hh"
#include "workloads/texture.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

/** CABAC bin decode (plain TriMedia operations, the interpreter-bound
 *  variant): the primary simrate gate. */
void
BM_SimrateCabac(benchmark::State &state)
{
    const bool optimized = state.range(0) != 0;
    SyntheticField f = generateField(60000, 64, 0.8, 42);
    tir::CompiledProgram cp = tir::compile(
        buildCabacDecode(unsigned(f.bins.size()), optimized),
        tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        stageCabacField(sys, f);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyCabacBits(sys, f, err))
            fatal("CABAC decode mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    // items/s == simulated VLIW instructions per wall second.
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/** Motion estimation with all TM3270 features on: LSU/prefetch-bound
 *  simrate companion. */
void
BM_SimrateMotionEst(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        stageMotionEstimation(sys, 99);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("motion estimation mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/**
 * Motion estimation with a live tracer and interval sampler: the
 * tracing-ON companion of BM_SimrateMotionEst, making the
 * instrumentation overhead visible in every BENCH_simrate.json. The
 * tracing-OFF gate (scripts/check_simrate.py) intentionally excludes
 * this benchmark: its cost is the price of tracing, not a regression.
 */
void
BM_SimrateMotionEstTraced(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());

    uint64_t instrs = 0;
    uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        trace::Tracer tracer;
        trace::IntervalSampler sampler(8192);
        sys.processor.attachTracer(&tracer);
        sys.processor.attachSampler(&sampler);
        stageMotionEstimation(sys, 99);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("motion estimation mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        events += tracer.recorded();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["trace_events"] =
        double(events) / double(state.iterations());
}

/** Memory size for the short kernels: big enough for their staging
 *  regions (< 2.5 MByte), small enough that zeroing a fresh System
 *  per iteration does not drown the memory-hierarchy time the
 *  benchmark exists to measure. */
constexpr size_t kSmallMemBytes = 4 * 1024 * 1024;

/** memset/memcpy region kernels: the memory-hierarchy-bound simrate
 *  gate. Nearly every issued operation is a load or store, so host
 *  time concentrates in the data cache (byte-validity masks, line
 *  allocation/eviction, copy-backs) rather than the interpreter. */
void
BM_SimrateMemops(benchmark::State &state)
{
    Workload w = state.range(0) ? memcpyWorkload() : memsetWorkload();
    state.SetLabel(w.name);
    tir::CompiledProgram cp = tir::compile(w.build(), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config(), kSmallMemBytes);
        w.init(sys);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !w.verify(sys, err))
            fatal("%s mismatch: %s", w.name.c_str(), err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/** MPEG2 texture pipeline (two-slot variant): load/store-dense kernel
 *  companion to memops for the memory-hierarchy fast path. */
void
BM_SimrateTexture(benchmark::State &state)
{
    tir::CompiledProgram cp =
        tir::compile(buildTexturePipeline(true), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config(), kSmallMemBytes);
        stageTexture(sys, 17);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyTexture(sys, 17, err))
            fatal("texture mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

} // namespace

BENCHMARK(BM_SimrateCabac)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"opt"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMotionEst)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMotionEstTraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMemops)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"copy"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateTexture)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Default to emitting BENCH_simrate.json so the perf trajectory is
    // recorded by every plain `./bench_simrate` run.
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
    }
    static char out_arg[] = "--benchmark_out=BENCH_simrate.json";
    static char fmt_arg[] = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_arg);
        args.push_back(fmt_arg);
    }
    int n = int(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
