/**
 * @file
 * Simulation-rate benchmark gate: simulated VLIW instructions per
 * wall-clock second on the TM3270 CABAC and motion-estimation
 * workloads. This tracks the *simulator's* speed (host perf), not the
 * modeled hardware, so the fast-path interpreter (interned stats +
 * predecoded micro-op stream) stays honest from PR to PR.
 *
 * Run from the build directory:
 *
 *     ./bench/bench_simrate
 *
 * A JSON report is written to BENCH_simrate.json in the working
 * directory by default (pass your own --benchmark_out= to override).
 * The headline metric is items_per_second: simulated VLIW
 * instructions per second. Every run re-verifies workload output
 * against the host reference, so a simrate win can never silently
 * trade away correctness.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "tir/scheduler.hh"
#include "workloads/cabac_prog.hh"
#include "workloads/motion_est.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

/** CABAC bin decode (plain TriMedia operations, the interpreter-bound
 *  variant): the primary simrate gate. */
void
BM_SimrateCabac(benchmark::State &state)
{
    const bool optimized = state.range(0) != 0;
    SyntheticField f = generateField(60000, 64, 0.8, 42);
    tir::CompiledProgram cp = tir::compile(
        buildCabacDecode(unsigned(f.bins.size()), optimized),
        tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        System sys(tm3270Config());
        stageCabacField(sys, f);
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!r.halted || !verifyCabacBits(sys, f, err))
            fatal("CABAC decode mismatch: %s", err.c_str());
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    // items/s == simulated VLIW instructions per wall second.
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/** Motion estimation with all TM3270 features on: LSU/prefetch-bound
 *  simrate companion. */
void
BM_SimrateMotionEst(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        System sys(tm3270Config());
        stageMotionEstimation(sys, 99);
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("motion estimation mismatch: %s", err.c_str());
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

} // namespace

BENCHMARK(BM_SimrateCabac)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"opt"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMotionEst)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Default to emitting BENCH_simrate.json so the perf trajectory is
    // recorded by every plain `./bench_simrate` run.
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
    }
    static char out_arg[] = "--benchmark_out=BENCH_simrate.json";
    static char fmt_arg[] = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_arg);
        args.push_back(fmt_arg);
    }
    int n = int(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
