/**
 * @file
 * Simulation-rate benchmark gate: simulated VLIW instructions per
 * wall-clock second on the TM3270 CABAC and motion-estimation
 * workloads. This tracks the *simulator's* speed (host perf), not the
 * modeled hardware, so the fast-path interpreter (interned stats +
 * predecoded micro-op stream) stays honest from PR to PR.
 *
 * Run from the build directory:
 *
 *     ./bench/bench_simrate
 *
 * A tm3270.run_manifest.v1 JSON manifest (support/report.hh) is
 * written to BENCH_simrate.json in the working directory by default
 * (--manifest_out=PATH overrides; --benchmark_out= still produces the
 * raw google-benchmark JSON alongside). The headline metric is
 * items_per_second: simulated VLIW instructions per second. Staging
 * and verification run outside the timed region
 * (PauseTiming/ResumeTiming) so the metric tracks the simulation loop
 * itself, not per-iteration setup. Every run still re-verifies
 * workload output against the host reference, so a simrate win can
 * never silently trade away correctness.
 *
 * Host-noise attribution: the manifest records the CPU count and the
 * frequency-scaling state, and a warn() (also captured into the
 * manifest) flags the two classic sources of noisy history points —
 * CPU scaling enabled, and a TM_JOBS override disagreeing with the
 * machine's CPU count.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/prof.hh"
#include "support/report.hh"
#include "tir/scheduler.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"
#include "workloads/cabac_prog.hh"
#include "workloads/motion_est.hh"
#include "workloads/texture.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

/** CABAC bin decode (plain TriMedia operations, the interpreter-bound
 *  variant): the primary simrate gate. */
void
BM_SimrateCabac(benchmark::State &state)
{
    const bool optimized = state.range(0) != 0;
    SyntheticField f = generateField(60000, 64, 0.8, 42);
    tir::CompiledProgram cp = tir::compile(
        buildCabacDecode(unsigned(f.bins.size()), optimized),
        tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        stageCabacField(sys, f);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyCabacBits(sys, f, err))
            fatal("CABAC decode mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    // items/s == simulated VLIW instructions per wall second.
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/** Motion estimation with all TM3270 features on: LSU/prefetch-bound
 *  simrate companion. */
void
BM_SimrateMotionEst(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        stageMotionEstimation(sys, 99);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("motion estimation mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/**
 * Motion estimation with a live tracer and interval sampler: the
 * tracing-ON companion of BM_SimrateMotionEst, making the
 * instrumentation overhead visible in every BENCH_simrate.json. The
 * tracing-OFF gate (scripts/check_simrate.py) intentionally excludes
 * this benchmark: its cost is the price of tracing, not a regression.
 */
void
BM_SimrateMotionEstTraced(benchmark::State &state)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());

    uint64_t instrs = 0;
    uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config());
        trace::Tracer tracer;
        trace::IntervalSampler sampler(8192);
        sys.processor.attachTracer(&tracer);
        sys.processor.attachSampler(&sampler);
        stageMotionEstimation(sys, 99);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyMotionEstimation(sys, 99, err))
            fatal("motion estimation mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        events += tracer.recorded();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["trace_events"] =
        double(events) / double(state.iterations());
}

/** Memory size for the short kernels: big enough for their staging
 *  regions (< 2.5 MByte), small enough that zeroing a fresh System
 *  per iteration does not drown the memory-hierarchy time the
 *  benchmark exists to measure. */
constexpr size_t kSmallMemBytes = 4 * 1024 * 1024;

/** memset/memcpy region kernels: the memory-hierarchy-bound simrate
 *  gate. Nearly every issued operation is a load or store, so host
 *  time concentrates in the data cache (byte-validity masks, line
 *  allocation/eviction, copy-backs) rather than the interpreter. */
void
BM_SimrateMemops(benchmark::State &state)
{
    Workload w = state.range(0) ? memcpyWorkload() : memsetWorkload();
    state.SetLabel(w.name);
    tir::CompiledProgram cp = tir::compile(w.build(), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config(), kSmallMemBytes);
        w.init(sys);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !w.verify(sys, err))
            fatal("%s mismatch: %s", w.name.c_str(), err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/** MPEG2 texture pipeline (two-slot variant): load/store-dense kernel
 *  companion to memops for the memory-hierarchy fast path. */
void
BM_SimrateTexture(benchmark::State &state)
{
    tir::CompiledProgram cp =
        tir::compile(buildTexturePipeline(true), tm3270Config());

    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        System sys(tm3270Config(), kSmallMemBytes);
        stageTexture(sys, 17);
        state.ResumeTiming();
        RunResult r = sys.runProgram(cp.encoded);
        state.PauseTiming();
        std::string err;
        if (!r.halted || !verifyTexture(sys, 17, err))
            fatal("texture mismatch: %s", err.c_str());
        state.ResumeTiming();
        instrs += r.instrs;
        cycles += r.cycles;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(int64_t(instrs));
    state.counters["sim_instrs"] =
        double(instrs) / double(state.iterations());
    state.counters["sim_cycles"] =
        double(cycles) / double(state.iterations());
}

/**
 * Console reporter that additionally captures every run into the run
 * manifest: per-benchmark items_per_second (what the 2% gate and the
 * perf history consume), all user counters, and the host context
 * (CPU count, frequency-scaling state) that makes a noisy history
 * point attributable after the fact.
 */
class ManifestReporter : public benchmark::ConsoleReporter
{
  public:
    explicit ManifestReporter(tm3270::report::RunReport &rep) : rep_(rep) {}

    bool
    ReportContext(const Context &ctx) override
    {
        using tm3270::report::Json;
        const bool scaling =
            ctx.cpu_info.scaling == benchmark::CPUInfo::ENABLED;
        Json &c = rep_.context();
        c["num_cpus"] = Json(ctx.cpu_info.num_cpus);
        c["cpu_scaling_enabled"] = Json(scaling);
        if (scaling) {
            warn("CPU frequency scaling is enabled: simrate numbers "
                 "will be noisy; disable the governor before trusting "
                 "this history point");
        }
        if (const char *e = std::getenv("TM_JOBS")) {
            long jobs = std::strtol(e, nullptr, 10);
            if (jobs > 0 && jobs != long(ctx.cpu_info.num_cpus)) {
                warn("TM_JOBS=%ld disagrees with the machine's %d CPUs: "
                     "sweep throughput numbers are not comparable "
                     "across history points with different pools",
                     jobs, ctx.cpu_info.num_cpus);
            }
        }
        return ConsoleReporter::ReportContext(ctx);
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        using tm3270::report::Json;
        for (const Run &r : runs) {
            Json b = Json::object();
            b["name"] = Json(r.benchmark_name());
            b["run_type"] =
                Json(r.run_type == Run::RT_Aggregate ? "aggregate"
                                                     : "iteration");
            if (!r.aggregate_name.empty())
                b["aggregate_name"] = Json(r.aggregate_name);
            if (r.error_occurred)
                b["error"] = Json(r.error_message);
            b["iterations"] = Json(uint64_t(r.iterations));
            b["real_time_ms"] = Json(r.GetAdjustedRealTime());
            // UserCounters is an ordered map: deterministic manifest.
            for (const auto &[name, counter] : r.counters)
                b[name] = Json(double(counter));
            rep_.addBenchmark(std::move(b));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    tm3270::report::RunReport &rep_;
};

} // namespace

BENCHMARK(BM_SimrateCabac)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"opt"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMotionEst)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMotionEstTraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateMemops)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"copy"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimrateTexture)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    using namespace tm3270;
    // Emit a run manifest to BENCH_simrate.json (or --manifest_out=)
    // so the perf trajectory is recorded by every plain
    // `./bench_simrate` run and appendable to bench/history/.
    std::string manifest_path = "BENCH_simrate.json";
    std::vector<char *> args;
    args.reserve(size_t(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--manifest_out=", 15) == 0)
            manifest_path = argv[i] + 15;
        else
            args.push_back(argv[i]);
    }

    prof::attach(prof::envProfiler());
    report::RunReport rep("simrate", "bench_simrate");
    {
        report::WarnCapture wc(rep);
        ManifestReporter reporter(rep);
        int n = int(args.size());
        benchmark::Initialize(&n, args.data());
        if (benchmark::ReportUnrecognizedArguments(n, args.data()))
            return 1;
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    rep.setProfile(prof::envProfiler());
    if (!rep.writeFile(manifest_path))
        return 1;
    return 0;
}
