/**
 * @file
 * Sweep-driver tests: a parallel sweep must be bit-identical to the
 * same jobs run serially (RunResults and full stat dumps), the
 * ProgramCache must compile each distinct (workload, sched-config)
 * cell exactly once, and one failing job must not abort a sweep.
 * These are the tests to run under TM_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/sweep.hh"

using namespace tm3270;
using namespace tm3270::driver;
using namespace tm3270::workloads;

namespace
{

/** Three representative Table 5 workloads x configs A-D. */
std::vector<SimJob>
smallMatrix()
{
    std::vector<SimJob> jobs;
    for (Workload w :
         {memcpyWorkload(), filterWorkload(), rgb2yuvWorkload()}) {
        for (char c : {'A', 'B', 'C', 'D'})
            jobs.push_back(makeJob(w, c));
    }
    return jobs;
}

} // namespace

TEST(ProgramCache, CompilesOncePerDistinctCell)
{
    ProgramCache cache;
    Workload w = memcpyWorkload();

    auto a = cache.get(w, configByLetter('A'));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Same cell again: shared by reference, no recompile.
    auto a2 = cache.get(w, configByLetter('A'));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a.get(), a2.get());

    // B, C and D share every scheduling-relevant field (they differ
    // in frequency and cache geometry only), so they are one cell.
    auto b = cache.get(w, configByLetter('B'));
    EXPECT_EQ(cache.misses(), 2u);
    auto c = cache.get(w, configByLetter('C'));
    auto d = cache.get(w, configByLetter('D'));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(b.get(), c.get());
    EXPECT_EQ(b.get(), d.get());
    EXPECT_NE(a.get(), b.get());

    // A different workload is a different cell.
    cache.get(memsetWorkload(), configByLetter('A'));
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(ProgramCache, KeySeparatesSchedRelevantFields)
{
    MachineConfig d = tm3270Config();
    MachineConfig a = tm3260Config();
    EXPECT_NE(programCacheKey("w", d), programCacheKey("w", a));
    EXPECT_EQ(programCacheKey("w", configByLetter('B')),
              programCacheKey("w", configByLetter('C')));

    // Cache geometry and frequency must NOT split cells...
    MachineConfig small = d;
    small.dcache.sizeBytes = 16 * 1024;
    small.freqMHz = 240;
    EXPECT_EQ(programCacheKey("w", d), programCacheKey("w", small));

    // ...but every field the scheduler observes must.
    MachineConfig lat = d;
    lat.loadLatency = 3;
    EXPECT_NE(programCacheKey("w", d), programCacheKey("w", lat));
    MachineConfig jd = d;
    jd.jumpDelaySlots = 3;
    EXPECT_NE(programCacheKey("w", d), programCacheKey("w", jd));
    MachineConfig loads = d;
    loads.maxLoadsPerInst = 2;
    loads.loadSlotMask = slotBit(4) | slotBit(5);
    EXPECT_NE(programCacheKey("w", d), programCacheKey("w", loads));
}

TEST(SweepDriver, ParallelIsBitIdenticalToSerial)
{
    std::vector<SimJob> jobs = smallMatrix();

    SweepDriver serial(1);
    SweepReport s = serial.run(jobs);

    // More workers than host cores is fine: jobs interleave, results
    // must not change.
    SweepDriver parallel(4);
    SweepReport p = parallel.run(jobs);

    ASSERT_EQ(s.results.size(), jobs.size());
    ASSERT_EQ(p.results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &a = s.results[i];
        const JobResult &b = p.results[i];
        SCOPED_TRACE(jobs[i].tag);
        EXPECT_TRUE(a.ok) << a.error;
        EXPECT_TRUE(b.ok) << b.error;
        EXPECT_EQ(a.tag, jobs[i].tag);
        EXPECT_EQ(b.tag, jobs[i].tag);
        EXPECT_EQ(a.run.cycles, b.run.cycles);
        EXPECT_EQ(a.run.instrs, b.run.instrs);
        EXPECT_EQ(a.run.ops, b.run.ops);
        EXPECT_EQ(a.run.stallCycles, b.run.stallCycles);
        EXPECT_EQ(a.run.exitValue, b.run.exitValue);
        EXPECT_EQ(a.stats, b.stats);
        EXPECT_EQ(a.statDump, b.statDump);
        EXPECT_FALSE(a.statDump.empty());
    }
    EXPECT_EQ(s.simInstrs, p.simInstrs);
    EXPECT_EQ(s.simCycles, p.simCycles);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(p.failed, 0u);
    // 3 workloads x 2 distinct sched-configs (A and B/C/D).
    EXPECT_EQ(s.cacheMisses, 6u);
    EXPECT_EQ(s.cacheHits, 6u);
    EXPECT_EQ(p.cacheMisses, 6u);
    EXPECT_EQ(p.cacheHits, 6u);
}

TEST(SweepDriver, FailedJobDoesNotAbortSweep)
{
    Workload bad = memsetWorkload();
    bad.name = "memset_badverify"; // distinct cache cell
    bad.verify = [](System &, std::string &err) {
        err = "forced failure";
        return false;
    };

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob(memcpyWorkload(), 'D'));
    jobs.push_back(makeJob(bad, 'D'));
    jobs.push_back(makeJob(filterWorkload(), 'D'));

    SweepReport rep = SweepDriver(2).run(jobs);
    ASSERT_EQ(rep.results.size(), 3u);
    EXPECT_TRUE(rep.results[0].ok) << rep.results[0].error;
    EXPECT_FALSE(rep.results[1].ok);
    EXPECT_NE(rep.results[1].error.find("forced failure"),
              std::string::npos)
        << rep.results[1].error;
    // The failing job still ran to completion and reports its work.
    EXPECT_TRUE(rep.results[1].run.halted);
    EXPECT_GT(rep.results[1].run.cycles, 0u);
    EXPECT_TRUE(rep.results[2].ok) << rep.results[2].error;
    EXPECT_EQ(rep.failed, 1u);
}

TEST(SweepDriver, ReportAggregatesAndOrdering)
{
    std::vector<SimJob> jobs = smallMatrix();
    SweepDriver drv(3);
    SweepReport rep = drv.run(jobs);

    uint64_t instrs = 0;
    double wall_sum = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(rep.results[i].tag, jobs[i].tag); // submission order
        EXPECT_GT(rep.results[i].wallMs, 0.0);
        instrs += rep.results[i].run.instrs;
        wall_sum += rep.results[i].wallMs;
    }
    EXPECT_EQ(rep.simInstrs, instrs);
    EXPECT_GT(rep.wallMs, 0.0);
    EXPECT_DOUBLE_EQ(rep.jobWallMsSum, wall_sum);
    EXPECT_GT(rep.instrsPerSecond(), 0.0);

    // A second run() through the same driver hits the cache for every
    // cell: nothing is recompiled.
    SweepReport rep2 = drv.run(jobs);
    EXPECT_EQ(rep2.cacheMisses, 0u);
    EXPECT_EQ(rep2.cacheHits, jobs.size());
}

TEST(SweepDriver, WorkerCountResolution)
{
    EXPECT_EQ(resolveWorkerCount(7), 7u);

    setenv("TM_JOBS", "5", 1);
    EXPECT_EQ(resolveWorkerCount(0), 5u);
    EXPECT_EQ(SweepDriver().workers(), 5u);
    EXPECT_EQ(SweepDriver(2).workers(), 2u); // explicit beats env

    unsetenv("TM_JOBS");
    unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(resolveWorkerCount(0), hw > 0 ? hw : 1u);
}
