/**
 * @file
 * Tests for the VLIW compression scheme (paper §2.1, Fig. 1):
 * operation formats, template chaining, the published size bounds
 * (2-byte empty instruction, 28-byte maximum) and bit-exact
 * encode/decode roundtrips including randomized property tests.
 */

#include <gtest/gtest.h>

#include <random>

#include "encode/decoder.hh"
#include "encode/encoder.hh"
#include "encode/formats.hh"

using namespace tm3270;

namespace
{

Operation
mkOp(Opcode opc, RegIndex d = 0, RegIndex s1 = 0, RegIndex s2 = 0,
     int32_t imm = 0, RegIndex guard = regOne)
{
    Operation op;
    op.opc = opc;
    op.guard = guard;
    op.dst[0] = d;
    op.src[0] = s1;
    op.src[1] = s2;
    op.imm = imm;
    return op;
}

} // namespace

TEST(Formats, SelectSmallest)
{
    // Low registers, implied guard -> 26-bit.
    EXPECT_EQ(selectFormat(mkOp(Opcode::IADD, 4, 5, 6)), SlotFmt::Fmt26);
    // High register -> 34-bit compact encoding.
    EXPECT_EQ(selectFormat(mkOp(Opcode::IADD, 100, 5, 6)), SlotFmt::Fmt34);
    // Explicit guard -> 34-bit.
    EXPECT_EQ(selectFormat(mkOp(Opcode::IADD, 4, 5, 6, 0, 7)),
              SlotFmt::Fmt34);
    // Immediates -> 42-bit.
    EXPECT_EQ(selectFormat(mkOp(Opcode::IADDI, 4, 5, 0, 3)),
              SlotFmt::Fmt42);
    EXPECT_EQ(selectFormat(mkOp(Opcode::IMM16, 4, 0, 0, -5)),
              SlotFmt::Fmt42);
    // Unused slot.
    EXPECT_EQ(selectFormat(Operation()), SlotFmt::Unused);
}

TEST(Formats, CompactTable)
{
    EXPECT_LE(numCompactOpcodes(), 64u);
    EXPECT_GT(numCompactOpcodes(), 30u);
    for (unsigned i = 0; i < numCompactOpcodes(); ++i) {
        Opcode opc = compactOpcode(i);
        EXPECT_EQ(compactIndex(opc), int(i));
        EXPECT_EQ(opInfo(opc).imm, ImmKind::None);
    }
}

TEST(Encode, EmptyInstructionIsTwoBytes)
{
    // Paper: "A VLIW instruction without any operations is efficiently
    // encoded in 2 bytes."
    std::vector<VliwInst> prog(3); // entry + 2 empty instructions
    EncodedProgram p = encodeProgram(prog, {false, false, false});
    // Instruction 0 is the uncompressed entry; 1 and 2 are empty.
    EXPECT_EQ(p.sizeOf(1), 2u);
    EXPECT_EQ(p.sizeOf(2), 1u); // last instruction: no template, 1 bit
}

TEST(Encode, MaximalInstructionIs28Bytes)
{
    // Paper: all five operations at 42 bits encode in 28 bytes.
    VliwInst big;
    for (unsigned s = 0; s < numSlots; ++s)
        big.slot[s] = mkOp(Opcode::IADDI, RegIndex(70 + s), 5, 0, -7);
    std::vector<VliwInst> prog = {VliwInst(), big, VliwInst()};
    EncodedProgram p = encodeProgram(prog, {false, false, false});
    EXPECT_EQ(p.sizeOf(1), 28u);
}

TEST(Encode, EntryIsUncompressed)
{
    std::vector<VliwInst> prog(2);
    prog[0].slot[0] = mkOp(Opcode::IADD, 3, 4, 5);
    EncodedProgram p = encodeProgram(prog, {false, false});
    EXPECT_TRUE(p.uncompressed[0]);
    // 1 flag bit + 10 template bits + 5 * 42 = 221 bits -> 28 bytes.
    EXPECT_EQ(p.sizeOf(0), 28u);
}

TEST(Encode, RoundtripBasic)
{
    std::vector<VliwInst> prog(4);
    prog[0].slot[0] = mkOp(Opcode::IMM16, 2, 0, 0, 100);
    prog[0].slot[1] = mkOp(Opcode::IMM16, 3, 0, 0, 200);
    prog[1].slot[2] = mkOp(Opcode::IADD, 4, 2, 3);
    prog[1].slot[4] = mkOp(Opcode::LD32D, 5, 2, 0, 16);
    prog[2].slot[0] = mkOp(Opcode::IADD, 80, 2, 3, 0, 9); // fmt34
    prog[3].slot[1] = mkOp(Opcode::HALT, 0, 0);

    EncodedProgram p = encodeProgram(prog);
    std::vector<VliwInst> dec = decodeProgram(p.bytes);
    ASSERT_EQ(dec.size(), prog.size());
    for (size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(dec[i], p.insts[i]) << "instruction " << i;
}

TEST(Encode, TwoSlotRoundtrip)
{
    VliwInst inst;
    Operation mix;
    mix.opc = Opcode::SUPER_DUALIMIX;
    mix.guard = regOne;
    mix.dst = {10, 11};
    mix.src = {2, 3, 4, 5};
    inst.slot[1] = mix; // slots 2+3

    Operation sld;
    sld.opc = Opcode::SUPER_LD32R;
    sld.dst = {12, 13};
    sld.src = {0, 0, 6, 7};
    VliwInst inst2;
    inst2.slot[3] = sld; // slots 4+5

    std::vector<VliwInst> prog = {VliwInst(), inst, inst2};
    EncodedProgram p = encodeProgram(prog, {false, false, false});
    std::vector<VliwInst> dec = decodeProgram(p.bytes);
    ASSERT_EQ(dec.size(), 3u);
    EXPECT_EQ(dec[1], inst);
    EXPECT_EQ(dec[2], inst2);
}

TEST(Encode, BranchPatchingAndJumpTargets)
{
    std::vector<VliwInst> prog(5);
    prog[0].slot[1] = mkOp(Opcode::JMPI, 0, 0, 0, /*target index*/ 3);
    prog[3].slot[0] = mkOp(Opcode::IADD, 2, 3, 4);
    prog[4].slot[1] = mkOp(Opcode::HALT, 0, 0);

    EncodedProgram p = encodeProgram(prog); // derives targets
    EXPECT_TRUE(p.uncompressed[3]);
    EXPECT_FALSE(p.uncompressed[2]);
    // The branch immediate now holds instruction 3's byte offset.
    const Operation &br = p.insts[0].slot[1];
    EXPECT_EQ(uint32_t(br.imm), p.offsets[3]);
    EXPECT_EQ(p.indexAt(p.offsets[3]), 3);
    // The instruction before a jump target omits its template: it
    // should shrink relative to one with a successor template.
    std::vector<VliwInst> dec = decodeProgram(p.bytes);
    EXPECT_EQ(dec.size(), prog.size());
}

TEST(Encode, DecodeAtJumpTargetWithoutTemplate)
{
    std::vector<VliwInst> prog(4);
    prog[1].slot[0] = mkOp(Opcode::IADD, 2, 3, 4);
    prog[2].slot[0] = mkOp(Opcode::ISUB, 5, 6, 7);
    std::vector<bool> targets = {false, false, true, false};
    EncodedProgram p = encodeProgram(prog, targets);
    // Decode instruction 2 directly (as the fetch unit does after a
    // jump): no template needed.
    DecodedInst d = decodeInst(p.bytes, p.offsets[2], std::nullopt);
    EXPECT_EQ(d.inst, p.insts[2]);
    EXPECT_EQ(d.size, p.sizeOf(2));
}

TEST(Encode, CompressionBeatsUncompressed)
{
    // A program of sparse instructions compresses well (paper: the
    // scheme efficiently encodes low-ILP code).
    std::vector<VliwInst> prog(64);
    for (size_t i = 1; i < prog.size(); ++i)
        prog[i].slot[i % numSlots] = mkOp(Opcode::IADD, 3, 4, 5);
    std::vector<bool> targets(prog.size(), false);
    EncodedProgram p = encodeProgram(prog, targets);
    // Compressed instructions: 1 + 10 + 26 bits = 5 bytes each,
    // against 28 uncompressed.
    for (size_t i = 1; i + 1 < prog.size(); ++i)
        EXPECT_LE(p.sizeOf(unsigned(i)), 5u);
}

TEST(Encode, RandomProgramRoundtripProperty)
{
    std::mt19937_64 rng(42);
    auto rnd_reg = [&](unsigned lim) {
        return RegIndex(rng() % lim);
    };

    for (int iter = 0; iter < 30; ++iter) {
        size_t n = 2 + rng() % 40;
        std::vector<VliwInst> prog(n);
        std::vector<bool> targets(n, false);
        for (size_t i = 0; i < n; ++i) {
            if (rng() % 4 == 0)
                targets[i] = true;
            for (unsigned s = 0; s < numSlots; ++s) {
                unsigned kind = rng() % 8;
                if (kind < 3)
                    continue; // leave unused
                switch (kind) {
                  case 3:
                    prog[i].slot[s] = mkOp(Opcode::IADD, rnd_reg(128),
                                           rnd_reg(128), rnd_reg(128), 0,
                                           rnd_reg(128));
                    break;
                  case 4:
                    prog[i].slot[s] =
                        mkOp(Opcode::IADDI, rnd_reg(128), rnd_reg(128), 0,
                             int32_t(rng() % 4096) - 2048);
                    break;
                  case 5:
                    prog[i].slot[s] = mkOp(Opcode::QUADAVG, rnd_reg(64),
                                           rnd_reg(64), rnd_reg(64));
                    break;
                  case 6:
                    prog[i].slot[s] = mkOp(Opcode::IMM16, rnd_reg(128), 0,
                                           0, int32_t(rng() % 65536));
                    break;
                  case 7:
                    if (s == 1 && !prog[i].slot[2].used()) {
                        Operation mix;
                        mix.opc = Opcode::SUPER_DUALIMIX;
                        mix.dst = {rnd_reg(128), rnd_reg(128)};
                        mix.src = {rnd_reg(128), rnd_reg(128),
                                   rnd_reg(128), rnd_reg(128)};
                        mix.guard = rnd_reg(128);
                        prog[i].slot[s] = mix;
                        ++s; // keep companion slot free
                    }
                    break;
                }
            }
        }
        EncodedProgram p = encodeProgram(prog, targets);
        std::vector<VliwInst> dec = decodeProgram(p.bytes);
        ASSERT_EQ(dec.size(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(dec[i], p.insts[i]) << "iter " << iter << " inst "
                                          << i;
    }
}
