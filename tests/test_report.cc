/**
 * @file
 * Unit tests for the run-manifest layer (support/report.hh): the
 * ordered Json value type round-trips through its own parser, a
 * RunReport emits a schema-valid tm3270.run_manifest.v1 document,
 * stat digests are stable fingerprints, warn() capture lands in the
 * warnings section, and self-profiler totals fold into "profile".
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/logging.hh"
#include "support/prof.hh"
#include "support/report.hh"

using namespace tm3270;
using report::Json;

namespace
{

Json
reparse(const Json &j)
{
    Json out;
    std::string err;
    EXPECT_TRUE(Json::parse(j.str(), out, err)) << err;
    return out;
}

} // namespace

TEST(Json, ScalarTypesSurviveRoundTrip)
{
    Json j = Json::object();
    j["null"] = Json();
    j["t"] = Json(true);
    j["f"] = Json(false);
    j["u"] = Json(uint64_t(18446744073709551615ull)); // UINT64_MAX
    j["i"] = Json(int64_t(-42));
    j["d"] = Json(1.5);
    j["whole"] = Json(3.0); // double that looks integral
    j["s"] = Json("line1\nline2\t\"quoted\" \\slash");

    Json r = reparse(j);
    EXPECT_TRUE(r.find("null")->isNull());
    EXPECT_TRUE(r.find("t")->asBool());
    EXPECT_FALSE(r.find("f")->asBool(true));
    EXPECT_EQ(r.find("u")->asUint(), 18446744073709551615ull);
    EXPECT_EQ(r.find("u")->type(), Json::Type::Uint);
    EXPECT_EQ(r.find("i")->asInt(), -42);
    EXPECT_EQ(r.find("i")->type(), Json::Type::Int);
    EXPECT_DOUBLE_EQ(r.find("d")->asDouble(), 1.5);
    // "3.0" must stay a double on re-parse (trailing ".0" written).
    EXPECT_EQ(r.find("whole")->type(), Json::Type::Double);
    EXPECT_DOUBLE_EQ(r.find("whole")->asDouble(), 3.0);
    EXPECT_EQ(r.find("s")->asString(),
              "line1\nline2\t\"quoted\" \\slash");
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Json j = Json::object();
    j["zeta"] = Json(1);
    j["alpha"] = Json(2);
    j["mid"] = Json(3);
    ASSERT_EQ(j.size(), 3u);
    EXPECT_EQ(j.member(0).first, "zeta");
    EXPECT_EQ(j.member(1).first, "alpha");
    EXPECT_EQ(j.member(2).first, "mid");

    // Order survives serialization + parsing (the parser keeps
    // document order too).
    Json r = reparse(j);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r.member(0).first, "zeta");
    EXPECT_EQ(r.member(2).first, "mid");
}

TEST(Json, SerializationIsDeterministic)
{
    auto build = [] {
        Json j = Json::object();
        j["a"] = Json(uint64_t(7));
        j["arr"].push(Json(1));
        j["arr"].push(Json("x"));
        j["nested"]["k"] = Json(2.25);
        return j;
    };
    EXPECT_EQ(build().str(), build().str());
    // write(ostream) and str() agree.
    std::ostringstream os;
    build().write(os);
    EXPECT_EQ(os.str(), build().str());
}

TEST(Json, ParserRejectsMalformedInput)
{
    Json out;
    std::string err;
    for (const char *bad : {
             "",            // empty
             "{",           // unterminated object
             "[1, 2,,]",    // stray comma
             "{\"a\" 1}",   // missing colon
             "\"\\q\"",     // bad escape
             "1 2",         // trailing garbage
             "nul",         // truncated literal
         }) {
        err.clear();
        EXPECT_FALSE(Json::parse(bad, out, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    Json out;
    std::string err;
    ASSERT_TRUE(Json::parse("\"\\u00e9\\u0041\"", out, err)) << err;
    EXPECT_EQ(out.asString(), "\xc3\xa9"
                              "A");
}

TEST(StatDigest, StableAndDiscriminating)
{
    // FNV-1a is fully specified: pin one known vector so the digest
    // can never silently change across platforms or refactors.
    EXPECT_EQ(report::fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(report::fnv1a("a"), 0xaf63dc4c8601ec8cull);

    std::string dump = "cpu.cycles 123\nlsu.loads 456\n";
    std::string d1 = report::statDigest(dump);
    EXPECT_EQ(d1, report::statDigest(dump));
    EXPECT_EQ(d1.rfind("fnv1a:", 0), 0u);
    EXPECT_EQ(d1.size(), 6 + 16u); // "fnv1a:" + 16 hex digits
    EXPECT_NE(d1, report::statDigest("cpu.cycles 124\nlsu.loads 456\n"));
}

TEST(RunReport, EmitsSchemaValidManifest)
{
    report::RunReport rep("bench", "unit");
    rep.context()["workers"] = Json(4u);
    rep.aggregate()["wall_ms"] = Json(12.5);
    Json b = Json::object();
    b["name"] = Json("BM_Unit");
    b["run_type"] = Json("iteration");
    b["items_per_second"] = Json(1e6);
    rep.addBenchmark(std::move(b));
    rep.addArtifact("trace", "/tmp/unit.trace.json");
    rep.addWarning("synthetic warning");

    std::ostringstream os;
    rep.write(os);
    const std::string text = os.str();

    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(text, doc, err)) << err;

    // Schema identity and fixed section order: "schema" is the first
    // member, kind/name follow, context precedes the payload.
    ASSERT_GE(doc.size(), 4u);
    EXPECT_EQ(doc.member(0).first, "schema");
    EXPECT_EQ(doc.member(0).second.asString(), report::kManifestSchema);
    EXPECT_EQ(doc.member(1).first, "kind");
    EXPECT_EQ(doc.member(1).second.asString(), "bench");
    EXPECT_EQ(doc.member(2).first, "name");
    EXPECT_EQ(doc.member(2).second.asString(), "unit");

    // Host context carries the build/run provenance keys.
    const Json *ctx = doc.find("context");
    ASSERT_NE(ctx, nullptr);
    for (const char *key : {"git_rev", "compiler", "build_type",
                            "num_cpus", "created_unix_ms", "workers"})
        EXPECT_NE(ctx->find(key), nullptr) << key;

    // Payload sections written because they are non-empty...
    ASSERT_NE(doc.find("benchmarks"), nullptr);
    EXPECT_EQ(doc.find("benchmarks")->at(0).find("name")->asString(),
              "BM_Unit");
    ASSERT_NE(doc.find("artifacts"), nullptr);
    ASSERT_NE(doc.find("warnings"), nullptr);
    EXPECT_EQ(doc.find("warnings")->at(0).asString(),
              "synthetic warning");
    // ...empty ones elided ("jobs" was never touched; no profiler).
    EXPECT_EQ(doc.find("jobs"), nullptr);
    EXPECT_EQ(doc.find("profile"), nullptr);
}

TEST(RunReport, ManifestReparsesByteIdentically)
{
    report::RunReport rep("sweep", "roundtrip");
    rep.aggregate()["sim_instrs"] = Json(uint64_t(987654321));
    Json j = Json::object();
    j["tag"] = Json("memcpy/D");
    j["ok"] = Json(true);
    j["stat_digest"] = Json(report::statDigest("dump"));
    rep.addJob(std::move(j));

    std::ostringstream os;
    rep.write(os);
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(os.str(), doc, err)) << err;
    // Serializing the parsed document reproduces the exact bytes: the
    // writer has one canonical form and the parser loses nothing.
    EXPECT_EQ(doc.str(), os.str());
}

TEST(RunReport, WarnCaptureRecordsAndForwards)
{
    report::RunReport rep("bench", "warncap");
    std::string forwarded;
    WarnSink outer = setWarnSink(
        [&](const std::string &m) { forwarded = m; });
    {
        report::WarnCapture wc(rep);
        warn("captured %d", 42);
    }
    setWarnSink(outer);

    EXPECT_EQ(forwarded, "captured 42"); // chained to the outer sink
    const Json *w = rep.doc().find("warnings");
    ASSERT_NE(w, nullptr);
    ASSERT_EQ(w->size(), 1u);
    EXPECT_EQ(w->at(0).asString(), "captured 42");
}

TEST(RunReport, ProfileSectionFoldsScopeTotals)
{
    prof::Profiler p;
    prof::Profiler *prev = prof::attach(&p);
    {
        TM_PROF_SCOPE(prof::Scope::Compile);
        {
            TM_PROF_SCOPE(prof::Scope::Predecode);
        }
    }
    prof::attach(prev);

    report::RunReport rep("bench", "profiled");
    rep.setProfile(&p);
    const Json *prof = rep.doc().find("profile");
    ASSERT_NE(prof, nullptr);
    const Json *scopes = prof->find("scopes");
    ASSERT_NE(scopes, nullptr);
    bool sawCompile = false, sawPredecode = false;
    for (size_t i = 0; i < scopes->size(); ++i) {
        const Json &s = scopes->at(i);
        const std::string &name = s.find("name")->asString();
        if (name == "compile") {
            sawCompile = true;
            EXPECT_EQ(s.find("calls")->asUint(), 1u);
            // The nested scope's time is accounted as child time.
            EXPECT_GE(s.find("total_ms")->asDouble(),
                      s.find("self_ms")->asDouble());
        }
        if (name == "predecode") {
            sawPredecode = true;
            EXPECT_EQ(s.find("calls")->asUint(), 1u);
        }
    }
    EXPECT_TRUE(sawCompile);
    EXPECT_TRUE(sawPredecode);
    // Compile ran with no enclosing scope: root time is non-zero.
    EXPECT_GT(prof->find("root_ms")->asDouble(), 0.0);

    // A null profiler adds nothing: the placeholder section stays
    // empty and write() elides it (the off-by-default path).
    report::RunReport off("bench", "off");
    off.setProfile(nullptr);
    std::ostringstream os;
    off.write(os);
    Json offDoc;
    std::string err;
    ASSERT_TRUE(Json::parse(os.str(), offDoc, err)) << err;
    EXPECT_EQ(offDoc.find("profile"), nullptr);
}
