/**
 * @file
 * Integration tests: every Table 5 workload runs to completion on
 * every machine configuration (A-D) and verifies bit-exactly against
 * its host reference. Parameterized across workloads and configs.
 */

#include <gtest/gtest.h>

#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

struct Case
{
    const char *workload;
    char config;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return std::string(info.param.workload) + "_" + info.param.config;
}

Workload
byName(const std::string &name)
{
    for (auto &w : table5Suite()) {
        if (w.name == name)
            return w;
    }
    if (name == "mp3")
        return mp3Workload();
    ADD_FAILURE() << "unknown workload " << name;
    return {};
}

class WorkloadRun : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(WorkloadRun, VerifiesAgainstReference)
{
    const Case &c = GetParam();
    Workload w = byName(c.workload);
    // runWorkload fatals if verification fails.
    RunResult r = runWorkload(w, configByLetter(c.config));
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.instrs, 100u);
    EXPECT_GT(r.opi(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Table5OnD, WorkloadRun,
    ::testing::Values(Case{"memset", 'D'}, Case{"memcpy", 'D'},
                      Case{"filter", 'D'}, Case{"rgb2yuv", 'D'},
                      Case{"rgb2cmyk", 'D'}, Case{"rgb2yiq", 'D'},
                      Case{"mpeg2_a", 'D'}, Case{"mpeg2_b", 'D'},
                      Case{"mpeg2_c", 'D'}, Case{"filmdet", 'D'},
                      Case{"majority_sel", 'D'}, Case{"mp3", 'D'}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    SuiteOnBaselineA, WorkloadRun,
    ::testing::Values(Case{"memset", 'A'}, Case{"memcpy", 'A'},
                      Case{"filter", 'A'}, Case{"rgb2yuv", 'A'},
                      Case{"rgb2cmyk", 'A'}, Case{"rgb2yiq", 'A'},
                      Case{"mpeg2_a", 'A'}, Case{"filmdet", 'A'},
                      Case{"majority_sel", 'A'}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    SpotChecksOnBC, WorkloadRun,
    ::testing::Values(Case{"memcpy", 'B'}, Case{"memcpy", 'C'},
                      Case{"mpeg2_a", 'B'}, Case{"filter", 'C'}),
    caseName);

TEST(WorkloadSuite, HasElevenEntries)
{
    EXPECT_EQ(table5Suite().size(), 11u);
}

TEST(WorkloadSuite, PerformanceOrderingSanity)
{
    // The TM3270 (D) must beat the TM3260 (A) in wall-clock time on
    // the streaming kernels (paper Fig. 7 always shows D fastest).
    for (const char *name : {"memset", "memcpy", "filmdet"}) {
        Workload w = byName(name);
        RunResult a = runWorkload(w, configByLetter('A'));
        RunResult d = runWorkload(w, configByLetter('D'));
        double t_a = a.microseconds(240);
        double t_d = d.microseconds(350);
        EXPECT_LT(t_d, t_a) << name;
    }
}
