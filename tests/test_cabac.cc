/**
 * @file
 * Dedicated tests for the CABAC golden model (src/cabac): arithmetic
 * encoder/decoder roundtrips across context counts and probability
 * skews (parameterized), window mechanics, bit accounting, and
 * generator invariants.
 */

#include <gtest/gtest.h>

#include <random>

#include "cabac/cabac.hh"
#include "support/logging.hh"

using namespace tm3270;

namespace
{

struct RtCase
{
    unsigned numCtx;
    double pMps;
    uint64_t seed;
};

class CabacRoundtrip : public ::testing::TestWithParam<RtCase>
{
};

} // namespace

TEST_P(CabacRoundtrip, EncodeDecodeBitExact)
{
    const RtCase &c = GetParam();
    SyntheticField f = generateField(8000, c.numCtx, c.pMps, c.seed);
    ASSERT_GT(f.bins.size(), 0u);
    CabacDecoder dec(f.stream);
    std::vector<CabacContext> ctx = f.initCtx;
    for (size_t i = 0; i < f.bins.size(); ++i) {
        ASSERT_EQ(dec.decodeBit(ctx[f.ctxSequence[i]]), f.bins[i])
            << "bin " << i;
    }
    // Never consumes more bits than the payload that was produced.
    EXPECT_LE(dec.bitsConsumed(), f.streamBits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CabacRoundtrip,
    ::testing::Values(RtCase{1, 0.5, 1}, RtCase{1, 0.95, 2},
                      RtCase{4, 0.6, 3}, RtCase{16, 0.8, 4},
                      RtCase{64, 0.7, 5}, RtCase{64, 0.9, 6},
                      RtCase{128, 0.85, 7}, RtCase{256, 0.75, 8}),
    [](const ::testing::TestParamInfo<RtCase> &info) {
        return strfmt("ctx%u_p%u_s%u", info.param.numCtx,
                      unsigned(info.param.pMps * 100),
                      unsigned(info.param.seed));
    });

TEST(CabacEncoderTest, DeterministicForSameSeed)
{
    SyntheticField a = generateField(5000, 32, 0.8, 77);
    SyntheticField b = generateField(5000, 32, 0.8, 77);
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.bins, b.bins);
    EXPECT_EQ(a.ctxSequence, b.ctxSequence);
}

TEST(CabacEncoderTest, TargetBitsApproximatelyMet)
{
    for (size_t target : {2000u, 20000u, 100000u}) {
        SyntheticField f = generateField(target, 32, 0.8, 9);
        EXPECT_LE(f.streamBits, target + 64);
        EXPECT_GE(f.streamBits, target - 256);
    }
}

TEST(CabacEncoderTest, SkewedSourceCompresses)
{
    // A highly skewed source (mostly MPS) must produce fewer stream
    // bits than bins; a fair source cannot beat 1 bit/bin by much.
    SyntheticField skew = generateField(10000, 16, 0.97, 10);
    EXPECT_GT(double(skew.bins.size()), 1.8 * double(skew.streamBits));
    SyntheticField fair = generateField(10000, 16, 0.5, 11);
    EXPECT_NEAR(double(fair.bins.size()) / double(fair.streamBits), 1.0,
                0.15);
}

TEST(CabacDecoderTest, MatchesStepFunctionManually)
{
    // Encode two bins with one context and replay the decode by hand
    // against biariDecodeSymbol to pin the window mechanics.
    CabacEncoder enc;
    CabacContext c{10, 1};
    enc.encodeBit(c, 1);
    enc.encodeBit(c, 0);
    std::vector<uint8_t> stream = enc.finish();

    CabacDecoder dec(stream);
    CabacContext d{10, 1};
    EXPECT_EQ(dec.decodeBit(d), 1u);
    EXPECT_EQ(dec.decodeBit(d), 0u);
    // Context evolution matches the encoder's.
    EXPECT_EQ(d.state, c.state);
    EXPECT_EQ(d.mps, c.mps);
}

TEST(CabacDecoderTest, ContextsEvolveIndependently)
{
    CabacEncoder enc;
    CabacContext a{0, 0}, b{40, 1};
    std::vector<unsigned> bits;
    std::mt19937_64 rng(12);
    std::vector<unsigned> which;
    for (int i = 0; i < 200; ++i) {
        unsigned w = rng() & 1;
        unsigned bit = (rng() >> 1) & 1;
        enc.encodeBit(w ? a : b, bit);
        bits.push_back(bit);
        which.push_back(w);
    }
    std::vector<uint8_t> stream = enc.finish();

    CabacDecoder dec(stream);
    CabacContext da{0, 0}, db{40, 1};
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(dec.decodeBit(which[size_t(i)] ? da : db),
                  bits[size_t(i)])
            << i;
    }
    EXPECT_EQ(da.state, a.state);
    EXPECT_EQ(db.state, b.state);
}

TEST(CabacGeneratorTest, InitialStatesWithinModelRange)
{
    SyntheticField f = generateField(3000, 64, 0.8, 13);
    EXPECT_EQ(f.initCtx.size(), 64u);
    for (const CabacContext &c : f.initCtx) {
        EXPECT_LT(c.state, 64);
        EXPECT_LE(c.mps, 1);
    }
    for (uint8_t ci : f.ctxSequence)
        EXPECT_LT(ci, 64);
    for (uint8_t bit : f.bins)
        EXPECT_LE(bit, 1);
}

TEST(CabacGeneratorTest, GuardBytesPresent)
{
    // The decoder reads 32-bit windows; the stream must carry padding.
    SyntheticField f = generateField(1000, 8, 0.8, 14);
    ASSERT_GE(f.stream.size(), 8u);
    for (size_t i = f.stream.size() - 8; i < f.stream.size(); ++i)
        EXPECT_EQ(f.stream[i], 0u);
}
