/**
 * @file
 * System-level tests: big-endian staging helpers, dual stores per
 * instruction (the paper's dual-tag-copy design point), debug MMIO,
 * DVFS frequency changes, and parameterized property sweeps — every
 * cache geometry must be functionally transparent (cache + flush ==
 * direct memory writes) under random access sequences, for both
 * write-miss policies.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/mmio.hh"
#include "support/logging.hh"
#include "core/system.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

using namespace tm3270;

TEST(System, BigEndianPokePeek)
{
    System sys(tm3270Config());
    sys.poke32(0x100, 0x11223344);
    EXPECT_EQ(sys.memory.byteAt(0x100), 0x11);
    EXPECT_EQ(sys.memory.byteAt(0x103), 0x44);
    EXPECT_EQ(sys.peek32(0x100), 0x11223344u);
}

TEST(System, TwoStoresPerInstruction)
{
    // Paper §4.2: slots 4 and 5 each have a tag-memory copy so two
    // stores can issue in one VLIW instruction.
    std::vector<VliwInst> prog(3);
    Operation imm;
    imm.opc = Opcode::IMM16;
    imm.dst[0] = 2;
    imm.imm = 0x1000;
    prog[0].slot[0] = imm;
    Operation v1 = imm, v2 = imm;
    v1.dst[0] = 3;
    v1.imm = 0x0AAA;
    v2.dst[0] = 4;
    v2.imm = 0x0BBB;
    prog[0].slot[1] = v1;
    prog[0].slot[2] = v2;

    Operation st1, st2;
    st1.opc = Opcode::ST32D;
    st1.guard = regOne;
    st1.src[0] = 2;
    st1.dst[0] = 3;
    st1.imm = 0;
    st2 = st1;
    st2.dst[0] = 4;
    st2.imm = 4;
    prog[1].slot[3] = st1; // issue slot 4
    prog[1].slot[4] = st2; // issue slot 5

    Operation halt;
    halt.opc = Opcode::HALT;
    halt.guard = regOne;
    prog[2].slot[1] = halt;

    System sys(tm3270Config());
    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sys.peek32(0x1000), 0x0AAAu);
    EXPECT_EQ(sys.peek32(0x1004), 0x0BBBu);
}

TEST(System, DebugCharacterOutput)
{
    tir::Builder b;
    tir::VReg mmio = b.imm32(int32_t(mmio_map::debugChar));
    for (char c : std::string("OK"))
        b.st32d(b.imm32(c), mmio, 0);
    b.halt(b.zero());
    System sys(tm3270Config());
    sys.runProgram(tir::compile(b.take(), tm3270Config()).encoded);
    EXPECT_EQ(sys.processor.mmio().debugOutput(), "OK");
}

TEST(System, DvfsFrequencyChangesMissLatency)
{
    // The BIU crosses clock domains: the same DRAM transaction costs
    // more CPU cycles at a higher CPU clock (paper §3/§5.2).
    tir::Builder b;
    tir::VReg base = b.imm32(0x00100000);
    tir::VReg v = b.ld32d(base, 0);
    b.halt(v);
    tir::TirProgram prog = b.take();

    auto run_at = [&](uint32_t mhz) {
        MachineConfig cfg = tm3270Config();
        cfg.freqMHz = mhz;
        System sys(cfg);
        return sys.runProgram(tir::compile(prog, cfg).encoded).cycles;
    };
    EXPECT_GT(run_at(350), run_at(175));
}

// ---------------------------------------------------------------------
// Parameterized functional-transparency sweep over cache geometries.
// ---------------------------------------------------------------------

struct GeomCase
{
    uint32_t size;
    unsigned assoc;
    unsigned line;
    bool allocateOnWrite;
};

class CacheTransparency : public ::testing::TestWithParam<GeomCase>
{
};

TEST_P(CacheTransparency, RandomAccessesMatchFlatMemory)
{
    const GeomCase &g = GetParam();
    MachineConfig cfg = tm3270Config();
    cfg.dcache = CacheGeometry{"dcache", g.size, g.assoc, g.line, true};
    cfg.lsu.allocateOnWriteMiss = g.allocateOnWrite;

    MainMemory mem(1 << 20);
    Biu biu(mem, cfg.freqMHz);
    Lsu lsu(cfg.lsu, cfg.dcache, biu, mem);

    std::vector<uint8_t> shadow(1 << 16);
    std::mt19937_64 rng(g.size ^ g.assoc ^ g.line);
    for (auto &v : shadow)
        v = uint8_t(rng());
    mem.write(0, shadow.data(), shadow.size());

    Cycles now = 0;
    for (int step = 0; step < 4000; ++step) {
        Addr addr = Addr(rng() % (shadow.size() - 8));
        unsigned kind = unsigned(rng() % 5);
        now += 1;
        if (kind == 0) {
            Word v = Word(rng());
            now += lsu.store(Opcode::ST32D, addr, v, now);
            for (int i = 0; i < 4; ++i)
                shadow[addr + unsigned(i)] = uint8_t(v >> (24 - 8 * i));
        } else if (kind == 1) {
            uint8_t v = uint8_t(rng());
            now += lsu.store(Opcode::ST8D, addr, v, now);
            shadow[addr] = v;
        } else if (kind == 2) {
            MemResult r = lsu.load(Opcode::LD32D, addr, 0, now);
            now += r.stall;
            Word want = (Word(shadow[addr]) << 24) |
                        (Word(shadow[addr + 1]) << 16) |
                        (Word(shadow[addr + 2]) << 8) |
                        shadow[addr + 3];
            ASSERT_EQ(r.data[0], want) << "addr " << addr;
        } else if (kind == 3) {
            MemResult r = lsu.load(Opcode::LD8U, addr, 0, now);
            now += r.stall;
            ASSERT_EQ(r.data[0], shadow[addr]);
        } else {
            lsu.softwarePrefetch(addr, now);
            lsu.tick(now);
        }
    }
    lsu.flushCaches();
    for (size_t i = 0; i < shadow.size(); ++i)
        ASSERT_EQ(mem.byteAt(Addr(i)), shadow[i]) << "byte " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheTransparency,
    ::testing::Values(
        GeomCase{128 * 1024, 4, 128, true},  // TM3270
        GeomCase{16 * 1024, 8, 64, false},   // TM3260
        GeomCase{16 * 1024, 4, 128, true},   // configs B/C
        GeomCase{4 * 1024, 1, 64, true},     // direct-mapped, tiny
        GeomCase{4 * 1024, 1, 64, false},
        GeomCase{8 * 1024, 2, 32, true},     // short lines
        GeomCase{2 * 1024, 16, 128, true},   // one-set degenerate
        GeomCase{64 * 1024, 8, 256, false}), // long lines
    [](const ::testing::TestParamInfo<GeomCase> &info) {
        const GeomCase &g = info.param;
        return strfmt("s%uk_a%u_l%u_%s", g.size / 1024, g.assoc, g.line,
                      g.allocateOnWrite ? "alloc" : "fetch");
    });

// ---------------------------------------------------------------------
// Parameterized workload sweep over prefetch engine settings.
// ---------------------------------------------------------------------

class PrefetchDepth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PrefetchDepth, StreamingLoadsStayCorrect)
{
    MachineConfig cfg = tm3270Config();
    cfg.lsu.maxInflightPrefetch = GetParam();

    tir::Builder b;
    tir::VReg p = b.var(), acc = b.var(), end = b.var();
    b.assign(p, b.imm32(0x00100000));
    b.assign(acc, b.imm32(0));
    b.assign(end, b.imm32(0x00100000 + 64 * 1024));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);
    tir::VReg cond = b.ilesu(b.iaddi(p, 4), end);
    b.assign(acc, b.iadd(acc, b.ld32d(p, 0)));
    b.assign(p, b.iaddi(p, 4));
    b.jmpt(cond, loop);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(acc);

    System sys(cfg);
    uint32_t want = 0;
    std::mt19937_64 rng(GetParam());
    for (Addr a = 0; a < 64 * 1024; a += 4) {
        Word v = Word(rng());
        sys.poke32(0x00100000 + a, v);
        want += v;
    }
    sys.processor.lsu().prefetcher().setRegion(
        0, 0x00100000, 0x00100000 + 64 * 1024, 128);
    RunResult r =
        sys.runProgram(tir::compile(b.take(), cfg).encoded);
    EXPECT_EQ(r.exitValue, want);
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefetchDepth,
                         ::testing::Values(1u, 2u, 4u, 8u));
