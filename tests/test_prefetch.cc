/**
 * @file
 * Tests for the region prefetch policy (paper §2.3).
 */

#include <gtest/gtest.h>

#include "prefetch/region_prefetcher.hh"

using namespace tm3270;

TEST(RegionPrefetcher, DisabledByDefault)
{
    RegionPrefetcher pf;
    EXPECT_FALSE(pf.onLoad(0x1000).has_value());
}

TEST(RegionPrefetcher, StrideWithinRegion)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0x100);
    auto t = pf.onLoad(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x1100u);
}

TEST(RegionPrefetcher, NoPrefetchPastRegionEnd)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0x100);
    EXPECT_FALSE(pf.onLoad(0x1F80).has_value());
    // Exactly at the last stride inside: ok.
    EXPECT_TRUE(pf.onLoad(0x1EFF).has_value());
}

TEST(RegionPrefetcher, OutsideRegionIgnored)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0x100);
    EXPECT_FALSE(pf.onLoad(0x0FFF).has_value());
    EXPECT_FALSE(pf.onLoad(0x2000).has_value());
}

TEST(RegionPrefetcher, NegativeStride)
{
    RegionPrefetcher pf;
    pf.setRegion(1, 0x1000, 0x2000, -0x100);
    auto t = pf.onLoad(0x1800);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x1700u);
    EXPECT_FALSE(pf.onLoad(0x1040).has_value()); // would leave region
}

TEST(RegionPrefetcher, FourIndependentRegions)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0x80);
    pf.setRegion(1, 0x3000, 0x4000, 0x200);
    pf.setRegion(2, 0x5000, 0x6000, 0x40);
    pf.setRegion(3, 0x7000, 0x8000, 0x400);
    EXPECT_EQ(*pf.onLoad(0x1000), 0x1080u);
    EXPECT_EQ(*pf.onLoad(0x3000), 0x3200u);
    EXPECT_EQ(*pf.onLoad(0x5000), 0x5040u);
    EXPECT_EQ(*pf.onLoad(0x7000), 0x7400u);
}

TEST(RegionPrefetcher, FirstMatchingRegionWins)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x3000, 0x80);
    pf.setRegion(1, 0x2000, 0x4000, 0x100); // overlaps region 0
    EXPECT_EQ(*pf.onLoad(0x2000), 0x2080u);
}

TEST(RegionPrefetcher, ImageRowStrideExample)
{
    // Paper Fig. 3: image processed in 4x4 blocks; stride = image
    // width * block height so the row of blocks below is prefetched.
    constexpr Addr image = 0x100000;
    constexpr unsigned width = 720;
    RegionPrefetcher pf;
    pf.setRegion(0, image, image + width * 480, int32_t(width * 4));
    auto t = pf.onLoad(image + 3 * width + 16); // inside block row 0
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, image + 7 * width + 16);
}

TEST(RegionPrefetcher, ResetDisablesAll)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0x80);
    pf.reset();
    EXPECT_FALSE(pf.onLoad(0x1000).has_value());
}

TEST(RegionPrefetcher, ZeroStrideDisabled)
{
    RegionPrefetcher pf;
    pf.setRegion(0, 0x1000, 0x2000, 0);
    EXPECT_FALSE(pf.onLoad(0x1000).has_value());
}
