/**
 * @file
 * Tests for the DDR memory model and the bus interface unit: byte
 * masking, open-row timing, clock-domain conversion, demand priority
 * over prefetch.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "memory/biu.hh"
#include "memory/main_memory.hh"

using namespace tm3270;

TEST(MainMemory, ReadWriteRoundtrip)
{
    MainMemory mem(1 << 20);
    uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.write(0x100, data, 8);
    uint8_t out[8] = {};
    mem.read(0x100, out, 8);
    EXPECT_EQ(std::memcmp(data, out, 8), 0);
}

TEST(MainMemory, MaskedWrite)
{
    MainMemory mem(4096);
    uint8_t base[4] = {0xAA, 0xAA, 0xAA, 0xAA};
    mem.write(0, base, 4);
    uint8_t data[4] = {1, 2, 3, 4};
    uint8_t mask[1] = {0b0101}; // bytes 0 and 2 only
    mem.write(0, data, 4, mask);
    EXPECT_EQ(mem.byteAt(0), 1);
    EXPECT_EQ(mem.byteAt(1), 0xAA);
    EXPECT_EQ(mem.byteAt(2), 3);
    EXPECT_EQ(mem.byteAt(3), 0xAA);
}

TEST(MainMemory, RowHitFasterThanRowMiss)
{
    MainMemory mem(1 << 22);
    Cycles first = mem.transactionCycles(0x0000, 128);
    Cycles hit = mem.transactionCycles(0x0200, 128);  // same bank+row
    EXPECT_LT(hit, first);
    // Different row in the same bank: precharge + activate.
    Cycles miss = mem.transactionCycles(0x0000 + (1 << 14), 128);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(mem.stats.get("row_hits"), 1u);
    EXPECT_EQ(mem.stats.get("row_misses"), 2u);
}

TEST(MainMemory, BurstLengthScalesWithBytes)
{
    MainMemory mem(1 << 20);
    mem.resetTiming();
    Cycles c128 = mem.transactionCycles(0x0000, 128);
    mem.resetTiming();
    Cycles c64 = mem.transactionCycles(0x0000, 64);
    // 128-byte burst is 8 memory cycles longer at 8 bytes/cycle.
    EXPECT_EQ(c128 - c64, 8u);
}

TEST(MainMemory, OutOfBoundsPanics)
{
    MainMemory mem(256);
    uint8_t b;
    EXPECT_DEATH(mem.read(250, &b, 8), "out of bounds");
}

TEST(Biu, ClockDomainConversion)
{
    MainMemory mem(1 << 20);
    // 350 MHz CPU, 200 MHz memory: CPU cycles = mem cycles * 1.75.
    Biu biu(mem, 350);
    Cycles done = biu.demandRead(0, 128, 1000);
    mem.resetTiming();
    MainMemory mem2(1 << 20);
    Cycles mem_cycles = mem2.transactionCycles(0, 128);
    Cycles expect = (mem_cycles * 350 + 199) / 200;
    EXPECT_EQ(done, 1000 + expect);
}

TEST(Biu, BusSerializesTransactions)
{
    MainMemory mem(1 << 20);
    Biu biu(mem, 350);
    Cycles d1 = biu.demandRead(0x0000, 128, 0);
    // Second read issued while the bus is still busy waits.
    Cycles d2 = biu.demandRead(0x10000, 128, 1);
    EXPECT_GE(d2, d1);
    EXPECT_GT(biu.stats.get("bus_wait_cycles"), 0u);
}

TEST(Biu, PrefetchYieldsToBusyBus)
{
    MainMemory mem(1 << 20);
    Biu biu(mem, 350);
    Cycles d1 = biu.demandRead(0, 128, 0);
    // Prefetch while busy: rejected.
    EXPECT_EQ(biu.prefetchRead(0x8000, 128, d1 - 1), 0u);
    // Prefetch on an idle bus: accepted.
    Cycles p = biu.prefetchRead(0x8000, 128, d1);
    EXPECT_GT(p, d1);
}

TEST(Biu, AsyncWriteOccupiesBus)
{
    MainMemory mem(1 << 20);
    Biu biu(mem, 350);
    Cycles w = biu.asyncWrite(0, 128, 0);
    EXPECT_GT(w, 0u);
    // A demand read right after the write starts must wait.
    Cycles r = biu.demandRead(0x40000, 128, 1);
    EXPECT_GT(r, w);
}

TEST(Biu, FrequencyAffectsLatencyInCpuCycles)
{
    MainMemory m1(1 << 20), m2(1 << 20);
    Biu fast(m1, 350), slow(m2, 240);
    Cycles f = fast.demandRead(0, 128, 0);
    Cycles s = slow.demandRead(0, 128, 0);
    // The same DRAM transaction costs more *CPU* cycles at 350 MHz.
    EXPECT_GT(f, s);
}
