// tm-lint-fixture: expect T1
//
// Seeded violation: hidden shared mutable state, in all three shapes
// the rule covers — a namespace-scope static, a function-local
// static, and an anonymous-namespace variable. Any of these is a
// data race (or a silent result dependency on job interleaving) once
// the translation unit is linked into the sweep driver's workers.

#include <cstdint>
#include <string>

namespace fixture
{

static uint64_t globalCallCount = 0;

namespace
{
std::string lastError;
} // namespace

inline uint64_t
nextId()
{
    static uint64_t counter = 0;
    ++globalCallCount;
    lastError.clear();
    return ++counter;
}

} // namespace fixture
