// tm-lint-fixture: expect D2
//
// Seeded violation: TM_TRACE_EVENT argument lists with side effects.
// The macro evaluates its arguments only when a tracer is attached,
// so any mutation here makes tracing-on behave differently from
// tracing-off — exactly what the observation-only gate forbids.

#include <cstdint>

namespace trace
{
struct Tracer
{
    void record(int kind, uint64_t ts, uint32_t dur);
};
} // namespace trace

#define TM_TRACE_EVENT(tracer, ...)                                         \
    do {                                                                    \
        if ((tracer) != nullptr)                                            \
            (tracer)->record(__VA_ARGS__);                                  \
    } while (0)

namespace fixture
{

struct Unit
{
    trace::Tracer *tracer = nullptr;
    uint64_t cycle = 0;
    uint32_t events = 0;

    void
    step()
    {
        TM_TRACE_EVENT(tracer, 1, cycle++, events);
        TM_TRACE_EVENT(tracer, 2, cycle, events += 1);
    }
};

} // namespace fixture
