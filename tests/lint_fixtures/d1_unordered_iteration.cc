// tm-lint-fixture: expect D1
//
// Seeded violation: an unannotated unordered container plus a
// range-for over it. Hash iteration order depends on libstdc++
// internals and pointer values, so any stat dump or serialization
// built this way loses bit-identity across hosts and runs.

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture
{

struct StatSink
{
    std::unordered_map<std::string, uint64_t> counters;

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const auto &kv : counters)
            sum += kv.second;
        return sum;
    }
};

} // namespace fixture
