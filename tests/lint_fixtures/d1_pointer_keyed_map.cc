// tm-lint-fixture: expect D1
//
// Seeded violation: a std::map keyed by a raw pointer. Ordered
// iteration then follows allocation addresses, which vary run to run
// — a classic way to lose deterministic dump order.

#include <cstdint>
#include <map>
#include <set>

namespace fixture
{

class StatGroup;

struct Registry
{
    std::map<StatGroup *, uint64_t> perGroup;
    std::set<const StatGroup *> seen;
};

} // namespace fixture
