// tm-lint-fixture: expect P1
//
// Seeded violation: TM_PROF_SCOPE argument lists with side effects.
// The self-profiler's scope macro reads one thread-local pointer and
// does nothing else when profiling is off, so an argument that
// mutates state would make TM_PROF=1 runs diverge from profiled-off
// runs — the exact coupling rule P1 (the D2 analogue for
// support/prof.hh) exists to forbid.

#include <cstdint>

namespace prof
{
enum class Scope : uint8_t { CoreRun, LsuRefill, NumScopes };

struct ScopeTimer
{
    explicit ScopeTimer(Scope s);
    ~ScopeTimer();
};
} // namespace prof

#define TM_PROF_CAT2(a, b) a##b
#define TM_PROF_CAT(a, b) TM_PROF_CAT2(a, b)
#define TM_PROF_SCOPE(scope_id)                                             \
    ::prof::ScopeTimer TM_PROF_CAT(tm_prof_scope_, __LINE__)((scope_id))

namespace fixture
{

struct Counter
{
    uint64_t n = 0;
    void inc() { ++n; }
};

struct Core
{
    Counter refills;
    int phase = 0;

    prof::Scope
    pickScope()
    {
        // Violation: increment inside the macro's argument list.
        TM_PROF_SCOPE(static_cast<prof::Scope>(phase++));
        return prof::Scope::CoreRun;
    }

    void
    refill()
    {
        // Violation: mutating method call inside the argument list.
        TM_PROF_SCOPE((refills.inc(), prof::Scope::LsuRefill));
    }
};

} // namespace fixture
