// tm-lint-fixture: expect H1
//
// Seeded violation: string-keyed StatGroup operations inside a hot
// function. tick()/step() run once per instruction; a map lookup per
// event is exactly the cost PR 1 removed with interned StatHandles.

#include "support/stats.hh"
#include "support/types.hh"

namespace fixture
{

struct SlowUnit
{
    tm3270::StatGroup stats{"slow"};

    void
    tick(tm3270::Cycles now)
    {
        stats.inc("ticks");
        if (now % 2 == 0)
            stats.set("last_even_tick", now);
    }

    void
    step()
    {
        stats.handle("steps").inc();
    }
};

} // namespace fixture
