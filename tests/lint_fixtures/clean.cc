// tm-lint-fixture: expect CLEAN
//
// Negative control: the approved idioms for everything the other
// fixtures violate. If any rule fires here, the lint is
// over-matching and the selftest fails.

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_map>

#include "support/stats.hh"
#include "support/types.hh"

namespace trace
{
struct Tracer
{
    void record(int kind, uint64_t ts, uint32_t dur);
};
} // namespace trace

#define TM_TRACE_EVENT(tracer, ...)                                         \
    do {                                                                    \
        if ((tracer) != nullptr)                                            \
            (tracer)->record(__VA_ARGS__);                                  \
    } while (0)

namespace fixture
{

/** Deterministic workload data: a seeded engine, never rand(). */
inline uint32_t
patternWord(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    return static_cast<uint32_t>(rng());
}

/** Ordered, value-keyed map: deterministic iteration is fine. */
inline uint64_t
sumOrdered(const std::map<std::string, uint64_t> &m)
{
    uint64_t sum = 0;
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}

struct FastUnit
{
    tm3270::StatGroup stats{"cpu"};
    // Interned at construction; golden-covered counter name.
    tm3270::StatHandle hLoads = stats.handle("loads");

    // tm-lint: allow(D1) lookup-only memo; never iterated.
    std::unordered_map<uint64_t, uint32_t> memo;

    trace::Tracer *tracer = nullptr;
    uint64_t cycle = 0;

    void
    tick(tm3270::Cycles now)
    {
        hLoads.inc();
        // Side-effect-free arguments only.
        TM_TRACE_EVENT(tracer, 1, now, static_cast<uint32_t>(cycle));
    }
};

/** Function-local static constants are allowed (immutable). */
inline const char *
unitName()
{
    static const char *const kName = "fast_unit";
    return kName;
}

} // namespace fixture
