// tm-lint-fixture: expect D1
//
// Seeded violation: C library randomness and wall-clock time in
// simulation code. Workload generators must use seeded engines
// (std::mt19937_64 rng(seed)) and timestamps must come from the
// cycle counter, never the host clock.

#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture
{

inline uint32_t
jitterSeed()
{
    std::random_device rd;
    std::srand(static_cast<unsigned>(std::time(nullptr)));
    return rd() ^ static_cast<uint32_t>(rand());
}

} // namespace fixture
