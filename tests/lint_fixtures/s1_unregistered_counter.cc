// tm-lint-fixture: expect S1
//
// Seeded violation: registering a counter that no golden workload
// ever exercises and that is not in the registered-but-unexercised
// allowlist. The golden-stats gate would silently never cover it.

#include "support/stats.hh"

namespace fixture
{

struct Widget
{
    tm3270::StatGroup stats{"widget"};
    tm3270::StatHandle hFrobs = stats.handle("frobnications_totally_new");
};

} // namespace fixture
