/**
 * @file
 * Processor pipeline tests on hand-encoded programs: guarded
 * execution, exposed-pipeline latencies, jump delay slots (paper §3),
 * memory operations, MMIO, and the machine configurations of Table 6.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "support/logging.hh"
#include "tir/scheduler.hh"
#include "workloads/workload.hh"

using namespace tm3270;

namespace
{

Operation
op(Opcode opc, RegIndex d = 0, RegIndex s1 = 0, RegIndex s2 = 0,
   int32_t imm = 0, RegIndex guard = regOne)
{
    Operation o;
    o.opc = opc;
    o.guard = guard;
    o.dst[0] = d;
    o.src[0] = s1;
    o.src[1] = s2;
    o.imm = imm;
    return o;
}

/** Place @p o in the first legal free slot of @p inst. */
void
place(VliwInst &inst, const Operation &o)
{
    const OpInfo &oi = o.info();
    uint8_t mask = oi.isLoad && oi.fu != FuClass::FracLoad &&
                           !oi.isTwoSlot
                       ? slotBit(5)
                       : oi.slotMask;
    for (unsigned s = 0; s < numSlots; ++s) {
        if ((mask & slotBit(s + 1)) && !inst.slot[s].used()) {
            inst.slot[s] = o;
            return;
        }
    }
    panic("no free slot");
}

/** One op per instruction, then halt reading @p result_reg. */
RunResult
runSeq(const std::vector<Operation> &ops, RegIndex result_reg,
       MachineConfig cfg = tm3270Config())
{
    std::vector<VliwInst> prog;
    for (const auto &o : ops) {
        VliwInst inst;
        place(inst, o);
        prog.push_back(inst);
    }
    VliwInst h;
    place(h, op(Opcode::HALT, 0, result_reg));
    prog.push_back(h);

    EncodedProgram ep = encodeProgram(prog);
    System sys(cfg);
    return sys.runProgram(ep);
}

} // namespace

TEST(Core, ArithmeticAndHalt)
{
    RunResult r = runSeq(
        {
            op(Opcode::IMM16, 2, 0, 0, 5),
            op(Opcode::IMM16, 3, 0, 0, 7),
            op(Opcode::IADD, 4, 2, 3),
        },
        4);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitValue, 12u);
    EXPECT_EQ(r.instrs, 4u);
}

TEST(Core, R0AndR1AreConstant)
{
    RunResult r = runSeq(
        {
            op(Opcode::IMM16, 0, 0, 0, 99), // write to r0 ignored
            op(Opcode::IADD, 2, 0, 1),      // 0 + 1
        },
        2);
    EXPECT_EQ(r.exitValue, 1u);
}

TEST(Core, GuardFalseSuppressesEffect)
{
    RunResult r = runSeq(
        {
            op(Opcode::IMM16, 2, 0, 0, 11),
            op(Opcode::IMM16, 3, 0, 0, 22),
            // r0 guard (always 0): must not overwrite r2.
            op(Opcode::IADD, 2, 3, 3, 0, regZero),
        },
        2);
    EXPECT_EQ(r.exitValue, 11u);
}

TEST(Core, GuardTrueAppliesEffect)
{
    RunResult r = runSeq(
        {
            op(Opcode::IMM16, 2, 0, 0, 11),
            op(Opcode::IMM16, 3, 0, 0, 22),
            op(Opcode::IADD, 2, 3, 3, 0, regOne),
        },
        2);
    EXPECT_EQ(r.exitValue, 44u);
}

TEST(Core, ExposedPipelineReadsOldValueBeforeLatency)
{
    // imul has latency 3: a read 1 cycle later must see the old value
    // — and the strict latency checker must reject it.
    std::vector<VliwInst> prog(3);
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 6));
    place(prog[1], op(Opcode::IMUL, 3, 2, 2));
    place(prog[2], op(Opcode::IADD, 4, 3, 0)); // too early!
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 4));
    prog.push_back(h);

    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    EXPECT_THROW(sys.runProgram(encodeProgram(prog)), FatalError);

    // With the check relaxed, the old (zero) value is observed.
    cfg.strictLatencyCheck = false;
    System sys2(cfg);
    RunResult r = sys2.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 0u);
}

TEST(Core, MultiplyLatencyRespected)
{
    RunResult r = runSeq(
        {
            op(Opcode::IMM16, 2, 0, 0, 6),
            op(Opcode::IMUL, 3, 2, 2),
            op(Opcode::NOP),
            op(Opcode::NOP),
            op(Opcode::IADD, 4, 3, 0), // 3 cycles after the imul
        },
        4);
    EXPECT_EQ(r.exitValue, 36u);
}

TEST(Core, JumpDelaySlotsExecute)
{
    // jmpi at instruction 1; the 5 delay-slot instructions increment
    // r2; instructions at the target do not re-increment.
    std::vector<VliwInst> prog;
    for (int i = 0; i < 10; ++i)
        prog.emplace_back();
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 0));
    place(prog[1], op(Opcode::JMPI, 0, 0, 0, /*target*/ 9));
    for (int i = 2; i < 7; ++i) // 5 delay slots
        place(prog[size_t(i)], op(Opcode::IADDI, 2, 2, 0, 1));
    // Instructions 7, 8 are skipped by the jump.
    place(prog[7], op(Opcode::IADDI, 2, 2, 0, 100));
    place(prog[8], op(Opcode::IADDI, 2, 2, 0, 100));
    place(prog[9], op(Opcode::HALT, 0, 2));

    System sys(tm3270Config());
    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 5u);
    // No stall cycles for the control transfer (paper: no branch
    // prediction needed).
    EXPECT_EQ(r.instrs, 8u); // 0,1 + 5 delay slots + halt
}

TEST(Core, Tm3260HasThreeDelaySlots)
{
    std::vector<VliwInst> prog;
    for (int i = 0; i < 8; ++i)
        prog.emplace_back();
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 0));
    place(prog[1], op(Opcode::JMPI, 0, 0, 0, 7));
    for (int i = 2; i < 7; ++i)
        place(prog[size_t(i)], op(Opcode::IADDI, 2, 2, 0, 1));
    place(prog[7], op(Opcode::HALT, 0, 2));

    System sys(tm3260Config());
    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 3u); // only 3 delay slots execute
}

TEST(Core, ConditionalJumpNotTaken)
{
    std::vector<VliwInst> prog(4);
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 1));
    place(prog[1], op(Opcode::JMPT, 0, 0, 0, 3, regZero)); // guard false
    place(prog[2], op(Opcode::IADDI, 2, 2, 0, 10));
    place(prog[3], op(Opcode::NOP));
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 2));
    prog.push_back(h);

    System sys(tm3270Config());
    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 11u); // fall-through executed
}

TEST(Core, LoadStoreRoundtripThroughCache)
{
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    sys.poke32(0x1000, 0xCAFED00D);

    std::vector<VliwInst> prog;
    std::vector<Operation> seq = {
        op(Opcode::IMM16, 2, 0, 0, 0x1000),
        op(Opcode::LD32D, 3, 2, 0, 0),
        op(Opcode::NOP), op(Opcode::NOP), op(Opcode::NOP),
        op(Opcode::IADDI, 4, 3, 0, 1),
        op(Opcode::ST32D, 4, 2, 0, 4), // mem[0x1004] = r4
        op(Opcode::NOP),
    };
    for (const auto &o : seq) {
        VliwInst inst;
        place(inst, o);
        prog.push_back(inst);
    }
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 4));
    prog.push_back(h);

    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 0xCAFED00Eu);
    EXPECT_EQ(sys.peek32(0x1004), 0xCAFED00Eu);
    EXPECT_GT(r.stallCycles, 0u); // the first load missed
}

TEST(Core, StoreValueRegisterIsDstField)
{
    // ST32D encodes the value register in the dst field; ensure the
    // gather logic reads it as a source.
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    std::vector<VliwInst> prog(4);
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 0x2000));
    place(prog[1], op(Opcode::IMM16, 3, 0, 0, 0x1234));
    place(prog[2], op(Opcode::ST32D, 3, 2, 0, 0));
    place(prog[3], op(Opcode::NOP));
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 0));
    prog.push_back(h);
    sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(sys.peek32(0x2000), 0x1234u);
}

TEST(Core, MmioProgramsPrefetchRegions)
{
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    std::vector<VliwInst> prog;
    std::vector<Operation> seq = {
        op(Opcode::IMMHI, 2, 0, 0, 0xE000),        // MMIO base
        op(Opcode::IMM16, 3, 0, 0, 0x4000),        // PF0 start
        op(Opcode::ST32D, 3, 2, 0, 0x000),         // PF0_START_ADDR
        op(Opcode::IMM16, 4, 0, 0, 0x5000),
        op(Opcode::ST32D, 4, 2, 0, 0x004),         // PF0_END_ADDR
        op(Opcode::IMM16, 5, 0, 0, 128),
        op(Opcode::ST32D, 5, 2, 0, 0x008),         // PF0_STRIDE
        op(Opcode::NOP),
    };
    for (const auto &o : seq) {
        VliwInst inst;
        place(inst, o);
        prog.push_back(inst);
    }
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 0));
    prog.push_back(h);
    sys.runProgram(encodeProgram(prog));

    const auto &region = sys.processor.lsu().prefetcher().region(0);
    EXPECT_EQ(region.start, 0x4000u);
    EXPECT_EQ(region.end, 0x5000u);
    EXPECT_EQ(region.stride, 128);
}

TEST(Core, CycleCounterMmio)
{
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    std::vector<VliwInst> prog;
    std::vector<Operation> seq = {
        op(Opcode::IMMHI, 2, 0, 0, 0xE000),
        op(Opcode::LD32D, 3, 2, 0, 0x100), // cycle counter
        op(Opcode::NOP), op(Opcode::NOP), op(Opcode::NOP),
    };
    for (const auto &o : seq) {
        VliwInst inst;
        place(inst, o);
        prog.push_back(inst);
    }
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 3));
    prog.push_back(h);
    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_GT(r.exitValue, 0u);
    EXPECT_LT(r.exitValue, r.cycles);
}

TEST(Core, SuperLd32rEndToEnd)
{
    MachineConfig cfg = tm3270Config();
    System sys(cfg);
    sys.poke32(0x3000, 0x11223344);
    sys.poke32(0x3004, 0x55667788);

    std::vector<VliwInst> prog(4);
    place(prog[0], op(Opcode::IMM16, 2, 0, 0, 0x3000));
    Operation sld;
    sld.opc = Opcode::SUPER_LD32R;
    sld.dst = {3, 4};
    sld.src = {0, 0, 2, 0}; // base r2 + r0
    prog[1].slot[3] = sld;  // slots 4+5
    place(prog[2], op(Opcode::NOP));
    place(prog[3], op(Opcode::NOP));
    VliwInst a;
    place(a, op(Opcode::NOP));
    prog.push_back(a);
    VliwInst add;
    place(add, op(Opcode::IXOR, 5, 3, 4));
    prog.push_back(add);
    VliwInst h;
    place(h, op(Opcode::HALT, 0, 5));
    prog.push_back(h);

    RunResult r = sys.runProgram(encodeProgram(prog));
    EXPECT_EQ(r.exitValue, 0x11223344u ^ 0x55667788u);
}

TEST(Core, IcacheMissesOnColdFetch)
{
    RunResult r = runSeq({op(Opcode::IMM16, 2, 0, 0, 3)}, 2);
    EXPECT_EQ(r.exitValue, 3u);
}

TEST(Core, ConfigTable6)
{
    MachineConfig a = tm3260Config();
    EXPECT_EQ(a.freqMHz, 240u);
    EXPECT_EQ(a.dcache.sizeBytes, 16u * 1024);
    EXPECT_EQ(a.dcache.lineBytes, 64u);
    EXPECT_EQ(a.dcache.assoc, 8u);
    EXPECT_FALSE(a.lsu.allocateOnWriteMiss);
    EXPECT_EQ(a.loadLatency, 3u);
    EXPECT_EQ(a.jumpDelaySlots, 3u);
    EXPECT_EQ(a.maxLoadsPerInst, 2u);

    MachineConfig d = tm3270Config();
    EXPECT_EQ(d.freqMHz, 350u);
    EXPECT_EQ(d.dcache.sizeBytes, 128u * 1024);
    EXPECT_EQ(d.dcache.lineBytes, 128u);
    EXPECT_EQ(d.dcache.assoc, 4u);
    EXPECT_TRUE(d.lsu.allocateOnWriteMiss);
    EXPECT_EQ(d.loadLatency, 4u);
    EXPECT_EQ(d.jumpDelaySlots, 5u);
    EXPECT_EQ(d.maxLoadsPerInst, 1u);

    MachineConfig b = configByLetter('B');
    EXPECT_EQ(b.freqMHz, 240u);
    EXPECT_EQ(b.dcache.sizeBytes, 16u * 1024);
    EXPECT_EQ(b.dcache.lineBytes, 128u); // TM3270 line size
    MachineConfig c = configByLetter('C');
    EXPECT_EQ(c.freqMHz, 350u);
}

// ---------------------------------------------------------------------
// Fast-path determinism/equivalence guard.
//
// The interpreter's fast path (predecoded micro-op stream, interned
// stat handles, inline writeback ring) must be a pure speedup: the
// same workload must produce bit-identical results and stat dumps in
// any fresh simulator instance, and again after Processor::reset().
// ---------------------------------------------------------------------

namespace
{

std::string
dumpAllStats(System &sys)
{
    std::ostringstream os;
    sys.processor.stats.dump(os);
    sys.processor.lsu().stats.dump(os);
    sys.processor.lsu().dcache().stats.dump(os);
    sys.processor.icache().stats.dump(os);
    sys.processor.biu().stats.dump(os);
    sys.memory.stats.dump(os);
    return os.str();
}

} // namespace

TEST(Core, DeterministicRunAndStatDumps)
{
    workloads::Workload w = workloads::filterWorkload();
    tir::CompiledProgram cp = tir::compile(w.build(), tm3270Config());

    System a(tm3270Config());
    w.init(a);
    RunResult ra = a.runProgram(cp.encoded);
    ASSERT_TRUE(ra.halted);
    std::string dump_a = dumpAllStats(a);

    System b(tm3270Config());
    w.init(b);
    RunResult rb = b.runProgram(cp.encoded);
    ASSERT_TRUE(rb.halted);

    EXPECT_EQ(ra.exitValue, rb.exitValue);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instrs, rb.instrs);
    EXPECT_EQ(ra.ops, rb.ops);
    EXPECT_EQ(ra.stallCycles, rb.stallCycles);
    EXPECT_EQ(dump_a, dumpAllStats(b));
    EXPECT_FALSE(dump_a.empty());

    std::string err;
    EXPECT_TRUE(w.verify(b, err)) << err;
}

TEST(Core, RunAfterResetIsIdentical)
{
    workloads::Workload w = workloads::filterWorkload();
    tir::CompiledProgram cp = tir::compile(w.build(), tm3270Config());

    System sys(tm3270Config());
    w.init(sys);
    RunResult r1 = sys.runProgram(cp.encoded);
    ASSERT_TRUE(r1.halted);

    // Micro-architectural reset (core + bus + DRAM timing), then
    // restage the input and run the same program again.
    sys.processor.reset();
    sys.processor.biu().reset();
    w.init(sys);
    RunResult r2 = sys.runProgram(cp.encoded);
    ASSERT_TRUE(r2.halted);

    EXPECT_EQ(r1.exitValue, r2.exitValue);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instrs, r2.instrs);
    EXPECT_EQ(r1.ops, r2.ops);
    EXPECT_EQ(r1.stallCycles, r2.stallCycles);

    std::string err;
    EXPECT_TRUE(w.verify(sys, err)) << err;
}
