/**
 * @file
 * Assembler/disassembler tests: syntax coverage, slot placement,
 * labels, guards, two-slot operations, error diagnostics and
 * assemble -> encode -> decode -> disassemble -> assemble roundtrips.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/system.hh"
#include "encode/decoder.hh"
#include "support/logging.hh"

using namespace tm3270;

TEST(Asm, BasicInstruction)
{
    AsmProgram p = assemble("iadd r2 r3 -> r4\n");
    ASSERT_EQ(p.insts.size(), 1u);
    const Operation &op = p.insts[0].slot[0];
    EXPECT_EQ(op.opc, Opcode::IADD);
    EXPECT_EQ(op.src[0], 2);
    EXPECT_EQ(op.src[1], 3);
    EXPECT_EQ(op.dst[0], 4);
}

TEST(Asm, MultipleOpsShareInstruction)
{
    AsmProgram p = assemble("iadd r2 r3 -> r4 | isub r5 r6 -> r7\n");
    ASSERT_EQ(p.insts.size(), 1u);
    EXPECT_EQ(p.insts[0].numOps(), 2u);
}

TEST(Asm, ExplicitSlots)
{
    AsmProgram p = assemble("[3] iadd r2 r3 -> r4\n");
    EXPECT_FALSE(p.insts[0].slot[0].used());
    EXPECT_TRUE(p.insts[0].slot[2].used());
}

TEST(Asm, GuardPrefix)
{
    AsmProgram p = assemble("if r9 iadd r2 r3 -> r4\n");
    EXPECT_EQ(p.insts[0].slot[0].guard, 9);
}

TEST(Asm, ImmediatesAndComments)
{
    AsmProgram p = assemble(
        "; a comment line\n"
        "imm16 #-5 -> r2   ; trailing comment\n"
        "iaddi r2 #100 -> r3\n");
    ASSERT_EQ(p.insts.size(), 2u);
    EXPECT_EQ(p.insts[0].slot[0].imm, -5);
    EXPECT_EQ(p.insts[1].slot[0].imm, 100);
}

TEST(Asm, LoadsGoToSlot5)
{
    AsmProgram p = assemble("ld32d r2 #8 -> r3\n");
    EXPECT_TRUE(p.insts[0].slot[4].used());
}

TEST(Asm, StoreValueAfterArrow)
{
    AsmProgram p = assemble("st32d r2 #4 -> r7\n");
    const Operation *op = nullptr;
    for (const auto &o : p.insts[0].slot) {
        if (o.used())
            op = &o;
    }
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->opc, Opcode::ST32D);
    EXPECT_EQ(op->src[0], 2); // base
    EXPECT_EQ(op->dst[0], 7); // value register
}

TEST(Asm, LabelsAndBranches)
{
    AsmProgram p = assemble(
        "imm16 #0 -> r2\n"
        "loop:\n"
        "iaddi r2 #1 -> r2\n"
        "if r3 jmpt @loop\n"
        "halt r2\n");
    ASSERT_EQ(p.insts.size(), 4u);
    EXPECT_TRUE(p.jumpTargets[1]);
    // Branch immediate resolves to instruction index 1.
    bool found = false;
    for (const auto &o : p.insts[2].slot) {
        if (o.used() && o.opc == Opcode::JMPT) {
            EXPECT_EQ(o.imm, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Asm, TwoSlotOperation)
{
    AsmProgram p =
        assemble("super_dualimix r2 r3 r4 r5 -> r6 r7\n");
    const Operation &op = p.insts[0].slot[1]; // slots 2+3
    EXPECT_EQ(op.opc, Opcode::SUPER_DUALIMIX);
    EXPECT_EQ(op.src[3], 5);
    EXPECT_EQ(op.dst[1], 7);
}

TEST(Asm, Errors)
{
    EXPECT_THROW(assemble("bogus_op r1 -> r2\n"), FatalError);
    EXPECT_THROW(assemble("iadd r2 r3 -> r200\n"), FatalError);
    EXPECT_THROW(assemble("jmpt @nowhere\n"), FatalError);
    EXPECT_THROW(assemble("[9] iadd r2 r3 -> r4\n"), FatalError);
    // Six ALU ops cannot share five slots.
    EXPECT_THROW(
        assemble("iadd r2 r2 -> r2 | iadd r2 r2 -> r2 | "
                 "iadd r2 r2 -> r2 | iadd r2 r2 -> r2 | "
                 "iadd r2 r2 -> r2 | iadd r2 r2 -> r2\n"),
        FatalError);
    // Duplicate label.
    EXPECT_THROW(assemble("a:\na:\nhalt r0\n"), FatalError);
}

TEST(Asm, AssembledProgramRunsOnProcessor)
{
    AsmProgram p = assemble(
        "imm16 #0 -> r2 | imm16 #0 -> r3\n"
        "loop:\n"
        "iaddi r2 #7 -> r2 | iaddi r3 #1 -> r3\n"
        "ilesi r3 #10 -> r4\n"
        "if r4 jmpt @loop\n"
        "nop\nnop\nnop\nnop\nnop\n" // delay slots
        "halt r2\n");
    System sys(tm3270Config());
    RunResult r = sys.runProgram(p.encode());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitValue, 70u);
}

TEST(Asm, DisassembleRoundtrip)
{
    const char *src =
        "imm16 #42 -> r2 | immhi #4096 -> r3\n"
        "top:\n"
        "iadd r2 r3 -> r4 | if r5 isub r6 r7 -> r8\n"
        "ld32d r2 #16 -> r9\n"
        "st32d r4 #0 -> r9\n"
        "jmpi @top\n"
        "halt r4\n";
    AsmProgram p1 = assemble(src);
    std::string dis = disassemble(p1.insts, p1.jumpTargets);
    AsmProgram p2 = assemble(dis);
    ASSERT_EQ(p2.insts.size(), p1.insts.size());
    for (size_t i = 0; i < p1.insts.size(); ++i)
        EXPECT_EQ(p2.insts[i], p1.insts[i]) << "instruction " << i;
}

TEST(Asm, DisassembleEncodedProgram)
{
    AsmProgram p = assemble(
        "imm16 #1 -> r2\n"
        "t:\n"
        "iaddi r2 #1 -> r2\n"
        "jmpi @t\n"
        "halt r2\n");
    EncodedProgram e = p.encode();
    std::string dis = disassemble(e);
    // The label-form branch survives re-assembly.
    AsmProgram p2 = assemble(dis);
    EXPECT_EQ(p2.insts.size(), p.insts.size());
}
