/**
 * @file
 * Tests for the TIR builder, list scheduler and register allocator:
 * correctness of scheduled code on the strict-latency-checking
 * processor, slot constraints, delay-slot filling, loop-carried
 * variables, and retargeting (TM3270 vs TM3260 constraints).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

using namespace tm3270;
using tir::Builder;
using tir::VReg;

namespace
{

RunResult
compileAndRun(tir::TirProgram prog, const MachineConfig &cfg,
              System *sys_out = nullptr)
{
    tir::CompiledProgram cp = tir::compile(prog, cfg);
    if (sys_out)
        return sys_out->runProgram(cp.encoded);
    System sys(cfg);
    return sys.runProgram(cp.encoded);
}

} // namespace

TEST(Tir, StraightLineArithmetic)
{
    Builder b;
    VReg x = b.imm32(21);
    VReg y = b.imm32(2);
    VReg p = b.imul(x, y);
    b.halt(p);
    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitValue, 42u);
}

TEST(Tir, LargeConstantMaterialization)
{
    Builder b;
    VReg v = b.imm32(int32_t(0xDEADBEEF));
    b.halt(v);
    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, 0xDEADBEEFu);
}

TEST(Tir, CountingLoop)
{
    // sum = 0; for (i = 0; i < 10; ++i) sum += i;  -> 45
    Builder b;
    VReg sum = b.var();
    VReg i = b.var();
    b.assign(sum, b.imm32(0));
    b.assign(i, b.imm32(0));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    b.assign(sum, b.iadd(sum, i));
    b.assign(i, b.iaddi(i, 1));
    VReg c = b.ilesu(i, b.imm32(10));
    b.jmpt(c, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(sum);

    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, 45u);
}

TEST(Tir, RunsOnAllFourConfigurations)
{
    for (char letter : {'A', 'B', 'C', 'D'}) {
        Builder b;
        VReg sum = b.var();
        VReg i = b.var();
        b.assign(sum, b.imm32(0));
        b.assign(i, b.imm32(0));
        int loop = b.newBlock();
        b.setBlock(0);
        b.jmpi(loop);
        b.setBlock(loop);
        b.assign(sum, b.iadd(sum, b.imul(i, i)));
        b.assign(i, b.iaddi(i, 1));
        b.jmpt(b.ilesu(i, b.imm32(8)), loop);
        int done = b.newBlock();
        b.setBlock(done);
        b.halt(sum);

        RunResult r =
            compileAndRun(b.take(), configByLetter(letter));
        EXPECT_EQ(r.exitValue, 140u) << "config " << letter;
    }
}

TEST(Tir, MemoryLoopStoresAndLoads)
{
    Builder b;
    VReg base = b.var();
    VReg i = b.var();
    b.assign(base, b.imm32(0x10000));
    b.assign(i, b.imm32(0));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg addr = b.iadd(base, b.asli(i, 2));
    b.st32r(b.imul(i, i), base, b.asli(i, 2));
    (void)addr;
    b.assign(i, b.iaddi(i, 1));
    b.jmpt(b.ilesu(i, b.imm32(16)), loop);

    int sumb = b.newBlock();
    b.setBlock(sumb);
    VReg total = b.var();
    VReg j = b.var();
    b.assign(total, b.imm32(0));
    b.assign(j, b.imm32(0));
    int loop2 = b.newBlock();
    b.jmpi(loop2);
    b.setBlock(loop2);
    VReg v = b.ld32r(base, b.asli(j, 2));
    b.assign(total, b.iadd(total, v));
    b.assign(j, b.iaddi(j, 1));
    b.jmpt(b.ilesu(j, b.imm32(16)), loop2);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(total);

    unsigned expect = 0;
    for (unsigned k = 0; k < 16; ++k)
        expect += k * k;
    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, expect);
}

TEST(Tir, SchedulerRespectsLoadsPerInstr)
{
    // Eight independent loads: the TM3270 (1 load/instr) needs at
    // least 8 instructions; the TM3260 (2 loads/instr) at least 4.
    auto build = [] {
        Builder b;
        VReg base = b.imm32(0x8000);
        VReg acc = b.temp();
        std::vector<VReg> vals;
        for (int i = 0; i < 8; ++i)
            vals.push_back(b.ld32d(base, i * 4));
        acc = vals[0];
        for (int i = 1; i < 8; ++i)
            acc = b.iadd(acc, vals[size_t(i)]);
        b.halt(acc);
        return b.take();
    };
    tir::CompiledProgram d = tir::compile(build(), tm3270Config());
    tir::CompiledProgram a = tir::compile(build(), tm3260Config());

    auto count_loads_per_inst = [](const tir::CompiledProgram &cp,
                                   unsigned max_allowed) {
        for (const auto &inst : cp.insts) {
            unsigned loads = 0;
            for (const auto &op : inst.slot)
                loads += op.used() && op.info().isLoad;
            ASSERT_LE(loads, max_allowed);
        }
    };
    count_loads_per_inst(d, 1);
    count_loads_per_inst(a, 2);
}

TEST(Tir, SchedulerUsesSlot5ForTm3270Loads)
{
    Builder b;
    VReg base = b.imm32(0x8000);
    VReg v = b.ld32d(base, 0);
    b.halt(v);
    tir::CompiledProgram cp = tir::compile(b.take(), tm3270Config());
    for (const auto &inst : cp.insts) {
        for (unsigned s = 0; s < numSlots; ++s) {
            if (inst.slot[s].used() && inst.slot[s].info().isLoad) {
                EXPECT_EQ(s, 4u); // issue slot 5
            }
        }
    }
}

TEST(Tir, Tm3260RejectsNewOperations)
{
    Builder b;
    VReg addr = b.imm32(0x8000);
    VReg frac = b.imm32(8);
    VReg v = b.ldFrac8(addr, frac);
    b.halt(v);
    EXPECT_THROW(tir::compile(b.take(), tm3260Config()), FatalError);
}

TEST(Tir, TwoSlotOperationEndToEnd)
{
    Builder b;
    VReg a = b.imm32(int32_t(dual16(2, 3)));
    VReg c = b.imm32(int32_t(dual16(4, 5)));
    auto [hi, lo] = b.superDualimix(a, c, a, c);
    // hi = 2*4 + 2*4 = 16; lo = 3*5 + 3*5 = 30
    VReg sum = b.iadd(hi, lo);
    b.halt(sum);
    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, 46u);
}

TEST(Tir, SuperLd32rEndToEnd)
{
    Builder b;
    VReg base = b.imm32(0x9000);
    auto [w0, w1] = b.superLd32r(base, b.zero());
    b.halt(b.ixor(w0, w1));

    System sys(tm3270Config());
    sys.poke32(0x9000, 0xAAAA5555);
    sys.poke32(0x9004, 0x5555AAAA);
    RunResult r = compileAndRun(b.take(), tm3270Config(), &sys);
    EXPECT_EQ(r.exitValue, 0xFFFFFFFFu);
}

TEST(Tir, GuardedAssign)
{
    // if (x > 5) y = 1 else y = 2, branch-free with guards.
    for (int x : {3, 9}) {
        Builder b;
        VReg vx = b.imm32(x);
        VReg cond = b.igtr(vx, b.imm32(5));
        VReg ncond = b.ixor(cond, b.one());
        VReg y = b.var();
        b.assign(y, b.imm32(0));
        b.assign(y, b.imm32(1), cond);
        b.assign(y, b.imm32(2), ncond);
        b.halt(y);
        RunResult r = compileAndRun(b.take(), tm3270Config());
        EXPECT_EQ(r.exitValue, x > 5 ? 1u : 2u);
    }
}

TEST(Tir, DelaySlotsAreFilledWithWork)
{
    // A loop with enough independent work should issue > 1 op/instr
    // even with the 5 delay slots (the scheduler fills them).
    Builder b;
    VReg s1 = b.var(), s2 = b.var(), s3 = b.var(), s4 = b.var();
    VReg i = b.var();
    for (VReg v : {s1, s2, s3, s4})
        b.assign(v, b.imm32(0));
    b.assign(i, b.imm32(0));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);
    // Compute the loop condition early so the branch can issue while
    // the unrolled body fills the delay slots.
    VReg cond = b.ilesi(i, 96);
    b.assign(i, b.iaddi(i, 4));
    for (int u = 0; u < 4; ++u) {
        b.assign(s1, b.iaddi(s1, 1));
        b.assign(s2, b.iaddi(s2, 2));
        b.assign(s3, b.iaddi(s3, 3));
        b.assign(s4, b.iaddi(s4, 4));
    }
    b.jmpt(cond, loop);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.iadd(b.iadd(s1, s2), b.iadd(s3, s4)));

    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, 100u * 10);
    EXPECT_GT(r.opi(), 1.5);
}

TEST(Tir, ManyLocalsGetRecycledRegisters)
{
    // More temporaries than architectural registers, but short-lived:
    // linear scan must recycle.
    Builder b;
    VReg acc = b.var();
    b.assign(acc, b.imm32(0));
    int body = b.newBlock();
    b.setBlock(0);
    b.jmpi(body);
    b.setBlock(body);
    for (int i = 0; i < 300; ++i)
        b.assign(acc, b.iadd(acc, b.imm32(i)));
    b.halt(acc);

    RunResult r = compileAndRun(b.take(), tm3270Config());
    EXPECT_EQ(r.exitValue, 300u * 299 / 2);
}

TEST(Tir, CompiledCodeIsDenserOnWiderUnroll)
{
    // Sanity: more unrolling raises OPI (the 5-slot machine gets used).
    auto build = [](int unroll) {
        Builder b;
        std::vector<VReg> acc(static_cast<size_t>(unroll), tir::vzero);
        for (auto &v : acc)
            v = b.var();
        VReg i = b.var();
        for (auto &v : acc)
            b.assign(v, b.imm32(0));
        b.assign(i, b.imm32(0));
        int loop = b.newBlock();
        b.setBlock(0);
        b.jmpi(loop);
        b.setBlock(loop);
        for (auto &v : acc)
            b.assign(v, b.iaddi(v, 3));
        b.assign(i, b.iaddi(i, 1));
        b.jmpt(b.ilesu(i, b.imm32(50)), loop);
        int done = b.newBlock();
        b.setBlock(done);
        VReg t = acc[0];
        for (size_t k = 1; k < acc.size(); ++k)
            t = b.iadd(t, acc[k]);
        b.halt(t);
        return b.take();
    };
    RunResult narrow = compileAndRun(build(1), tm3270Config());
    RunResult wide = compileAndRun(build(8), tm3270Config());
    EXPECT_EQ(narrow.exitValue, 150u);
    EXPECT_EQ(wide.exitValue, 8u * 150);
    EXPECT_GT(wide.opi(), narrow.opi());
}
