/**
 * @file
 * Unit tests for the support library: bit utilities, saturation,
 * bitstreams and statistics.
 */

#include <gtest/gtest.h>

#include <random>

#include "support/bitops.hh"
#include "support/bitstream.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/stats.hh"

using namespace tm3270;

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitOps, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(128), 7u);
    EXPECT_EQ(log2i(1ull << 31), 31u);
}

TEST(BitOps, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
    EXPECT_EQ(insertBits(0, 8, 8, 0xFF), 0xFF00u);
    EXPECT_EQ(insertBits(0xFFFFFFFF, 4, 4, 0), 0xFFFFFF0Fu);
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x8000, 16), -32768);
}

TEST(BitOps, Fits)
{
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_TRUE(fitsUnsigned(4095, 12));
    EXPECT_FALSE(fitsUnsigned(4096, 12));
}

TEST(BitOps, Align)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1230, 16), 0x1230u);
}

TEST(BitOps, Dual16)
{
    EXPECT_EQ(dual16(0x1234, 0x5678), 0x12345678u);
    EXPECT_EQ(dual16Hi(0x12345678), 0x1234u);
    EXPECT_EQ(dual16Lo(0x12345678), 0x5678u);
    EXPECT_EQ(dual16(0xFFFF1, 0xFFFF2), 0xFFF1FFF2u);
}

TEST(Saturate, ClipS32)
{
    EXPECT_EQ(clipS32(int64_t(INT32_MAX) + 5), INT32_MAX);
    EXPECT_EQ(clipS32(int64_t(INT32_MIN) - 5), INT32_MIN);
    EXPECT_EQ(clipS32(42), 42);
}

TEST(Saturate, ClipS16)
{
    EXPECT_EQ(clipS16(40000), 32767);
    EXPECT_EQ(clipS16(-40000), -32768);
    EXPECT_EQ(clipS16(-5), -5);
}

TEST(Saturate, ClipU8)
{
    EXPECT_EQ(clipU8(-1), 0);
    EXPECT_EQ(clipU8(256), 255);
    EXPECT_EQ(clipU8(128), 128);
}

TEST(Bitstream, RoundtripFixed)
{
    BitWriter w;
    w.put(0x2A, 6);
    w.put(0x1, 1);
    w.put(0xDEADBEEF, 32);
    w.alignByte();
    w.put(0xFF, 8);

    BitReader r(w.data());
    EXPECT_EQ(r.get(6), 0x2Au);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(32), 0xDEADBEEFu);
    r.alignByte();
    EXPECT_EQ(r.get(8), 0xFFu);
}

TEST(Bitstream, RoundtripRandomProperty)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::pair<uint64_t, unsigned>> fields;
        BitWriter w;
        for (int i = 0; i < 100; ++i) {
            unsigned len = 1 + unsigned(rng() % 33);
            uint64_t v = rng() & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
            fields.emplace_back(v, len);
            w.put(v, len);
        }
        BitReader r(w.data());
        for (auto &[v, len] : fields)
            EXPECT_EQ(r.get(len), v);
    }
}

TEST(Bitstream, BitSizeTracksPadding)
{
    BitWriter w;
    w.put(0x3, 11);
    EXPECT_EQ(w.bitSize(), 11u);
    EXPECT_EQ(w.size(), 2u);
    w.alignByte();
    w.put(1, 1);
    EXPECT_EQ(w.size(), 3u);
}

TEST(Bitstream, UnderflowThrows)
{
    BitWriter w;
    w.put(0xAB, 8);
    BitReader r(w.data());
    r.get(8);
    EXPECT_THROW(r.getBit(), FatalError);
}

TEST(Stats, Counters)
{
    StatGroup g("grp");
    EXPECT_EQ(g.get("x"), 0u);
    g.inc("x");
    g.inc("x", 4);
    EXPECT_EQ(g.get("x"), 5u);
    g.set("y", 100);
    EXPECT_EQ(g.get("y"), 100u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_EQ(g.get("y"), 0u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("test %d", 42), FatalError);
    try {
        fatal("value %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7");
    }
}

TEST(Logging, Strfmt)
{
    EXPECT_EQ(strfmt("%s-%04d", "abc", 42), "abc-0042");
}
