/**
 * @file
 * Unit tests for the support library: bit utilities, saturation,
 * bitstreams and statistics.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "support/bitops.hh"
#include "support/bitstream.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/stats.hh"

using namespace tm3270;

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitOps, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(128), 7u);
    EXPECT_EQ(log2i(1ull << 31), 31u);
}

TEST(BitOps, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
    EXPECT_EQ(insertBits(0, 8, 8, 0xFF), 0xFF00u);
    EXPECT_EQ(insertBits(0xFFFFFFFF, 4, 4, 0), 0xFFFFFF0Fu);
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x8000, 16), -32768);
}

TEST(BitOps, Fits)
{
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_TRUE(fitsUnsigned(4095, 12));
    EXPECT_FALSE(fitsUnsigned(4096, 12));
}

TEST(BitOps, Align)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1230, 16), 0x1230u);
}

TEST(BitOps, Dual16)
{
    EXPECT_EQ(dual16(0x1234, 0x5678), 0x12345678u);
    EXPECT_EQ(dual16Hi(0x12345678), 0x1234u);
    EXPECT_EQ(dual16Lo(0x12345678), 0x5678u);
    EXPECT_EQ(dual16(0xFFFF1, 0xFFFF2), 0xFFF1FFF2u);
}

TEST(Saturate, ClipS32)
{
    EXPECT_EQ(clipS32(int64_t(INT32_MAX) + 5), INT32_MAX);
    EXPECT_EQ(clipS32(int64_t(INT32_MIN) - 5), INT32_MIN);
    EXPECT_EQ(clipS32(42), 42);
}

TEST(Saturate, ClipS16)
{
    EXPECT_EQ(clipS16(40000), 32767);
    EXPECT_EQ(clipS16(-40000), -32768);
    EXPECT_EQ(clipS16(-5), -5);
}

TEST(Saturate, ClipU8)
{
    EXPECT_EQ(clipU8(-1), 0);
    EXPECT_EQ(clipU8(256), 255);
    EXPECT_EQ(clipU8(128), 128);
}

TEST(Bitstream, RoundtripFixed)
{
    BitWriter w;
    w.put(0x2A, 6);
    w.put(0x1, 1);
    w.put(0xDEADBEEF, 32);
    w.alignByte();
    w.put(0xFF, 8);

    BitReader r(w.data());
    EXPECT_EQ(r.get(6), 0x2Au);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(32), 0xDEADBEEFu);
    r.alignByte();
    EXPECT_EQ(r.get(8), 0xFFu);
}

TEST(Bitstream, RoundtripRandomProperty)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<std::pair<uint64_t, unsigned>> fields;
        BitWriter w;
        for (int i = 0; i < 100; ++i) {
            unsigned len = 1 + unsigned(rng() % 33);
            uint64_t v = rng() & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
            fields.emplace_back(v, len);
            w.put(v, len);
        }
        BitReader r(w.data());
        for (auto &[v, len] : fields)
            EXPECT_EQ(r.get(len), v);
    }
}

TEST(Bitstream, BitSizeTracksPadding)
{
    BitWriter w;
    w.put(0x3, 11);
    EXPECT_EQ(w.bitSize(), 11u);
    EXPECT_EQ(w.size(), 2u);
    w.alignByte();
    w.put(1, 1);
    EXPECT_EQ(w.size(), 3u);
}

TEST(Bitstream, UnderflowThrows)
{
    BitWriter w;
    w.put(0xAB, 8);
    BitReader r(w.data());
    r.get(8);
    EXPECT_THROW(r.getBit(), FatalError);
}

TEST(Stats, Counters)
{
    StatGroup g("grp");
    EXPECT_EQ(g.get("x"), 0u);
    g.inc("x");
    g.inc("x", 4);
    EXPECT_EQ(g.get("x"), 5u);
    g.set("y", 100);
    EXPECT_EQ(g.get("y"), 100u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_EQ(g.get("y"), 0u);
}

TEST(Stats, ChildGroupsPrefixDumpAndAll)
{
    StatGroup parent("cpu");
    StatGroup child("stall");
    parent.addChild(&child);
    parent.inc("cycles", 10);
    child.inc("icache", 3);
    child.inc("dcache_miss", 4);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_EQ(os.str(), "cpu.cycles 10\n"
                        "cpu.stall.dcache_miss 4\n"
                        "cpu.stall.icache 3\n");

    auto all = parent.all();
    EXPECT_EQ(all.at("cycles"), 10u);
    EXPECT_EQ(all.at("stall.icache"), 3u);
    EXPECT_EQ(all.at("stall.dcache_miss"), 4u);

    // reset() recurses into children; handles stay valid.
    StatHandle h = child.handle("icache");
    parent.reset();
    EXPECT_EQ(child.get("icache"), 0u);
    h.inc(7);
    EXPECT_EQ(parent.all().at("stall.icache"), 7u);
}

TEST(Stats, UntouchedChildGroupStaysInvisible)
{
    StatGroup parent("lsu");
    StatGroup child("stall");
    parent.addChild(&child);
    StatHandle h = child.handle("copyback"); // interned, never touched
    (void)h;
    parent.inc("loads", 2);

    std::ostringstream os;
    parent.dump(os);
    EXPECT_EQ(os.str(), "lsu.loads 2\n");
    EXPECT_EQ(parent.all().count("stall.copyback"), 0u);
}

TEST(Logging, WarnSinkCapturesAndRestores)
{
    std::vector<std::string> got;
    WarnSink prev = setWarnSink(
        [&](const std::string &m) { got.push_back(m); });
    warn("answer %d", 42);
    warn("%s", "plain");
    WarnSink mine = setWarnSink(std::move(prev)); // restore default
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "answer 42");
    EXPECT_EQ(got[1], "plain");
    EXPECT_TRUE(bool(mine)); // the sink we installed came back out
}

TEST(Logging, WarnSinkSerializesConcurrentWarnings)
{
    std::vector<std::string> got;
    WarnSink prev = setWarnSink(
        [&](const std::string &m) { got.push_back(m); });

    constexpr int kThreads = 4, kPerThread = 50;
    {
        std::vector<std::jthread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kPerThread; ++i)
                    warn("t%d-%d", t, i);
            });
        }
    }
    setWarnSink(std::move(prev));

    // The sink runs under the warn mutex: every message arrives whole
    // (the unsynchronized vector would be corrupt otherwise).
    ASSERT_EQ(got.size(), size_t(kThreads * kPerThread));
    for (const std::string &m : got) {
        EXPECT_EQ(m.front(), 't');
        EXPECT_NE(m.find('-'), std::string::npos);
    }
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("test %d", 42), FatalError);
    try {
        fatal("value %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7");
    }
}

TEST(Logging, Strfmt)
{
    EXPECT_EQ(strfmt("%s-%04d", "abc", 42), "abc-0042");
}
