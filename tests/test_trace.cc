/**
 * @file
 * Tests for the observability subsystem (DESIGN.md §9): tracer ring
 * buffer semantics, Chrome-JSON determinism, the interval sampler,
 * per-job trace files from the sweep driver, and the two invariants
 * the subsystem is built around:
 *
 *  - attribution: the per-cause cpu.stall.* counters partition
 *    stall_cycles exactly, on every Table 5 workload x configuration
 *    A-D cell (plus the prefetch-heavy motion-estimation kernel);
 *  - observation only: attaching a tracer and a sampler changes no
 *    architectural result and no stat counter.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/sweep.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"
#include "workloads/motion_est.hh"

using namespace tm3270;
using namespace tm3270::driver;
using namespace tm3270::workloads;

namespace
{

/** Sum of the per-cause stall counters of @p cpu ("stall.*" keys). */
uint64_t
stallSum(const StatGroup &cpu)
{
    uint64_t sum = 0;
    for (const auto &[k, v] : cpu.all()) {
        if (k.rfind("stall.", 0) == 0)
            sum += v;
    }
    return sum;
}

/** Run motion estimation (all TM3270 features, region prefetcher on)
 *  with optional instrumentation attached; returns the RunResult. */
RunResult
runMotionEst(System &sys, trace::Tracer *t, trace::IntervalSampler *s)
{
    tir::CompiledProgram cp = tir::compile(
        buildMotionEstimation({true, true, true}), tm3270Config());
    stageMotionEstimation(sys, 99);
    if (t)
        sys.processor.attachTracer(t);
    if (s)
        sys.processor.attachSampler(s);
    RunResult r = sys.runProgram(cp.encoded);
    std::string err;
    EXPECT_TRUE(r.halted && verifyMotionEstimation(sys, 99, err)) << err;
    return r;
}

/** Full stat dump of @p sys, same group order as the sweep driver. */
std::string
dumpAll(System &sys)
{
    const StatGroup *groups[] = {
        &sys.processor.stats,
        &sys.processor.lsu().stats,
        &sys.processor.lsu().dcache().stats,
        &sys.processor.icache().stats,
        &sys.processor.biu().stats,
        &sys.memory.stats,
    };
    std::ostringstream os;
    for (const StatGroup *g : groups)
        g->dump(os);
    return os.str();
}

} // namespace

TEST(TracerRing, WrapKeepsMostRecentWindow)
{
    trace::Tracer t(4);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);

    for (uint32_t i = 0; i < 10; ++i)
        t.record(trace::Ev::Issue, Cycles(i), 0, 0, i);

    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    // The retained window is the most recent events, oldest first.
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t.at(i).ts, Cycles(6 + i));
        EXPECT_EQ(t.at(i).aux, uint32_t(6 + i));
    }

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    t.record(trace::Ev::IcacheMiss, 123, 0, 0x80, 0);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.at(0).ts, 123u);
}

TEST(TracerRing, PartialFillPreservesOrder)
{
    trace::Tracer t(8);
    for (uint32_t i = 0; i < 3; ++i)
        t.record(trace::Ev::DramRowHit, Cycles(10 * i), 0, i, 0);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.dropped(), 0u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(t.at(i).ts, Cycles(10 * i));
}

TEST(TraceJson, ByteIdenticalAcrossRuns)
{
    std::string json[2];
    RunResult runs[2];
    for (int i = 0; i < 2; ++i) {
        System sys(tm3270Config());
        trace::Tracer t;
        runs[i] = runMotionEst(sys, &t, nullptr);
        EXPECT_GT(t.recorded(), 0u);
        std::ostringstream os;
        t.writeChromeJson(os);
        json[i] = os.str();
    }
    EXPECT_EQ(runs[0].cycles, runs[1].cycles);
    ASSERT_EQ(json[0], json[1]);
    // Loose shape checks; scripts/verify.sh parses the file for real.
    EXPECT_EQ(json[0].front(), '{');
    EXPECT_NE(json[0].find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json[0].find("\"prefetch_install\""), std::string::npos);
    EXPECT_NE(json[0].find("\"issue_slots\""), std::string::npos);
}

TEST(TraceObservation, TracedRunChangesNoStatsOrResults)
{
    System plain(tm3270Config());
    RunResult r0 = runMotionEst(plain, nullptr, nullptr);

    System traced(tm3270Config());
    trace::Tracer t;
    trace::IntervalSampler s(1024);
    RunResult r1 = runMotionEst(traced, &t, &s);

    EXPECT_EQ(r0.cycles, r1.cycles);
    EXPECT_EQ(r0.instrs, r1.instrs);
    EXPECT_EQ(r0.ops, r1.ops);
    EXPECT_EQ(r0.stallCycles, r1.stallCycles);
    EXPECT_EQ(dumpAll(plain), dumpAll(traced));
    EXPECT_GT(t.recorded(), 0u);
    EXPECT_FALSE(s.rows().empty());
}

TEST(StallAttribution, SumsToStallCyclesAcrossSuiteAndConfigs)
{
    std::vector<SimJob> jobs;
    for (const Workload &w : table5Suite()) {
        for (char c : {'A', 'B', 'C', 'D'})
            jobs.push_back(makeJob(w, c));
    }
    SweepDriver drv;
    SweepReport rep = drv.run(jobs);
    ASSERT_EQ(rep.failed, 0u);
    for (const JobResult &jr : rep.results) {
        uint64_t sum = 0;
        for (const auto &[k, v] : jr.stats) {
            if (k.rfind("cpu.stall.", 0) == 0)
                sum += v;
        }
        EXPECT_EQ(sum, jr.run.stallCycles)
            << jr.tag << ": per-cause stall counters must partition "
            << "stall_cycles exactly";
    }
}

TEST(StallAttribution, CoversPrefetchWaitPath)
{
    // Motion estimation with the region prefetcher exercises the
    // prefetch-wait and copyback causes the Table 5 sweep may miss.
    System sys(tm3270Config());
    RunResult r = runMotionEst(sys, nullptr, nullptr);
    EXPECT_EQ(stallSum(sys.processor.stats), r.stallCycles);
}

TEST(IntervalSampler, RowsCoverRunAndStayMonotonic)
{
    System sys(tm3270Config());
    trace::IntervalSampler s(512);
    RunResult r = runMotionEst(sys, nullptr, &s);

    const auto &rows = s.rows();
    ASSERT_GT(rows.size(), 2u);
    // finishRun() records the final partial interval.
    EXPECT_EQ(rows.back().cycle, r.cycles);
    EXPECT_EQ(rows.back().instrs, r.instrs);
    EXPECT_EQ(rows.back().stallCycles, r.stallCycles);
    for (size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GT(rows[i].cycle, rows[i - 1].cycle);
        EXPECT_GE(rows[i].instrs, rows[i - 1].instrs);
        EXPECT_GE(rows[i].loads, rows[i - 1].loads);
        EXPECT_GE(rows[i].icacheAccesses, rows[i - 1].icacheAccesses);
    }

    std::ostringstream csv;
    s.writeCsv(csv);
    std::istringstream in(csv.str());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, rows.size() + 1); // header + one line per row

    std::ostringstream js;
    s.writeJson(js);
    EXPECT_EQ(js.str().front(), '[');
}

TEST(SweepTrace, TmTraceEnvWritesPerJobFiles)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "tm_trace_test";
    fs::remove_all(dir);
    ASSERT_EQ(setenv("TM_TRACE", dir.string().c_str(), 1), 0);
    ASSERT_EQ(setenv("TM_TRACE_INTERVAL", "1024", 1), 0);

    std::vector<SimJob> jobs = {makeJob(memcpyWorkload(), 'D'),
                                makeJob(filterWorkload(), 'A')};
    SweepDriver drv(1);
    SweepReport rep = drv.run(jobs);

    unsetenv("TM_TRACE");
    unsetenv("TM_TRACE_INTERVAL");

    ASSERT_EQ(rep.failed, 0u);
    for (const char *base : {"memcpy_D", "filter_A"}) {
        fs::path tj = dir / (std::string(base) + ".trace.json");
        fs::path ic = dir / (std::string(base) + ".intervals.csv");
        EXPECT_TRUE(fs::exists(tj)) << tj;
        EXPECT_TRUE(fs::exists(ic)) << ic;
        EXPECT_GT(fs::file_size(tj), 0u);
        EXPECT_GT(fs::file_size(ic), 0u);
    }
    // Trace files must not perturb the simulated results.
    std::vector<SimJob> again = {makeJob(memcpyWorkload(), 'D'),
                                 makeJob(filterWorkload(), 'A')};
    SweepReport rep2 = SweepDriver(1).run(again);
    ASSERT_EQ(rep2.failed, 0u);
    for (size_t i = 0; i < rep.results.size(); ++i) {
        EXPECT_EQ(rep.results[i].statDump, rep2.results[i].statDump)
            << rep.results[i].tag;
    }
    fs::remove_all(dir);
}
