/**
 * @file
 * Randomized differential test of the whole code-generation and
 * execution stack: random TIR programs are run through a simple
 * sequential reference interpreter and through
 * compile -> encode -> fetch/decode -> pipeline on all four machine
 * configurations. Every path must agree bit-exactly on the final
 * result and on memory side effects.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/system.hh"
#include "isa/semantics.hh"
#include "support/logging.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

using namespace tm3270;
using tir::Builder;
using tir::TirOp;
using tir::TirProgram;
using tir::VReg;

namespace
{

constexpr Addr scratchBase = 0x00010000;

/** Sequential reference interpreter for TIR programs. */
class TirInterp
{
  public:
    Word
    run(const TirProgram &p)
    {
        std::vector<Word> val(p.numVRegs, 0);
        val[tir::vone] = 1;
        size_t block = 0;
        uint64_t steps = 0;
        while (block < p.blocks.size()) {
            const tir::TirBlock &blk = p.blocks[block];
            for (const TirOp &op : blk.ops) {
                tm_assert(++steps < 4000000, "interpreter ran away");
                exec(op, val);
            }
            if (!blk.hasTerminator) {
                ++block;
                continue;
            }
            const TirOp &t = blk.terminator;
            bool guard = (val[t.guard] & 1) != 0;
            switch (t.opc) {
              case Opcode::HALT:
                if (guard)
                    return val[t.src[0]];
                ++block;
                break;
              case Opcode::JMPI:
                block = size_t(t.targetBlock);
                break;
              case Opcode::JMPT:
                block = guard ? size_t(t.targetBlock) : block + 1;
                break;
              case Opcode::JMPF:
                block = !guard ? size_t(t.targetBlock) : block + 1;
                break;
              default:
                panic("unhandled terminator");
            }
        }
        panic("interpreter fell off the program");
    }

    std::map<Addr, uint8_t> memory;

  private:
    void
    exec(const TirOp &op, std::vector<Word> &val)
    {
        const OpInfo &oi = opInfo(op.opc);
        if ((val[op.guard] & 1) == 0)
            return;
        if (oi.isLoad || oi.isStore) {
            Addr addr = val[op.src[0]] + Addr(op.imm);
            unsigned len = memAccessSize(op.opc);
            if (oi.isStore) {
                Word v = val[op.dst[0]];
                for (unsigned i = 0; i < len; ++i) {
                    memory[addr + i] =
                        uint8_t(v >> (8 * (len - 1 - i)));
                }
            } else {
                Word v = 0;
                for (unsigned i = 0; i < len; ++i)
                    v = (v << 8) | byteAt(addr + i);
                if (op.opc == Opcode::LD8S)
                    v = Word(SWord(int8_t(v)));
                if (op.opc == Opcode::LD16S)
                    v = Word(SWord(int16_t(v)));
                val[op.dst[0]] = v;
            }
            return;
        }
        Operation o;
        o.opc = op.opc;
        o.imm = op.imm;
        std::array<Word, 4> s = {0, 0, 0, 0};
        for (unsigned i = 0; i < 4; ++i) {
            if (oi.readsSrc(i))
                s[i] = val[op.src[i]];
        }
        ExecResult r = execPure(o, s);
        for (unsigned i = 0; i < oi.numDst; ++i)
            val[op.dst[i]] = r.dst[i];
    }

    uint8_t
    byteAt(Addr a)
    {
        auto it = memory.find(a);
        return it == memory.end() ? 0 : it->second;
    }
};

/** Random program generator. */
TirProgram
randomProgram(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    Builder b;

    constexpr unsigned num_vars = 6;
    std::vector<VReg> vars(num_vars);
    for (auto &v : vars) {
        v = b.var();
        b.assign(v, b.imm32(int32_t(rng())));
    }
    VReg i = b.var();
    b.assign(i, b.imm32(0));
    unsigned iters = 1 + unsigned(rng() % 9);

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);

    const Opcode pure_ops[] = {
        Opcode::IADD,     Opcode::ISUB,      Opcode::IXOR,
        Opcode::IAND,     Opcode::IOR,       Opcode::IMIN,
        Opcode::IMAX,     Opcode::QUADAVG,   Opcode::QUADADD,
        Opcode::UME8UU,   Opcode::MERGELSB,  Opcode::PACK16LSB,
        Opcode::FUNSHIFT2, Opcode::DSPIDUALADD, Opcode::IMUL,
        Opcode::QUADUMIN, Opcode::DSPIDUALPACK,
    };

    unsigned n_ops = 4 + unsigned(rng() % 20);
    std::vector<VReg> pool(vars);
    for (unsigned k = 0; k < n_ops; ++k) {
        VReg a = pool[rng() % pool.size()];
        VReg c = pool[rng() % pool.size()];
        unsigned kind = unsigned(rng() % 10);
        if (kind < 7) {
            Opcode opc = pure_ops[rng() % std::size(pure_ops)];
            VReg r = b.emit(opc, a, c);
            pool.push_back(r);
        } else if (kind == 7) {
            // Guarded variable update.
            VReg g = b.ilesu(a, c);
            b.assign(vars[rng() % num_vars], pool[rng() % pool.size()],
                     g);
        } else if (kind == 8) {
            // Store then reload through simulated memory.
            unsigned slot = unsigned(rng() % 8);
            VReg base = b.imm32(int32_t(scratchBase + 64 * (seed % 4)));
            b.st32d(a, base, int32_t(4 * slot));
            pool.push_back(b.ld32d(base, int32_t(4 * slot)));
        } else {
            b.assign(vars[rng() % num_vars], pool[rng() % pool.size()]);
        }
    }

    b.assign(i, b.iaddi(i, 1));
    b.jmpt(b.ilesi(i, int32_t(iters)), loop);

    int tail = b.newBlock();
    b.setBlock(tail);
    VReg h = vars[0];
    for (unsigned k = 1; k < num_vars; ++k)
        h = b.ixor(h, vars[k]);
    b.halt(h);
    return b.take();
}

} // namespace

TEST(TirRandom, DifferentialAgainstInterpreterAndAcrossConfigs)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        TirProgram prog = randomProgram(seed);

        TirInterp interp;
        Word want = interp.run(prog);

        for (char letter : {'A', 'B', 'C', 'D'}) {
            MachineConfig cfg = configByLetter(letter);
            tir::CompiledProgram cp = tir::compile(prog, cfg);
            System sys(cfg);
            RunResult r = sys.runProgram(cp.encoded, 4'000'000);
            ASSERT_TRUE(r.halted)
                << "seed " << seed << " config " << letter;
            EXPECT_EQ(r.exitValue, want)
                << "seed " << seed << " config " << letter;
            // Memory side effects agree byte for byte.
            for (const auto &[addr, byte] : interp.memory) {
                uint8_t got;
                sys.readBytes(addr, &got, 1);
                EXPECT_EQ(got, byte) << "seed " << seed << " config "
                                     << letter << " addr " << addr;
            }
        }
    }
}

TEST(TirRandom, EncodedImageDecodesToScheduledProgram)
{
    for (uint64_t seed = 100; seed < 110; ++seed) {
        tir::CompiledProgram cp =
            tir::compile(randomProgram(seed), tm3270Config());
        std::vector<VliwInst> dec = decodeProgram(cp.encoded.bytes);
        ASSERT_EQ(dec.size(), cp.encoded.insts.size()) << seed;
        for (size_t i = 0; i < dec.size(); ++i)
            EXPECT_EQ(dec[i], cp.encoded.insts[i]) << seed << ":" << i;
    }
}
