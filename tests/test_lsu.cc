/**
 * @file
 * Tests for the load/store unit (paper §4): write-miss policies,
 * byte-validity interaction, non-aligned and line-crossing accesses,
 * big-endian data assembly, the CWB, LD_FRAC8 and SUPER_LD32R data
 * paths, MMIO routing, and the prefetch engine.
 */

#include <gtest/gtest.h>

#include "lsu/lsu.hh"
#include "prefetch/region_prefetcher.hh"

using namespace tm3270;

namespace
{

struct LsuFixture : ::testing::Test
{
    MainMemory mem{1 << 22};
    Biu biu{mem, 350};
    CacheGeometry geom{"dcache", 8 * 1024, 4, 128, true};
    LsuConfig cfg{};
    Lsu lsu{cfg, geom, biu, mem};

    void
    fill(Addr base, unsigned len)
    {
        for (unsigned i = 0; i < len; ++i)
            mem.setByte(base + i, uint8_t(i * 7 + 3));
    }
};

struct Tm3260LsuFixture : ::testing::Test
{
    MainMemory mem{1 << 22};
    Biu biu{mem, 240};
    CacheGeometry geom{"dcache", 8 * 1024, 8, 64, true};
    LsuConfig cfg = [] {
        LsuConfig c;
        c.allocateOnWriteMiss = false;
        return c;
    }();
    Lsu lsu{cfg, geom, biu, mem};
};

} // namespace

TEST_F(LsuFixture, LoadMissThenHit)
{
    fill(0x1000, 128);
    MemResult r1 = lsu.load(Opcode::LD32D, 0x1000, 0, 0);
    EXPECT_GT(r1.stall, 0u);
    MemResult r2 = lsu.load(Opcode::LD32D, 0x1004, 0, 100);
    EXPECT_EQ(r2.stall, 0u);
    EXPECT_EQ(lsu.stats.get("load_line_misses"), 1u);
    EXPECT_EQ(lsu.stats.get("load_line_hits"), 1u);
}

TEST_F(LsuFixture, BigEndianLoadAssembly)
{
    mem.setByte(0x1000, 0x12);
    mem.setByte(0x1001, 0x34);
    mem.setByte(0x1002, 0x56);
    mem.setByte(0x1003, 0x78);
    EXPECT_EQ(lsu.load(Opcode::LD32D, 0x1000, 0, 0).data[0], 0x12345678u);
    EXPECT_EQ(lsu.load(Opcode::LD16U, 0x1000, 0, 0).data[0], 0x1234u);
    EXPECT_EQ(lsu.load(Opcode::LD8U, 0x1001, 0, 0).data[0], 0x34u);
}

TEST_F(LsuFixture, SignExtension)
{
    mem.setByte(0x1000, 0x80);
    mem.setByte(0x1001, 0x01);
    EXPECT_EQ(lsu.load(Opcode::LD8S, 0x1000, 0, 0).data[0], 0xFFFFFF80u);
    EXPECT_EQ(lsu.load(Opcode::LD16S, 0x1000, 0, 0).data[0], 0xFFFF8001u);
}

TEST_F(LsuFixture, StoreThenLoadRoundtrip)
{
    lsu.store(Opcode::ST32D, 0x2000, 0xDEADBEEF, 0);
    EXPECT_EQ(lsu.load(Opcode::LD32D, 0x2000, 0, 10).data[0], 0xDEADBEEFu);
    lsu.store(Opcode::ST16D, 0x2004, 0xABCD, 20);
    EXPECT_EQ(lsu.load(Opcode::LD16U, 0x2004, 0, 30).data[0], 0xABCDu);
    lsu.store(Opcode::ST8D, 0x2006, 0x42, 40);
    EXPECT_EQ(lsu.load(Opcode::LD8U, 0x2006, 0, 50).data[0], 0x42u);
}

TEST_F(LsuFixture, AllocateOnWriteMissDoesNotFetch)
{
    Cycles stall = lsu.store(Opcode::ST32D, 0x3000, 1, 0);
    EXPECT_EQ(stall, 0u); // no fetch on the TM3270
    EXPECT_EQ(biu.stats.get("demand_reads"), 0u);
    EXPECT_EQ(lsu.stats.get("store_allocations"), 1u);
}

TEST_F(LsuFixture, PartialLineLoadAfterStoreMerges)
{
    // Allocate-on-write leaves most of the line invalid; a load of an
    // unwritten byte triggers a validity miss (refill merge).
    fill(0x3000, 128);
    lsu.store(Opcode::ST32D, 0x3000, 0x01020304, 0);
    MemResult r = lsu.load(Opcode::LD32D, 0x3010, 0, 10);
    EXPECT_GT(r.stall, 0u);
    EXPECT_EQ(lsu.stats.get("load_validity_misses"), 1u);
    // The earlier store data survived the merge.
    EXPECT_EQ(lsu.load(Opcode::LD32D, 0x3000, 0, 100).data[0],
              0x01020304u);
}

TEST_F(LsuFixture, WriteMissEvictionCopiesBackOnlyValidatedBytes)
{
    // Allocate-on-write-miss leaves all unwritten bytes invalid; when
    // the line is evicted, only the validated bytes may reach memory.
    fill(0x1000, 128);
    uint8_t before[128];
    mem.read(0x1000, before, 128);

    lsu.store(Opcode::ST32D, 0x1000, 0x11223344, 0);
    // Fill set 0 (4 ways, set stride 0x800) until 0x1000 is evicted.
    Cycles now = 100;
    for (Addr a = 0x1800; lsu.dcache().probe(0x1000) >= 0; a += 0x800)
        now += 100 + lsu.store(Opcode::ST32D, a, 0xFF, now);

    EXPECT_EQ(mem.byteAt(0x1000), 0x11);
    EXPECT_EQ(mem.byteAt(0x1001), 0x22);
    EXPECT_EQ(mem.byteAt(0x1002), 0x33);
    EXPECT_EQ(mem.byteAt(0x1003), 0x44);
    for (unsigned i = 4; i < 128; ++i)
        EXPECT_EQ(mem.byteAt(0x1000 + i), before[i]) << "byte " << i;
    EXPECT_GE(lsu.dcache().stats.get("copybacks"), 1u);
}

TEST_F(Tm3260LsuFixture, FetchOnWriteMissStallsAndFetches)
{
    Cycles stall = lsu.store(Opcode::ST32D, 0x3000, 1, 0);
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(biu.stats.get("demand_reads"), 1u);
}

TEST_F(LsuFixture, NonAlignedWithinLineIsPenaltyFree)
{
    fill(0x1000, 256);
    lsu.load(Opcode::LD32D, 0x1000, 0, 0); // warm the line
    MemResult r = lsu.load(Opcode::LD32D, 0x1001, 0, 100); // unaligned
    EXPECT_EQ(r.stall, 0u);
    EXPECT_EQ(r.data[0], (Word(mem.byteAt(0x1001)) << 24 |
                          Word(mem.byteAt(0x1002)) << 16 |
                          Word(mem.byteAt(0x1003)) << 8 |
                          mem.byteAt(0x1004)));
    EXPECT_GE(lsu.stats.get("nonaligned_loads"), 1u);
}

TEST_F(LsuFixture, LineCrossingLoadCanDoubleMiss)
{
    fill(0x1000, 256);
    // 0x107E..0x1081 crosses the line boundary at 0x1080.
    MemResult r = lsu.load(Opcode::LD32D, 0x107E, 0, 0);
    EXPECT_GT(r.stall, 0u);
    EXPECT_EQ(lsu.stats.get("load_line_misses"), 2u);
    EXPECT_EQ(lsu.stats.get("load_line_crossings"), 1u);
    EXPECT_EQ(r.data[0], (Word(mem.byteAt(0x107E)) << 24 |
                          Word(mem.byteAt(0x107F)) << 16 |
                          Word(mem.byteAt(0x1080)) << 8 |
                          mem.byteAt(0x1081)));
}

TEST_F(LsuFixture, SuperLd32rReturnsTwoBigEndianWords)
{
    for (unsigned i = 0; i < 8; ++i)
        mem.setByte(0x1000 + i, uint8_t(i + 1));
    MemResult r = lsu.load(Opcode::SUPER_LD32R, 0x1000, 0, 0);
    EXPECT_EQ(r.data[0], 0x01020304u);
    EXPECT_EQ(r.data[1], 0x05060708u);
}

TEST_F(LsuFixture, LdFrac8Interpolates)
{
    uint8_t px[5] = {10, 20, 30, 40, 50};
    for (unsigned i = 0; i < 5; ++i)
        mem.setByte(0x1000 + i, px[i]);
    MemResult r = lsu.load(Opcode::LD_FRAC8, 0x1000, 8, 0);
    EXPECT_EQ(r.data[0], ((10 + 20 + 1) / 2 << 24 | (20 + 30 + 1) / 2 << 16
                          | (30 + 40 + 1) / 2 << 8 | (40 + 50 + 1) / 2));
}

TEST_F(LsuFixture, CwbBackpressure)
{
    // Burst more stores than the CWB depth in a single cycle window.
    Cycles total_stall = 0;
    for (unsigned i = 0; i <= cfg.cwbDepth + 2; ++i)
        total_stall += lsu.store(Opcode::ST32D, 0x4000 + 4 * i, i, 0);
    EXPECT_GT(lsu.stats.get("cwb_full_stalls"), 0u);
    EXPECT_GT(total_stall, 0u);
}

TEST_F(LsuFixture, RegionPrefetchInstallsNextLine)
{
    fill(0x8000, 4096);
    lsu.prefetcher().setRegion(0, 0x8000, 0x9000, 128);
    MemResult r1 = lsu.load(Opcode::LD32D, 0x8000, 0, 0);
    Cycles now = r1.stall;
    // Let the prefetch issue and complete.
    for (int i = 0; i < 200; ++i)
        lsu.tick(now + 200 + i);
    EXPECT_GE(lsu.stats.get("prefetch_issued"), 1u);
    // The next line is already resident: no stall.
    MemResult r2 = lsu.load(Opcode::LD32D, 0x8080, 0, 1000);
    EXPECT_EQ(r2.stall, 0u);
    EXPECT_GE(lsu.stats.get("prefetch_useful"), 1u);
}

TEST_F(LsuFixture, PrefetchStopsAtRegionEnd)
{
    fill(0x8000, 4096);
    lsu.prefetcher().setRegion(0, 0x8000, 0x8100, 128);
    // Load in the last line of the region: target outside -> no
    // prefetch request.
    lsu.load(Opcode::LD32D, 0x8080, 0, 0);
    EXPECT_EQ(lsu.stats.get("prefetch_requests"), 0u);
}

TEST_F(LsuFixture, DemandWaitsForInflightPrefetch)
{
    fill(0x8000, 4096);
    lsu.prefetcher().setRegion(0, 0x8000, 0x9000, 128);
    MemResult r1 = lsu.load(Opcode::LD32D, 0x8000, 0, 0);
    Cycles now = r1.stall + 1;
    lsu.tick(now); // prefetch of 0x8080 issues
    // Demand the prefetched line immediately: partial stall.
    MemResult r2 = lsu.load(Opcode::LD32D, 0x8080, 0, now);
    MainMemory ref(1 << 22);
    Cycles full = ref.transactionCycles(0x8080, 128) * 350 / 200;
    EXPECT_GT(r2.stall, 0u);
    EXPECT_LE(r2.stall, full + 8);
    EXPECT_GE(lsu.stats.get("load_prefetch_waits"), 1u);
}

TEST_F(LsuFixture, SoftwarePrefetchWarmsLine)
{
    fill(0x9000, 256);
    lsu.softwarePrefetch(0x9000, 0);
    for (int i = 0; i < 200; ++i)
        lsu.tick(i);
    MemResult r = lsu.load(Opcode::LD32D, 0x9000, 0, 500);
    EXPECT_EQ(r.stall, 0u);
}

TEST_F(LsuFixture, FlushMakesMemoryCoherent)
{
    lsu.store(Opcode::ST32D, 0x5000, 0xCAFEBABE, 0);
    lsu.flushCaches();
    EXPECT_EQ(mem.byteAt(0x5000), 0xCA);
    EXPECT_EQ(mem.byteAt(0x5003), 0xBE);
}

namespace
{

/** MMIO device recording accesses. */
struct TestMmio : MmioDevice
{
    Addr lastWrite = 0;
    Word lastValue = 0;
    bool handles(Addr a) const override { return a >= 0xE0000000; }
    Word read(Addr a) override { return a & 0xFFFF; }
    void
    write(Addr a, Word v) override
    {
        lastWrite = a;
        lastValue = v;
    }
};

} // namespace

TEST_F(LsuFixture, MmioBypassesCache)
{
    TestMmio dev;
    lsu.setMmio(&dev);
    lsu.store(Opcode::ST32D, 0xE0000200, 77, 0);
    EXPECT_EQ(dev.lastWrite, 0xE0000200u);
    EXPECT_EQ(dev.lastValue, 77u);
    EXPECT_EQ(lsu.load(Opcode::LD32D, 0xE0001234, 0, 0).data[0], 0x1234u);
    EXPECT_EQ(lsu.dcache().stats.get("allocations"), 0u);
}
