/**
 * @file
 * Golden-stats gate for the memory-hierarchy fast path: full stat
 * dumps (cycles, stalls, cache/prefetch/BIU/DRAM counters) must stay
 * bit-identical to a checked-in golden file captured from the
 * pre-arena tree. Covers the Table 5 suite across configurations A-D
 * (through the sweep driver, exercising the parallel path too) plus
 * the motion-estimation kernel with all TM3270 features on (region
 * prefetcher programmed via MMIO) and the texture pipeline, both on
 * configuration D.
 *
 * Regenerate after an *intentional* model change with:
 *
 *     TM_UPDATE_GOLDEN=1 ./tests/test_golden_stats
 *
 * and review the diff of tests/golden/golden_stats.txt like code.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/sweep.hh"
#include "workloads/motion_est.hh"
#include "workloads/texture.hh"

using namespace tm3270;
using namespace tm3270::driver;
using namespace tm3270::workloads;

#ifndef TM_GOLDEN_STATS_FILE
#error "TM_GOLDEN_STATS_FILE must be defined by the build"
#endif

namespace
{

/** Dump every stat group of @p sys, same order as the sweep driver. */
void
dumpAllGroups(System &sys, std::ostream &os)
{
    const StatGroup *groups[] = {
        &sys.processor.stats,
        &sys.processor.lsu().stats,
        &sys.processor.lsu().dcache().stats,
        &sys.processor.icache().stats,
        &sys.processor.biu().stats,
        &sys.memory.stats,
    };
    for (const StatGroup *g : groups)
        g->dump(os);
}

void
appendRun(std::ostream &os, const std::string &tag, const RunResult &r)
{
    os << "=== " << tag << " ===\n";
    os << "run.cycles " << r.cycles << '\n';
    os << "run.instrs " << r.instrs << '\n';
}

/** The full golden corpus as one deterministic text blob. */
std::string
collectCorpus()
{
    std::ostringstream os;

    // Table 5 suite x configs A-D through the sweep driver (worker
    // count from TM_JOBS; results are bit-identical regardless).
    std::vector<SimJob> jobs;
    for (const Workload &w : table5Suite()) {
        for (char c : {'A', 'B', 'C', 'D'})
            jobs.push_back(makeJob(w, c));
    }
    SweepDriver drv;
    SweepReport rep = drv.run(jobs);
    for (const JobResult &jr : rep.results) {
        EXPECT_TRUE(jr.ok) << jr.tag << ": " << jr.error;
        appendRun(os, jr.tag, jr.run);
        os << jr.statDump;
    }

    // Motion estimation, all TM3270 features on: unaligned loads,
    // LD_FRAC8 and the region prefetcher (programmed via MMIO), so the
    // prefetch queue / in-flight / installed-usefulness machinery is
    // part of the golden corpus.
    {
        System sys(tm3270Config());
        tir::CompiledProgram cp = tir::compile(
            buildMotionEstimation({true, true, true}), tm3270Config());
        stageMotionEstimation(sys, 99);
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        EXPECT_TRUE(r.halted && verifyMotionEstimation(sys, 99, err))
            << err;
        appendRun(os, "motion_est/D", r);
        dumpAllGroups(sys, os);
    }

    // Texture pipeline (two-slot variant) on configuration D.
    {
        System sys(tm3270Config());
        tir::CompiledProgram cp = tir::compile(buildTexturePipeline(true),
                                               tm3270Config());
        stageTexture(sys, 17);
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        EXPECT_TRUE(r.halted && verifyTexture(sys, 17, err)) << err;
        appendRun(os, "texture/D", r);
        dumpAllGroups(sys, os);
    }

    return os.str();
}

/** First line where @p a and @p b differ, for a readable failure. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    size_t n = 1;
    while (true) {
        bool ga = bool(std::getline(sa, la));
        bool gb = bool(std::getline(sb, lb));
        if (!ga && !gb)
            return "no difference";
        if (la != lb || ga != gb) {
            return "line " + std::to_string(n) + ": golden '" +
                   (gb ? lb : "<eof>") + "' vs current '" +
                   (ga ? la : "<eof>") + "'";
        }
        ++n;
    }
}

} // namespace

TEST(GoldenStats, FullDumpsBitIdenticalAcrossConfigsAndWorkloads)
{
    std::string current = collectCorpus();

    if (std::getenv("TM_UPDATE_GOLDEN")) {
        std::ofstream out(TM_GOLDEN_STATS_FILE, std::ios::binary);
        ASSERT_TRUE(out.good())
            << "cannot write " << TM_GOLDEN_STATS_FILE;
        out << current;
        GTEST_SKIP() << "golden file updated: " << TM_GOLDEN_STATS_FILE;
    }

    std::ifstream in(TM_GOLDEN_STATS_FILE, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << TM_GOLDEN_STATS_FILE
        << " (generate with TM_UPDATE_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(golden.str().size(), current.size());
    ASSERT_EQ(golden.str(), current) << firstDiff(current, golden.str());
}
