/**
 * @file
 * Power/area model tests (paper Table 4, §5): published area numbers,
 * calibration exactness, voltage scaling, and the OPI/CPI dependence
 * claims.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

using namespace tm3270;

TEST(AreaModel, PublishedNumbers)
{
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::IFU), 1.46);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::Decode), 0.05);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::Regfile), 0.97);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::Execute), 1.53);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::LS), 3.60);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::BIU), 0.24);
    EXPECT_DOUBLE_EQ(moduleAreaMm2(Module::MMIO), 0.23);
    EXPECT_NEAR(totalAreaMm2(), 8.08, 1e-9);
}

TEST(AreaModel, LoadStoreUnitIsLargest)
{
    // Paper: "The load/store unit is the largest module".
    for (unsigned i = 0; i < numModules; ++i) {
        if (static_cast<Module>(i) != Module::LS) {
            EXPECT_LT(moduleAreaMm2(static_cast<Module>(i)),
                      moduleAreaMm2(Module::LS));
        }
    }
}

namespace
{

ActivitySample
mp3Point()
{
    ActivitySample a;
    a.issueRate = 0.95;
    a.ifu = 0.8;
    a.decode = 4.3;
    a.regfile = 11.0;
    a.execute = 4.1;
    a.ls = 0.9;
    a.biu = 0.004;
    a.mmio = 1.0;
    a.opi = 4.5;
    a.cpi = 1.05;
    return a;
}

} // namespace

TEST(PowerModel, CalibrationReproducesTable4)
{
    PowerModel m;
    ActivitySample mp3 = mp3Point();
    m.calibrate(mp3);
    for (unsigned i = 0; i < numModules; ++i) {
        auto mod = static_cast<Module>(i);
        EXPECT_NEAR(m.moduleMwPerMhz(mod, mp3, 1.2),
                    paperPowerMwPerMhz(mod), 1e-9)
            << moduleName(mod);
    }
}

TEST(PowerModel, VoltageScalingIsQuadratic)
{
    PowerModel m;
    ActivitySample mp3 = mp3Point();
    m.calibrate(mp3);
    double p12 = m.totalMwPerMhz(mp3, 1.2);
    double p08 = m.totalMwPerMhz(mp3, 0.8);
    EXPECT_NEAR(p08 / p12, (0.8 * 0.8) / (1.2 * 1.2), 1e-9);
}

TEST(PowerModel, StallsReducePower)
{
    PowerModel m;
    ActivitySample mp3 = mp3Point();
    m.calibrate(mp3);

    // A stalled variant of the same workload: activities halve.
    ActivitySample stalled = mp3;
    stalled.issueRate /= 2;
    stalled.ifu /= 2;
    stalled.decode /= 2;
    stalled.regfile /= 2;
    stalled.execute /= 2;
    stalled.ls /= 2;
    EXPECT_LT(m.totalMwPerMhz(stalled, 1.2),
              m.totalMwPerMhz(mp3, 1.2));
    // ... but the BIU's share grows (paper: applications with larger
    // CPI use relatively more power in the BIU).
    double biu_share_busy = m.moduleMwPerMhz(Module::BIU, mp3, 1.2) /
                            m.totalMwPerMhz(mp3, 1.2);
    ActivitySample memory_bound = stalled;
    memory_bound.biu = 0.2;
    double biu_share_stalled =
        m.moduleMwPerMhz(Module::BIU, memory_bound, 1.2) /
        m.totalMwPerMhz(memory_bound, 1.2);
    EXPECT_GT(biu_share_stalled, biu_share_busy);
}

TEST(PowerModel, HigherOpiCostsMorePower)
{
    PowerModel m;
    ActivitySample mp3 = mp3Point();
    m.calibrate(mp3);
    ActivitySample dense = mp3;
    dense.decode *= 1.1;
    dense.execute *= 1.1;
    dense.regfile *= 1.1;
    EXPECT_GT(m.totalMwPerMhz(dense, 1.2), m.totalMwPerMhz(mp3, 1.2));
}

TEST(PowerModel, PaperHeadlineNumbers)
{
    // 0.935 * (0.8^2 / 1.2^2) = 0.415 (paper §5.2).
    EXPECT_NEAR(0.935 * (0.8 * 0.8) / (1.2 * 1.2), 0.4155, 1e-3);
    // 8 MHz * 0.415 mW/MHz = 3.32 mW.
    EXPECT_NEAR(8.0 * 0.415, 3.32, 1e-9);
}
