/**
 * @file
 * Runtime twin of lint rule S1 (scripts/tm_lint.py, DESIGN.md §10):
 * the stat registry of a fully constructed machine must be closed and
 * unambiguous. Where the lint proves registration sites are
 * golden-covered from source text, this test proves the live registry
 * has no name collisions and that a full dump emits every registered
 * counter exactly once — so a stat can be neither shadowed (two
 * registration sites, one dump line) nor lost (registered but
 * undumpable).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/system.hh"

using namespace tm3270;

namespace
{

/** The stat groups a sweep-driver job harvests, in dump order. */
std::vector<StatGroup *>
registryOf(System &sys)
{
    return {
        &sys.processor.stats,
        &sys.processor.lsu().stats,
        &sys.processor.lsu().dcache().stats,
        &sys.processor.icache().stats,
        &sys.processor.biu().stats,
        &sys.memory.stats,
    };
}

std::vector<std::string>
allRegistered(System &sys)
{
    std::vector<std::string> names;
    for (StatGroup *g : registryOf(sys)) {
        std::vector<std::string> r = g->registered();
        names.insert(names.end(), r.begin(), r.end());
    }
    return names;
}

} // namespace

TEST(StatRegistry, NamesUniqueAcrossRegistry)
{
    System sys(tm3270Config());
    std::vector<std::string> names = allRegistered(sys);
    ASSERT_FALSE(names.empty());

    std::map<std::string, int> times;
    for (const std::string &n : names)
        ++times[n];
    for (const auto &[name, count] : times)
        EXPECT_EQ(count, 1) << "stat '" << name << "' registered "
                            << count << " times across the registry";
}

TEST(StatRegistry, FullDumpContainsEveryRegisteredCounterExactlyOnce)
{
    System sys(tm3270Config());

    // Make the untouched counters dump-visible; values stay 0, so
    // this exercises exactly the dump path the sweep driver and the
    // golden gate use, over the *complete* registry.
    std::ostringstream os;
    for (StatGroup *g : registryOf(sys)) {
        g->touchAll();
        g->dump(os);
    }

    std::map<std::string, int> dumped;
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        size_t sp = line.find(' ');
        ASSERT_NE(sp, std::string::npos) << "malformed dump line: "
                                         << line;
        ++dumped[line.substr(0, sp)];
    }

    std::vector<std::string> names = allRegistered(sys);
    std::set<std::string> registered(names.begin(), names.end());
    ASSERT_EQ(names.size(), registered.size());

    for (const std::string &n : registered) {
        auto it = dumped.find(n);
        ASSERT_NE(it, dumped.end())
            << "registered counter '" << n << "' missing from dump";
        EXPECT_EQ(it->second, 1)
            << "counter '" << n << "' dumped " << it->second
            << " times";
    }
    for (const auto &[name, count] : dumped) {
        EXPECT_TRUE(registered.count(name))
            << "dump line '" << name
            << "' has no registration in the registry";
        EXPECT_EQ(count, 1);
    }
}

TEST(StatRegistry, TouchAllDoesNotPerturbValues)
{
    System sys(tm3270Config());
    StatGroup &cpu = sys.processor.stats;
    cpu.inc("cycles", 42);
    cpu.touchAll();
    EXPECT_EQ(cpu.get("cycles"), 42u);
}

TEST(StatRegistry, RegisteredCoversChildGroups)
{
    // The cpu.stall.* child group (rebound via Lsu::bindStallStats)
    // must be visible through Processor::stats.registered() — the
    // closure rule S1 checks statically.
    System sys(tm3270Config());
    std::vector<std::string> r = sys.processor.stats.registered();
    std::set<std::string> names(r.begin(), r.end());
    EXPECT_TRUE(names.count("cpu.stall.icache"));
    EXPECT_TRUE(names.count("cpu.stall.dcache_miss"));
    EXPECT_TRUE(names.count("cpu.stall.prefetch_wait"));
    EXPECT_TRUE(names.count("cpu.stall.store_fetch"));
    EXPECT_TRUE(names.count("cpu.stall.copyback"));
}
