/**
 * @file
 * End-to-end tests for the experiment kernels behind the paper's
 * headline claims: the CABAC decode programs (Table 3), motion
 * estimation (ref [12]), the texture pipeline (ref [13]) and temporal
 * up-conversion (ref [14]). Each optimized variant must produce
 * bit-identical results to its baseline and run faster.
 *
 * Every simulated run is submitted through a shared SweepDriver: the
 * experiment variants are ad-hoc sweep workloads, the ProgramCache
 * deduplicates recompiles of repeated variants across tests, and a
 * verification failure surfaces as a structured JobResult error.
 */

#include <gtest/gtest.h>

#include "driver/sweep.hh"
#include "support/logging.hh"
#include "workloads/cabac_prog.hh"
#include "workloads/motion_est.hh"
#include "workloads/texture.hh"
#include "workloads/upconv.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

/** One driver (and ProgramCache) for the whole test binary. */
driver::SweepDriver &
sharedDriver()
{
    static driver::SweepDriver drv;
    return drv;
}

/** Submit one ad-hoc workload on the TM3270 and expect success. */
RunResult
submitOne(Workload w)
{
    driver::SweepReport rep =
        sharedDriver().run({driver::makeJob(std::move(w), 'D')});
    const driver::JobResult &jr = rep.results.at(0);
    EXPECT_TRUE(jr.ok) << jr.error;
    return jr.run;
}

RunResult
runCabac(const SyntheticField &field, bool optimized)
{
    Workload w;
    // bins.size() is part of the program, so it is part of the name
    // (the ProgramCache key must separate differently-sized decodes).
    w.name = strfmt("cabac%zu_%s", field.bins.size(),
                    optimized ? "super" : "plain");
    w.build = [n = unsigned(field.bins.size()), optimized] {
        return buildCabacDecode(n, optimized);
    };
    w.init = [&field](System &sys) { stageCabacField(sys, field); };
    w.verify = [&field](System &sys, std::string &err) {
        return verifyCabacBits(sys, field, err);
    };
    return submitOne(std::move(w));
}

} // namespace

TEST(CabacGolden, EncoderDecoderRoundtripProperty)
{
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        SyntheticField f = generateField(4000, 32, 0.8, seed);
        CabacDecoder dec(f.stream);
        std::vector<CabacContext> ctx = f.initCtx;
        for (size_t i = 0; i < f.bins.size(); ++i) {
            unsigned bit = dec.decodeBit(ctx[f.ctxSequence[i]]);
            ASSERT_EQ(bit, f.bins[i]) << "seed " << seed << " bin " << i;
        }
    }
}

TEST(CabacGolden, SkewAffectsCompression)
{
    SyntheticField skew = generateField(20000, 32, 0.95, 7);
    SyntheticField flat = generateField(20000, 32, 0.55, 7);
    // More skew -> more bins per stream bit.
    double skew_ratio = double(skew.bins.size()) / double(skew.streamBits);
    double flat_ratio = double(flat.bins.size()) / double(flat.streamBits);
    EXPECT_GT(skew_ratio, flat_ratio * 1.3);
}

TEST(CabacPrograms, BothVersionsDecodeCorrectly)
{
    SyntheticField f = generateField(3000, 48, 0.8, 11);
    RunResult plain = runCabac(f, false);
    RunResult fast = runCabac(f, true);
    EXPECT_GT(plain.instrs, fast.instrs);
}

TEST(CabacPrograms, SpeedupInPaperRange)
{
    // Paper Table 3: the new operations speed the complete decode
    // process up by 1.5x - 1.7x.
    SyntheticField f = generateField(20000, 64, 0.8, 13);
    RunResult plain = runCabac(f, false);
    RunResult fast = runCabac(f, true);
    double speedup = double(plain.cycles) / double(fast.cycles);
    EXPECT_GT(speedup, 1.3) << "speedup " << speedup;
    EXPECT_LT(speedup, 2.2) << "speedup " << speedup;
}

namespace
{

RunResult
runMe(const MeFlags &flags)
{
    Workload w;
    w.name = strfmt("me_%d%d%d", int(flags.unaligned),
                    int(flags.fracLoad), int(flags.prefetch));
    w.build = [flags] { return buildMotionEstimation(flags); };
    w.init = [](System &sys) { stageMotionEstimation(sys, 99); };
    w.verify = [](System &sys, std::string &err) {
        return verifyMotionEstimation(sys, 99, err);
    };
    return submitOne(std::move(w));
}

} // namespace

TEST(MotionEstimation, AllVariantsMatchReference)
{
    runMe(MeFlags{false, false, false});
    runMe(MeFlags{true, false, false});
    runMe(MeFlags{true, true, false});
    runMe(MeFlags{true, true, true});
}

TEST(MotionEstimation, OptimizationsGiveLargeGain)
{
    RunResult base = runMe(MeFlags{false, false, false});
    RunResult opt = runMe(MeFlags{true, true, true});
    // Paper §6 / [12]: more than a factor two from non-aligned access,
    // prefetching and the new operations.
    double gain = double(base.cycles) / double(opt.cycles);
    EXPECT_GT(gain, 2.0) << "gain " << gain; // paper: "more than 2x"

}

namespace
{

RunResult
runTexture(bool two_slot)
{
    Workload w;
    w.name = strfmt("texture_%s", two_slot ? "two_slot" : "scalar");
    w.build = [two_slot] { return buildTexturePipeline(two_slot); };
    w.init = [](System &sys) { stageTexture(sys, 17); };
    w.verify = [](System &sys, std::string &err) {
        return verifyTexture(sys, 17, err);
    };
    return submitOne(std::move(w));
}

RunResult
runUpconv(const UpconvFlags &flags)
{
    Workload w;
    w.name = strfmt("upconv_%d%d", int(flags.newOps),
                    int(flags.prefetch));
    w.build = [flags] { return buildUpconversion(flags); };
    w.init = [](System &sys) { stageUpconversion(sys, 23); };
    w.verify = [](System &sys, std::string &err) {
        return verifyUpconversion(sys, 23, err);
    };
    return submitOne(std::move(w));
}

} // namespace

TEST(TexturePipeline, BothVersionsMatchReference)
{
    RunResult scalar = runTexture(false);
    RunResult two_slot = runTexture(true);
    // Paper §6 / [13]: new operations improve the 8x8 texture
    // pipeline by ~50%.
    double gain = double(scalar.cycles) / double(two_slot.cycles);
    EXPECT_GT(gain, 1.25) << "gain " << gain;
}

TEST(Upconversion, VariantsMatchAndImprove)
{
    RunResult base = runUpconv(UpconvFlags{false, false});
    RunResult ops = runUpconv(UpconvFlags{true, false});
    RunResult full = runUpconv(UpconvFlags{true, true});
    // Paper §6 / [14]: ~40% from new operations, then ~20% more from
    // prefetching.
    double g1 = double(base.cycles) / double(ops.cycles);
    double g2 = double(ops.cycles) / double(full.cycles);
    EXPECT_GT(g1, 1.2) << "new-ops gain " << g1;
    EXPECT_GT(g2, 1.02) << "prefetch gain " << g2;
}
