/**
 * @file
 * Unit tests for the ISA: operation metadata, functional semantics of
 * the scalar, SIMD and paper-specific operations, and the CABAC
 * tables/step function (paper Fig. 2).
 */

#include <gtest/gtest.h>

#include <random>

#include "isa/cabac_tables.hh"
#include "isa/op_info.hh"
#include "isa/semantics.hh"
#include "support/bitops.hh"

using namespace tm3270;

namespace
{

Word
run1(Opcode opc, Word a = 0, Word b = 0, int32_t imm = 0)
{
    Operation op;
    op.opc = opc;
    op.imm = imm;
    return execPure(op, {a, b, 0, 0}).dst[0];
}

ExecResult
run4(Opcode opc, Word a, Word b, Word c, Word d)
{
    Operation op;
    op.opc = opc;
    return execPure(op, {a, b, c, d});
}

} // namespace

TEST(OpInfo, TableConsistency)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        auto opc = static_cast<Opcode>(i);
        const OpInfo &oi = opInfo(opc);
        EXPECT_FALSE(oi.mnemonic.empty());
        EXPECT_GT(oi.latency, 0u);
        EXPECT_NE(oi.slotMask, 0u);
        EXPECT_EQ(opFromName(oi.mnemonic), opc) << oi.mnemonic;
    }
}

TEST(OpInfo, PaperConstraints)
{
    // Table 2 latencies and slots.
    EXPECT_EQ(opInfo(Opcode::SUPER_DUALIMIX).latency, 4u);
    EXPECT_TRUE(opInfo(Opcode::SUPER_DUALIMIX).isTwoSlot);
    EXPECT_EQ(opInfo(Opcode::SUPER_DUALIMIX).slotMask, slotBit(2));
    EXPECT_EQ(opInfo(Opcode::SUPER_LD32R).slotMask, slotBit(4));
    EXPECT_TRUE(opInfo(Opcode::SUPER_LD32R).isTwoSlot);
    EXPECT_EQ(opInfo(Opcode::LD_FRAC8).latency, 6u);
    EXPECT_EQ(opInfo(Opcode::LD_FRAC8).slotMask, slotBit(5));
    EXPECT_EQ(opInfo(Opcode::SUPER_CABAC_CTX).latency, 4u);
    EXPECT_EQ(opInfo(Opcode::SUPER_CABAC_STR).latency, 4u);
    // SUPER_LD32R keeps its sources in the second operation.
    EXPECT_EQ(opInfo(Opcode::SUPER_LD32R).srcPositions(), 0b1100u);
}

TEST(Semantics, IntegerAlu)
{
    EXPECT_EQ(run1(Opcode::IADD, 2, 3), 5u);
    EXPECT_EQ(run1(Opcode::ISUB, 2, 3), Word(-1));
    EXPECT_EQ(run1(Opcode::IAND, 0xF0F0, 0xFF00), 0xF000u);
    EXPECT_EQ(run1(Opcode::IOR, 0xF0F0, 0x0F0F), 0xFFFFu);
    EXPECT_EQ(run1(Opcode::IXOR, 0xFF, 0x0F), 0xF0u);
    EXPECT_EQ(run1(Opcode::BITAND0, 0xFF, 0x0F), 0xF0u);
    EXPECT_EQ(run1(Opcode::IMIN, Word(-5), 3), Word(-5));
    EXPECT_EQ(run1(Opcode::IMAX, Word(-5), 3), 3u);
}

TEST(Semantics, Comparisons)
{
    EXPECT_EQ(run1(Opcode::IEQL, 7, 7), 1u);
    EXPECT_EQ(run1(Opcode::INEQ, 7, 7), 0u);
    EXPECT_EQ(run1(Opcode::IGTR, Word(-1), 0), 0u); // signed
    EXPECT_EQ(run1(Opcode::IGTRU, Word(-1), 0), 1u); // unsigned
    EXPECT_EQ(run1(Opcode::ILES, Word(-1), 0), 1u);
    EXPECT_EQ(run1(Opcode::ILESU, Word(-1), 0), 0u);
    EXPECT_EQ(run1(Opcode::IGEQ, 3, 3), 1u);
    EXPECT_EQ(run1(Opcode::ILEQ, 3, 3), 1u);
}

TEST(Semantics, Extensions)
{
    EXPECT_EQ(run1(Opcode::SEX8, 0x80), 0xFFFFFF80u);
    EXPECT_EQ(run1(Opcode::ZEX8, 0xFF80), 0x80u);
    EXPECT_EQ(run1(Opcode::SEX16, 0x8000), 0xFFFF8000u);
    EXPECT_EQ(run1(Opcode::ZEX16, 0x12345678), 0x5678u);
}

TEST(Semantics, Shifts)
{
    EXPECT_EQ(run1(Opcode::ASL, 1, 31), 0x80000000u);
    EXPECT_EQ(run1(Opcode::ASR, 0x80000000, 31), 0xFFFFFFFFu);
    EXPECT_EQ(run1(Opcode::LSR, 0x80000000, 31), 1u);
    EXPECT_EQ(run1(Opcode::ROL, 0x80000001, 1), 3u);
    EXPECT_EQ(run1(Opcode::ASLI, 1, 0, 4), 16u);
    EXPECT_EQ(run1(Opcode::LSRI, 0x100, 0, 4), 0x10u);
}

TEST(Semantics, Immediates)
{
    EXPECT_EQ(run1(Opcode::IADDI, 10, 0, -3), 7u);
    EXPECT_EQ(run1(Opcode::IMM16, 0, 0, 0xFFFF), 0xFFFFFFFFu);
    EXPECT_EQ(run1(Opcode::IMM16, 0, 0, 0x7FFF), 0x7FFFu);
    EXPECT_EQ(run1(Opcode::IMMHI, 0, 0, 0x1234), 0x12340000u);
    EXPECT_EQ(run1(Opcode::IEQLI, 5, 0, 5), 1u);
    EXPECT_EQ(run1(Opcode::IGTRI, 5, 0, 4), 1u);
    EXPECT_EQ(run1(Opcode::ILESI, 5, 0, 4), 0u);
}

TEST(Semantics, Multiply)
{
    EXPECT_EQ(run1(Opcode::IMUL, 7, 6), 42u);
    EXPECT_EQ(run1(Opcode::IMUL, Word(-3), 4), Word(-12));
    EXPECT_EQ(run1(Opcode::IMULM, 0x40000000, 4), 1u);
    EXPECT_EQ(run1(Opcode::UMULM, 0x80000000, 0x80000000), 0x40000000u);
    EXPECT_EQ(run1(Opcode::IMULM, Word(-1), Word(-1)), 0u);
}

TEST(Semantics, Float)
{
    auto f2w = [](float f) { return std::bit_cast<Word>(f); };
    auto w2f = [](Word w) { return std::bit_cast<float>(w); };
    EXPECT_FLOAT_EQ(w2f(run1(Opcode::FADD, f2w(1.5f), f2w(2.25f))), 3.75f);
    EXPECT_FLOAT_EQ(w2f(run1(Opcode::FSUB, f2w(1.0f), f2w(0.5f))), 0.5f);
    EXPECT_FLOAT_EQ(w2f(run1(Opcode::FMUL, f2w(3.0f), f2w(-2.0f))), -6.0f);
    EXPECT_FLOAT_EQ(w2f(run1(Opcode::FDIV, f2w(1.0f), f2w(4.0f))), 0.25f);
    EXPECT_EQ(run1(Opcode::FTOI, f2w(2.5f), 0), 2u); // round to even
    EXPECT_FLOAT_EQ(w2f(run1(Opcode::ITOF, Word(-8), 0)), -8.0f);
    EXPECT_EQ(run1(Opcode::FEQL, f2w(2.0f), f2w(2.0f)), 1u);
    EXPECT_EQ(run1(Opcode::FGTR, f2w(3.0f), f2w(2.0f)), 1u);
}

TEST(Semantics, Quad8)
{
    EXPECT_EQ(run1(Opcode::QUADAVG, 0x00FF1002, 0x02010203),
              0x01800903u); // per byte: (0+2+1)/2, (255+1+1)/2, ...
    EXPECT_EQ(run1(Opcode::QUADADD, 0xFF010203, 0x01010101), 0x00020304u);
    EXPECT_EQ(run1(Opcode::QUADSUB, 0x00050505, 0x01010101), 0xFF040404u);
    EXPECT_EQ(run1(Opcode::QUADUMIN, 0x10FF3040, 0x20EE2050), 0x10EE2040u);
    EXPECT_EQ(run1(Opcode::QUADUMAX, 0x10FF3040, 0x20EE2050), 0x20FF3050u);
}

TEST(Semantics, Ume8uu)
{
    // Sum of absolute differences: |0x10-0x20| + |0xFF-0xEE| +
    // |0x30-0x20| + |0x40-0x50| = 0x10 + 0x11 + 0x10 + 0x10 = 0x41.
    EXPECT_EQ(run1(Opcode::UME8UU, 0x10FF3040, 0x20EE2050), 0x41u);
    EXPECT_EQ(run1(Opcode::UME8UU, 0x12345678, 0x12345678), 0u);
}

TEST(Semantics, BytePacking)
{
    EXPECT_EQ(run1(Opcode::MERGELSB, 0xAABBCCDD, 0x11223344),
              0xCC33DD44u);
    EXPECT_EQ(run1(Opcode::MERGEMSB, 0xAABBCCDD, 0x11223344),
              0xAA11BB22u);
    EXPECT_EQ(run1(Opcode::PACK16LSB, 0xAAAA1111, 0xBBBB2222),
              0x11112222u);
    EXPECT_EQ(run1(Opcode::PACK16MSB, 0xAAAA1111, 0xBBBB2222),
              0xAAAABBBBu);
    EXPECT_EQ(run1(Opcode::PACKBYTES, 0x000000AB, 0x000000CD), 0xABCDu);
    EXPECT_EQ(run1(Opcode::UBYTESEL, 0xAABBCCDD, 2), 0xBBu);
    EXPECT_EQ(run1(Opcode::FUNSHIFT1, 0xAABBCCDD, 0x11223344),
              0xBBCCDD11u);
    EXPECT_EQ(run1(Opcode::FUNSHIFT2, 0xAABBCCDD, 0x11223344),
              0xCCDD1122u);
    EXPECT_EQ(run1(Opcode::FUNSHIFT3, 0xAABBCCDD, 0x11223344),
              0xDD112233u);
}

TEST(Semantics, Dual16)
{
    EXPECT_EQ(run1(Opcode::DSPIDUALADD, 0x7FFF0001, 0x00010001),
              0x7FFF0002u); // high lane saturates
    EXPECT_EQ(run1(Opcode::DSPIDUALSUB, 0x80000000, 0x00010001),
              0x8000FFFFu);
    EXPECT_EQ(run1(Opcode::DSPIDUALMUL, 0x00020003, 0x00040005),
              0x0008000Fu);
    EXPECT_EQ(run1(Opcode::DSPIDUALABS, 0x8000FFFF, 0), 0x7FFF0001u);
    EXPECT_EQ(run1(Opcode::IFIR16, 0x00020003, 0x00040005), 23u);
    // ifir16 with negative lanes: (-1)*4 + 3*5 = 11
    EXPECT_EQ(run1(Opcode::IFIR16, 0xFFFF0003, 0x00040005), 11u);
}

TEST(Semantics, Ifir8ui)
{
    // 4 unsigned bytes times 4 signed bytes:
    // 0x80*1 + 0x10*(-1) + 0x01*2 + 0x02*3 = 128 - 16 + 2 + 6 = 120
    EXPECT_EQ(run1(Opcode::IFIR8UI, 0x80100102, 0x01FF0203), 120u);
}

TEST(Semantics, Clips)
{
    EXPECT_EQ(run1(Opcode::ICLIPI, 100, 15), 15u);
    EXPECT_EQ(run1(Opcode::ICLIPI, Word(-100), 15), Word(-16));
    EXPECT_EQ(run1(Opcode::UCLIPI, Word(-5), 255), 0u);
    EXPECT_EQ(run1(Opcode::UCLIPI, 300, 255), 255u);
    EXPECT_EQ(run1(Opcode::IABS, Word(-5), 0), 5u);
    EXPECT_EQ(run1(Opcode::IABS, 0x80000000, 0), 0x7FFFFFFFu);
}

TEST(Semantics, SuperDualimix)
{
    // Paper Table 2: pairwise 16-bit 2-tap filter with 32-bit clip.
    // hi: 2*3 + 4*5 = 26; lo: (-1)*7 + 2*(-2) = -11
    Word s1 = dual16(2, Word(uint16_t(-1)));
    Word s2 = dual16(3, 7);
    Word s3 = dual16(4, 2);
    Word s4 = dual16(5, Word(uint16_t(-2)));
    ExecResult r = run4(Opcode::SUPER_DUALIMIX, s1, s2, s3, s4);
    EXPECT_EQ(r.dst[0], 26u);
    EXPECT_EQ(r.dst[1], Word(-11));
}

TEST(Semantics, SuperDualimixSaturates)
{
    // (-32768)^2 * 2 = 2^31 overflows int32 -> clipped to INT32_MAX.
    Word m = dual16(0x8000, 0x8000);
    ExecResult r = run4(Opcode::SUPER_DUALIMIX, m, m, m, m);
    EXPECT_EQ(r.dst[0], Word(INT32_MAX));
    EXPECT_EQ(r.dst[1], Word(INT32_MAX));
    // The most negative reachable sum stays just inside int32 range.
    Word p = dual16(0x8000, 0x8000);
    Word q = dual16(32767, 32767);
    ExecResult r2 = run4(Opcode::SUPER_DUALIMIX, p, q, p, q);
    EXPECT_EQ(r2.dst[0], Word(2 * (-32768 * 32767)));
    EXPECT_EQ(r2.dst[1], Word(2 * (-32768 * 32767)));
}

TEST(Semantics, InterpolateFrac8)
{
    std::array<uint8_t, 5> d = {10, 20, 30, 40, 50};
    // frac = 0: output equals the first four bytes.
    EXPECT_EQ(interpolateFrac8(d, 0), 0x0A141E28u);
    // frac = 8 (half): averages with rounding.
    Word half = interpolateFrac8(d, 8);
    EXPECT_EQ(half, ((10 + 20 + 1) / 2 << 24 | (20 + 30 + 1) / 2 << 16 |
                     (30 + 40 + 1) / 2 << 8 | (40 + 50 + 1) / 2));
    // Table 2 formula at frac = 5.
    auto tap = [](int a, int b) { return (a * 11 + b * 5 + 8) / 16; };
    EXPECT_EQ(interpolateFrac8(d, 5),
              Word(tap(10, 20) << 24 | tap(20, 30) << 16 |
                   tap(30, 40) << 8 | tap(40, 50)));
}

TEST(CabacTables, Shape)
{
    // State 63 is the quasi-stationary state.
    EXPECT_EQ(lpsRangeTable[63][0], 2);
    EXPECT_EQ(mpsNextStateTable[62], 62);
    EXPECT_EQ(mpsNextStateTable[63], 63);
    EXPECT_EQ(lpsNextStateTable[63], 63);
    // LPS probabilities decrease with state.
    for (int q = 0; q < 4; ++q) {
        for (int s = 1; s < 63; ++s)
            EXPECT_LE(lpsRangeTable[s][q], lpsRangeTable[s - 1][q]);
    }
}

TEST(CabacStep, MpsPath)
{
    // Large value margin: MPS decoded, state advances.
    CabacStep st = biariDecodeSymbol(0, 510, 10, 1, 0, 0);
    EXPECT_EQ(st.bit, 1u);
    EXPECT_EQ(st.mps, 1u);
    EXPECT_EQ(st.state, mpsNextStateTable[10]);
    EXPECT_EQ(st.bitPos, 0u); // no renormalization needed
}

TEST(CabacStep, LpsPath)
{
    uint32_t range = 510;
    uint32_t rlps = lpsRangeTable[10][(range >> 6) & 3];
    // value just above range - rlps forces the LPS path.
    CabacStep st = biariDecodeSymbol(range - rlps, range, 10, 1,
                                     0xFFFFFFFF, 0);
    EXPECT_EQ(st.bit, 0u);
    EXPECT_EQ(st.state, lpsNextStateTable[10]);
    EXPECT_GT(st.bitPos, 0u); // LPS renormalizes
}

TEST(CabacStep, MpsFlipAtStateZero)
{
    uint32_t range = 510;
    uint32_t rlps = lpsRangeTable[0][(range >> 6) & 3];
    CabacStep st = biariDecodeSymbol(range - rlps, range, 0, 1, 0, 0);
    EXPECT_EQ(st.mps, 0u); // MPS flips only at state 0
}

TEST(CabacStep, RenormConsumesAtMost8Bits)
{
    std::mt19937_64 rng(3);
    for (int i = 0; i < 2000; ++i) {
        uint32_t range = 256 + rng() % 255;
        uint32_t value = rng() % range;
        uint32_t state = rng() % 64;
        uint32_t pos = rng() % 8;
        CabacStep st = biariDecodeSymbol(value, range, state, rng() & 1,
                                         uint32_t(rng()), pos);
        EXPECT_LE(st.bitPos - pos, 8u);
        EXPECT_GE(st.range, 256u);
        EXPECT_LT(st.range, 512u);
        EXPECT_LT(st.value, 1024u);
    }
}
