/**
 * @file
 * Tests for the set-associative cache core: geometry, LRU, byte
 * validity, refill-merge, copy-back of valid bytes only, flush.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace tm3270;

namespace
{

CacheGeometry
smallGeom()
{
    // 4 sets x 2 ways x 64-byte lines = 512 bytes.
    return CacheGeometry{"test", 512, 2, 64, true};
}

} // namespace

TEST(CacheGeometry, Tm3270Shapes)
{
    CacheGeometry d{"dcache", 128 * 1024, 4, 128, true};
    EXPECT_EQ(d.numSets(), 256u);
    CacheGeometry i{"icache", 64 * 1024, 8, 128, false};
    EXPECT_EQ(i.numSets(), 64u);
}

TEST(Cache, ProbeMissThenHit)
{
    Cache c(smallGeom());
    EXPECT_EQ(c.probe(0x000), -1);
    int way;
    c.allocate(0x000, way);
    EXPECT_GE(c.probe(0x000), 0);
}

TEST(Cache, LruEviction)
{
    Cache c(smallGeom());
    // Set 0 line addresses: stride = 4 sets * 64 = 256.
    int way;
    c.allocate(0x000, way);
    c.allocate(0x100, way);
    // Touch 0x000 so 0x100 becomes LRU.
    c.touch(0x000, c.probe(0x000));
    Victim v = c.allocate(0x200, way);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x100u);
    EXPECT_GE(c.probe(0x000), 0);
    EXPECT_EQ(c.probe(0x100), -1);
}

TEST(Cache, ByteValidityTracksWrites)
{
    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    EXPECT_FALSE(c.bytesValid(0x000, way, 0, 4));
    uint8_t data[4] = {1, 2, 3, 4};
    c.writeBytes(0x000, way, 8, 4, data);
    EXPECT_TRUE(c.bytesValid(0x000, way, 8, 4));
    EXPECT_FALSE(c.bytesValid(0x000, way, 7, 4)); // byte 7 invalid
    EXPECT_TRUE(c.isDirty(0x000, way));
}

TEST(Cache, RefillMergePreservesStoreData)
{
    MainMemory mem(4096);
    for (unsigned i = 0; i < 64; ++i)
        mem.setByte(i, uint8_t(0xC0 + (i & 0xf)));

    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    uint8_t newer[2] = {0xAA, 0xBB};
    c.writeBytes(0x000, way, 0, 2, newer);
    // Refill merge: only the invalid bytes take memory data.
    c.fillFromMemory(mem, 0x000, way);
    uint8_t out[4];
    c.readBytes(0x000, way, 0, 4, out);
    EXPECT_EQ(out[0], 0xAA);
    EXPECT_EQ(out[1], 0xBB);
    EXPECT_EQ(out[2], 0xC2);
    EXPECT_EQ(out[3], 0xC3);
    EXPECT_TRUE(c.bytesValid(0x000, way, 0, 64));
}

TEST(Cache, VictimCarriesOnlyValidBytes)
{
    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    uint8_t data[3] = {9, 8, 7};
    c.writeBytes(0x000, way, 10, 3, data);
    c.allocate(0x100, way);
    Victim v = c.allocate(0x200, way); // evicts one of them
    ASSERT_TRUE(v.valid);
    if (v.dirty) {
        EXPECT_EQ(v.validBytes, 3u);
        EXPECT_TRUE(v.maskBit(10));
        EXPECT_FALSE(v.maskBit(9));
    }
}

TEST(Cache, FlushWritesOnlyValidBytes)
{
    MainMemory mem(4096);
    for (unsigned i = 0; i < 64; ++i)
        mem.setByte(i, 0x11);

    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    uint8_t data[2] = {0xDE, 0xAD};
    c.writeBytes(0x000, way, 4, 2, data);
    c.flush(mem);
    EXPECT_EQ(mem.byteAt(3), 0x11);
    EXPECT_EQ(mem.byteAt(4), 0xDE);
    EXPECT_EQ(mem.byteAt(5), 0xAD);
    EXPECT_EQ(mem.byteAt(6), 0x11);
    EXPECT_EQ(c.probe(0x000), -1); // flush invalidates
}

TEST(Cache, RefillMergePreservesStoresAcrossMaskWordBoundary)
{
    // 128-byte lines: the byte-validity state of one line spans two
    // 64-bit mask words. A store straddling byte 64 must survive a
    // refill merge on both sides of the word boundary.
    CacheGeometry g{"test128", 1024, 2, 128, true};
    MainMemory mem(4096);
    for (unsigned i = 0; i < 128; ++i)
        mem.setByte(i, uint8_t(0x80 + (i & 0x3f)));

    Cache c(g);
    int way;
    c.allocate(0x000, way);
    uint8_t newer[8] = {0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7};
    c.writeBytes(0x000, way, 60, 8, newer); // bytes 60..67
    EXPECT_TRUE(c.bytesValid(0x000, way, 60, 8));
    EXPECT_FALSE(c.bytesValid(0x000, way, 59, 8));
    EXPECT_FALSE(c.bytesValid(0x000, way, 61, 8));

    c.fillFromMemory(mem, 0x000, way);
    uint8_t out[10];
    c.readBytes(0x000, way, 59, 10, out); // bytes 59..68
    EXPECT_EQ(out[0], 0x80 + (59 & 0x3f));
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[1 + i], newer[i]) << "byte " << (60 + i);
    EXPECT_EQ(out[9], 0x80 + (68 & 0x3f));
    EXPECT_TRUE(c.bytesValid(0x000, way, 0, 128));
}

TEST(Cache, EvictedWriteMissLineCarriesExactValidity)
{
    // Allocate-on-write-miss: a line that only ever saw stores must
    // evict with exactly the stored bytes validated, including a run
    // that straddles the 64-bit mask-word boundary of a 128-byte line.
    CacheGeometry g{"test128", 1024, 2, 128, true};
    Cache c(g);
    int way;
    c.allocate(0x000, way);
    uint8_t a[6] = {1, 2, 3, 4, 5, 6};
    c.writeBytes(0x000, way, 62, 6, a); // straddles byte 64
    uint8_t b[2] = {7, 8};
    c.writeBytes(0x000, way, 0, 2, b);

    // Fill the set (2 ways, set stride = 4 sets * 128): evict 0x000.
    c.allocate(0x200, way);
    Victim v = c.allocate(0x400, way);
    ASSERT_TRUE(v.valid);
    ASSERT_TRUE(v.dirty);
    EXPECT_EQ(v.lineAddr, 0x000u);
    EXPECT_EQ(v.validBytes, 8u);
    EXPECT_TRUE(v.maskBit(0));
    EXPECT_TRUE(v.maskBit(1));
    EXPECT_FALSE(v.maskBit(2));
    EXPECT_FALSE(v.maskBit(61));
    for (unsigned i = 0; i < 6; ++i) {
        EXPECT_TRUE(v.maskBit(62 + i));
        EXPECT_EQ(v.data[62 + i], a[i]);
    }
    EXPECT_FALSE(v.maskBit(68));
}

TEST(Cache, AllocatePrefersInvalidWay)
{
    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    Victim v = c.allocate(0x100, way);
    EXPECT_FALSE(v.valid); // second way was free
}

TEST(Cache, TagOnlyModeForInstructionCache)
{
    CacheGeometry g{"icache", 512, 2, 64, false};
    Cache c(g);
    int way;
    c.allocate(0x000, way);
    c.markAllValid(0x000, way);
    EXPECT_TRUE(c.bytesValid(0x000, way, 0, 64));
    EXPECT_GE(c.probe(0x000), 0);
}

TEST(Cache, SetIndexingIsModuloSets)
{
    Cache c(smallGeom());
    int way;
    // 0x000 and 0x040 are different sets; both fit without eviction.
    c.allocate(0x000, way);
    c.allocate(0x040, way);
    EXPECT_GE(c.probe(0x000), 0);
    EXPECT_GE(c.probe(0x040), 0);
    EXPECT_EQ(c.stats.get("evictions"), 0u);
}

TEST(Cache, InvalidateAllDropsEverything)
{
    Cache c(smallGeom());
    int way;
    c.allocate(0x000, way);
    c.allocate(0x040, way);
    c.invalidateAll();
    EXPECT_EQ(c.probe(0x000), -1);
    EXPECT_EQ(c.probe(0x040), -1);
}
