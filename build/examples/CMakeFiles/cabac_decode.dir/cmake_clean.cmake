file(REMOVE_RECURSE
  "CMakeFiles/cabac_decode.dir/cabac_decode.cpp.o"
  "CMakeFiles/cabac_decode.dir/cabac_decode.cpp.o.d"
  "cabac_decode"
  "cabac_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cabac_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
