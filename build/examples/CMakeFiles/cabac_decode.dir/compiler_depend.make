# Empty compiler generated dependencies file for cabac_decode.
# This may be replaced when dependencies are built.
