# Empty dependencies file for run_asm.
# This may be replaced when dependencies are built.
