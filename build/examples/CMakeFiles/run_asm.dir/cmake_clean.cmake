file(REMOVE_RECURSE
  "CMakeFiles/run_asm.dir/run_asm.cpp.o"
  "CMakeFiles/run_asm.dir/run_asm.cpp.o.d"
  "run_asm"
  "run_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
