# Empty compiler generated dependencies file for dvfs_power.
# This may be replaced when dependencies are built.
