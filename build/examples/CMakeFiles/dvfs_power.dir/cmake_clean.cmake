file(REMOVE_RECURSE
  "CMakeFiles/dvfs_power.dir/dvfs_power.cpp.o"
  "CMakeFiles/dvfs_power.dir/dvfs_power.cpp.o.d"
  "dvfs_power"
  "dvfs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
