file(REMOVE_RECURSE
  "CMakeFiles/bench_upconversion.dir/bench_upconversion.cc.o"
  "CMakeFiles/bench_upconversion.dir/bench_upconversion.cc.o.d"
  "bench_upconversion"
  "bench_upconversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upconversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
