# Empty dependencies file for bench_upconversion.
# This may be replaced when dependencies are built.
