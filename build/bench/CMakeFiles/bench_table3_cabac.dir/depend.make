# Empty dependencies file for bench_table3_cabac.
# This may be replaced when dependencies are built.
