file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cabac.dir/bench_table3_cabac.cc.o"
  "CMakeFiles/bench_table3_cabac.dir/bench_table3_cabac.cc.o.d"
  "bench_table3_cabac"
  "bench_table3_cabac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cabac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
