file(REMOVE_RECURSE
  "CMakeFiles/bench_microarch.dir/bench_microarch.cc.o"
  "CMakeFiles/bench_microarch.dir/bench_microarch.cc.o.d"
  "bench_microarch"
  "bench_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
