# Empty compiler generated dependencies file for bench_texture.
# This may be replaced when dependencies are built.
