file(REMOVE_RECURSE
  "CMakeFiles/bench_texture.dir/bench_texture.cc.o"
  "CMakeFiles/bench_texture.dir/bench_texture.cc.o.d"
  "bench_texture"
  "bench_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
