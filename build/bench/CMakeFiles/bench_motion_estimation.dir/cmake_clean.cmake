file(REMOVE_RECURSE
  "CMakeFiles/bench_motion_estimation.dir/bench_motion_estimation.cc.o"
  "CMakeFiles/bench_motion_estimation.dir/bench_motion_estimation.cc.o.d"
  "bench_motion_estimation"
  "bench_motion_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motion_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
