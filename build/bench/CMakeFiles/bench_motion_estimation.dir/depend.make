# Empty dependencies file for bench_motion_estimation.
# This may be replaced when dependencies are built.
