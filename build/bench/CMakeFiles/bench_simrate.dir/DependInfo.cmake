
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_simrate.cc" "bench/CMakeFiles/bench_simrate.dir/bench_simrate.cc.o" "gcc" "bench/CMakeFiles/bench_simrate.dir/bench_simrate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/tm_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/tir/CMakeFiles/tm_tir.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cabac/CMakeFiles/tm_cabac.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsu/CMakeFiles/tm_lsu.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/tm_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/tm_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
