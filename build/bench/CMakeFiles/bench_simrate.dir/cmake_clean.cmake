file(REMOVE_RECURSE
  "CMakeFiles/bench_simrate.dir/bench_simrate.cc.o"
  "CMakeFiles/bench_simrate.dir/bench_simrate.cc.o.d"
  "bench_simrate"
  "bench_simrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
