# Empty compiler generated dependencies file for bench_simrate.
# This may be replaced when dependencies are built.
