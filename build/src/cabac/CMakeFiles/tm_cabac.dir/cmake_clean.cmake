file(REMOVE_RECURSE
  "CMakeFiles/tm_cabac.dir/cabac.cc.o"
  "CMakeFiles/tm_cabac.dir/cabac.cc.o.d"
  "libtm_cabac.a"
  "libtm_cabac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_cabac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
