# Empty compiler generated dependencies file for tm_cabac.
# This may be replaced when dependencies are built.
