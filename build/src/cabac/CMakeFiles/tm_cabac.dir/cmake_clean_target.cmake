file(REMOVE_RECURSE
  "libtm_cabac.a"
)
