file(REMOVE_RECURSE
  "CMakeFiles/tm_core.dir/config.cc.o"
  "CMakeFiles/tm_core.dir/config.cc.o.d"
  "CMakeFiles/tm_core.dir/mmio.cc.o"
  "CMakeFiles/tm_core.dir/mmio.cc.o.d"
  "CMakeFiles/tm_core.dir/processor.cc.o"
  "CMakeFiles/tm_core.dir/processor.cc.o.d"
  "libtm_core.a"
  "libtm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
