file(REMOVE_RECURSE
  "CMakeFiles/tm_power.dir/power_model.cc.o"
  "CMakeFiles/tm_power.dir/power_model.cc.o.d"
  "libtm_power.a"
  "libtm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
