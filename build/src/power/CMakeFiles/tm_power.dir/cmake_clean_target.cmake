file(REMOVE_RECURSE
  "libtm_power.a"
)
