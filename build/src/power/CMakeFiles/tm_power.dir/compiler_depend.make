# Empty compiler generated dependencies file for tm_power.
# This may be replaced when dependencies are built.
