file(REMOVE_RECURSE
  "libtm_tir.a"
)
