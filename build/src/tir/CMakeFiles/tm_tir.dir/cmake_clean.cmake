file(REMOVE_RECURSE
  "CMakeFiles/tm_tir.dir/builder.cc.o"
  "CMakeFiles/tm_tir.dir/builder.cc.o.d"
  "CMakeFiles/tm_tir.dir/scheduler.cc.o"
  "CMakeFiles/tm_tir.dir/scheduler.cc.o.d"
  "libtm_tir.a"
  "libtm_tir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_tir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
