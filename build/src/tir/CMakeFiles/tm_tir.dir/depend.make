# Empty dependencies file for tm_tir.
# This may be replaced when dependencies are built.
