file(REMOVE_RECURSE
  "libtm_lsu.a"
)
