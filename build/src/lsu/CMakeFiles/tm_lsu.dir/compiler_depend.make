# Empty compiler generated dependencies file for tm_lsu.
# This may be replaced when dependencies are built.
