file(REMOVE_RECURSE
  "CMakeFiles/tm_lsu.dir/lsu.cc.o"
  "CMakeFiles/tm_lsu.dir/lsu.cc.o.d"
  "libtm_lsu.a"
  "libtm_lsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_lsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
