# CMake generated Testfile for 
# Source directory: /root/repo/src/lsu
# Build directory: /root/repo/build/src/lsu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
