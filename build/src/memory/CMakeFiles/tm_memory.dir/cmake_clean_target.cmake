file(REMOVE_RECURSE
  "libtm_memory.a"
)
