file(REMOVE_RECURSE
  "CMakeFiles/tm_memory.dir/biu.cc.o"
  "CMakeFiles/tm_memory.dir/biu.cc.o.d"
  "CMakeFiles/tm_memory.dir/main_memory.cc.o"
  "CMakeFiles/tm_memory.dir/main_memory.cc.o.d"
  "libtm_memory.a"
  "libtm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
