# Empty dependencies file for tm_memory.
# This may be replaced when dependencies are built.
