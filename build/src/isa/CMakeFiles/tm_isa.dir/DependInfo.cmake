
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/cabac_tables.cc" "src/isa/CMakeFiles/tm_isa.dir/cabac_tables.cc.o" "gcc" "src/isa/CMakeFiles/tm_isa.dir/cabac_tables.cc.o.d"
  "/root/repo/src/isa/op_info.cc" "src/isa/CMakeFiles/tm_isa.dir/op_info.cc.o" "gcc" "src/isa/CMakeFiles/tm_isa.dir/op_info.cc.o.d"
  "/root/repo/src/isa/operation.cc" "src/isa/CMakeFiles/tm_isa.dir/operation.cc.o" "gcc" "src/isa/CMakeFiles/tm_isa.dir/operation.cc.o.d"
  "/root/repo/src/isa/semantics.cc" "src/isa/CMakeFiles/tm_isa.dir/semantics.cc.o" "gcc" "src/isa/CMakeFiles/tm_isa.dir/semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
