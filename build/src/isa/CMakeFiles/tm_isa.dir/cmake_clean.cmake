file(REMOVE_RECURSE
  "CMakeFiles/tm_isa.dir/cabac_tables.cc.o"
  "CMakeFiles/tm_isa.dir/cabac_tables.cc.o.d"
  "CMakeFiles/tm_isa.dir/op_info.cc.o"
  "CMakeFiles/tm_isa.dir/op_info.cc.o.d"
  "CMakeFiles/tm_isa.dir/operation.cc.o"
  "CMakeFiles/tm_isa.dir/operation.cc.o.d"
  "CMakeFiles/tm_isa.dir/semantics.cc.o"
  "CMakeFiles/tm_isa.dir/semantics.cc.o.d"
  "libtm_isa.a"
  "libtm_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
