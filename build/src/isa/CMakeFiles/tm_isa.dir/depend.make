# Empty dependencies file for tm_isa.
# This may be replaced when dependencies are built.
