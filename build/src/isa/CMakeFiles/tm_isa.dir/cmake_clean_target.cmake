file(REMOVE_RECURSE
  "libtm_isa.a"
)
