file(REMOVE_RECURSE
  "CMakeFiles/tm_asm.dir/assembler.cc.o"
  "CMakeFiles/tm_asm.dir/assembler.cc.o.d"
  "libtm_asm.a"
  "libtm_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
