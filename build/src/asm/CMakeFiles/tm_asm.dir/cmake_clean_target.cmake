file(REMOVE_RECURSE
  "libtm_asm.a"
)
