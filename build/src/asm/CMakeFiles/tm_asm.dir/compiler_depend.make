# Empty compiler generated dependencies file for tm_asm.
# This may be replaced when dependencies are built.
