# Empty dependencies file for tm_prefetch.
# This may be replaced when dependencies are built.
