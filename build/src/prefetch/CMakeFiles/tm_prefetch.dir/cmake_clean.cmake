file(REMOVE_RECURSE
  "CMakeFiles/tm_prefetch.dir/region_prefetcher.cc.o"
  "CMakeFiles/tm_prefetch.dir/region_prefetcher.cc.o.d"
  "libtm_prefetch.a"
  "libtm_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
