file(REMOVE_RECURSE
  "libtm_prefetch.a"
)
