# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("encode")
subdirs("memory")
subdirs("cache")
subdirs("prefetch")
subdirs("lsu")
subdirs("core")
subdirs("tir")
subdirs("asm")
subdirs("cabac")
subdirs("power")
subdirs("workloads")
