# Empty compiler generated dependencies file for tm_support.
# This may be replaced when dependencies are built.
