file(REMOVE_RECURSE
  "CMakeFiles/tm_support.dir/logging.cc.o"
  "CMakeFiles/tm_support.dir/logging.cc.o.d"
  "libtm_support.a"
  "libtm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
