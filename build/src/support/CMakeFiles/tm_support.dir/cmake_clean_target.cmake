file(REMOVE_RECURSE
  "libtm_support.a"
)
