file(REMOVE_RECURSE
  "libtm_cache.a"
)
