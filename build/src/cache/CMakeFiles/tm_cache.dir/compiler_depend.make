# Empty compiler generated dependencies file for tm_cache.
# This may be replaced when dependencies are built.
