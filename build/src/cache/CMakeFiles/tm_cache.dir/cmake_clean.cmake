file(REMOVE_RECURSE
  "CMakeFiles/tm_cache.dir/cache.cc.o"
  "CMakeFiles/tm_cache.dir/cache.cc.o.d"
  "libtm_cache.a"
  "libtm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
