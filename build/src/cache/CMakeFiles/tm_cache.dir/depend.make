# Empty dependencies file for tm_cache.
# This may be replaced when dependencies are built.
