# Empty compiler generated dependencies file for tm_encode.
# This may be replaced when dependencies are built.
