file(REMOVE_RECURSE
  "libtm_encode.a"
)
