file(REMOVE_RECURSE
  "CMakeFiles/tm_encode.dir/decoder.cc.o"
  "CMakeFiles/tm_encode.dir/decoder.cc.o.d"
  "CMakeFiles/tm_encode.dir/encoder.cc.o"
  "CMakeFiles/tm_encode.dir/encoder.cc.o.d"
  "CMakeFiles/tm_encode.dir/formats.cc.o"
  "CMakeFiles/tm_encode.dir/formats.cc.o.d"
  "libtm_encode.a"
  "libtm_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
