
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encode/decoder.cc" "src/encode/CMakeFiles/tm_encode.dir/decoder.cc.o" "gcc" "src/encode/CMakeFiles/tm_encode.dir/decoder.cc.o.d"
  "/root/repo/src/encode/encoder.cc" "src/encode/CMakeFiles/tm_encode.dir/encoder.cc.o" "gcc" "src/encode/CMakeFiles/tm_encode.dir/encoder.cc.o.d"
  "/root/repo/src/encode/formats.cc" "src/encode/CMakeFiles/tm_encode.dir/formats.cc.o" "gcc" "src/encode/CMakeFiles/tm_encode.dir/formats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tm_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
