
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cabac_prog.cc" "src/workloads/CMakeFiles/tm_workloads.dir/cabac_prog.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/cabac_prog.cc.o.d"
  "/root/repo/src/workloads/filter.cc" "src/workloads/CMakeFiles/tm_workloads.dir/filter.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/filter.cc.o.d"
  "/root/repo/src/workloads/memops.cc" "src/workloads/CMakeFiles/tm_workloads.dir/memops.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/memops.cc.o.d"
  "/root/repo/src/workloads/motion_est.cc" "src/workloads/CMakeFiles/tm_workloads.dir/motion_est.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/motion_est.cc.o.d"
  "/root/repo/src/workloads/mp3.cc" "src/workloads/CMakeFiles/tm_workloads.dir/mp3.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/mp3.cc.o.d"
  "/root/repo/src/workloads/mpeg2.cc" "src/workloads/CMakeFiles/tm_workloads.dir/mpeg2.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/mpeg2.cc.o.d"
  "/root/repo/src/workloads/rgb.cc" "src/workloads/CMakeFiles/tm_workloads.dir/rgb.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/rgb.cc.o.d"
  "/root/repo/src/workloads/texture.cc" "src/workloads/CMakeFiles/tm_workloads.dir/texture.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/texture.cc.o.d"
  "/root/repo/src/workloads/tvalgo.cc" "src/workloads/CMakeFiles/tm_workloads.dir/tvalgo.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/tvalgo.cc.o.d"
  "/root/repo/src/workloads/upconv.cc" "src/workloads/CMakeFiles/tm_workloads.dir/upconv.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/upconv.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/tm_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/tm_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tir/CMakeFiles/tm_tir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cabac/CMakeFiles/tm_cabac.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lsu/CMakeFiles/tm_lsu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/tm_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/tm_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tm_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
