# Empty compiler generated dependencies file for tm_workloads.
# This may be replaced when dependencies are built.
