file(REMOVE_RECURSE
  "CMakeFiles/tm_workloads.dir/cabac_prog.cc.o"
  "CMakeFiles/tm_workloads.dir/cabac_prog.cc.o.d"
  "CMakeFiles/tm_workloads.dir/filter.cc.o"
  "CMakeFiles/tm_workloads.dir/filter.cc.o.d"
  "CMakeFiles/tm_workloads.dir/memops.cc.o"
  "CMakeFiles/tm_workloads.dir/memops.cc.o.d"
  "CMakeFiles/tm_workloads.dir/motion_est.cc.o"
  "CMakeFiles/tm_workloads.dir/motion_est.cc.o.d"
  "CMakeFiles/tm_workloads.dir/mp3.cc.o"
  "CMakeFiles/tm_workloads.dir/mp3.cc.o.d"
  "CMakeFiles/tm_workloads.dir/mpeg2.cc.o"
  "CMakeFiles/tm_workloads.dir/mpeg2.cc.o.d"
  "CMakeFiles/tm_workloads.dir/rgb.cc.o"
  "CMakeFiles/tm_workloads.dir/rgb.cc.o.d"
  "CMakeFiles/tm_workloads.dir/texture.cc.o"
  "CMakeFiles/tm_workloads.dir/texture.cc.o.d"
  "CMakeFiles/tm_workloads.dir/tvalgo.cc.o"
  "CMakeFiles/tm_workloads.dir/tvalgo.cc.o.d"
  "CMakeFiles/tm_workloads.dir/upconv.cc.o"
  "CMakeFiles/tm_workloads.dir/upconv.cc.o.d"
  "CMakeFiles/tm_workloads.dir/workload.cc.o"
  "CMakeFiles/tm_workloads.dir/workload.cc.o.d"
  "libtm_workloads.a"
  "libtm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
