file(REMOVE_RECURSE
  "libtm_workloads.a"
)
