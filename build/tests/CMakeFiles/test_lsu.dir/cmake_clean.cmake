file(REMOVE_RECURSE
  "CMakeFiles/test_lsu.dir/test_lsu.cc.o"
  "CMakeFiles/test_lsu.dir/test_lsu.cc.o.d"
  "test_lsu"
  "test_lsu.pdb"
  "test_lsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
