# Empty dependencies file for test_tir.
# This may be replaced when dependencies are built.
