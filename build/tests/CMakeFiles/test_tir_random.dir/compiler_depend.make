# Empty compiler generated dependencies file for test_tir_random.
# This may be replaced when dependencies are built.
