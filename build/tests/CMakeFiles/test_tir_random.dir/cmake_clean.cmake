file(REMOVE_RECURSE
  "CMakeFiles/test_tir_random.dir/test_tir_random.cc.o"
  "CMakeFiles/test_tir_random.dir/test_tir_random.cc.o.d"
  "test_tir_random"
  "test_tir_random.pdb"
  "test_tir_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tir_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
