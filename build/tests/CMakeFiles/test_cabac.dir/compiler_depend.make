# Empty compiler generated dependencies file for test_cabac.
# This may be replaced when dependencies are built.
