file(REMOVE_RECURSE
  "CMakeFiles/test_cabac.dir/test_cabac.cc.o"
  "CMakeFiles/test_cabac.dir/test_cabac.cc.o.d"
  "test_cabac"
  "test_cabac.pdb"
  "test_cabac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cabac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
