# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_encode[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_lsu[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_tir[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_tir_random[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_cabac[1]_include.cmake")
