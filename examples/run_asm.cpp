/**
 * @file
 * Command-line runner for TriMedia-style assembly files.
 *
 *   ./build/examples/run_asm prog.tma [A|B|C|D] [--disasm] [--stats]
 *
 * Assembles the file, optionally prints the disassembly (with the
 * encoded byte cost per instruction), runs it on the selected machine
 * configuration and reports the result and key statistics.
 *
 * Example program (sum of squares 1..10):
 *
 *   imm16 #0 -> r2 | imm16 #1 -> r3
 *   loop:
 *   imul r3 r3 -> r4
 *   iaddi r3 #1 -> r3
 *   nop
 *   iadd r2 r4 -> r2 | ilesi r3 #11 -> r5
 *   if r5 jmpt @loop
 *   nop
 *   nop
 *   nop
 *   nop
 *   nop
 *   halt r2
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "core/system.hh"
#include "support/logging.hh"

using namespace tm3270;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s file.tma [A|B|C|D] [--disasm] "
                     "[--stats]\n",
                     argv[0]);
        return 2;
    }

    char config = 'D';
    bool want_disasm = false, want_stats = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--disasm") == 0)
            want_disasm = true;
        else if (std::strcmp(argv[i], "--stats") == 0)
            want_stats = true;
        else if (std::strlen(argv[i]) == 1)
            config = argv[i][0];
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    try {
        AsmProgram prog = assemble(ss.str());
        EncodedProgram enc = prog.encode();

        if (want_disasm) {
            std::printf("%s", disassemble(prog.insts,
                                          prog.jumpTargets).c_str());
            std::printf("; %zu instructions, %zu bytes encoded "
                        "(%.2f bytes/instr, 28 uncompressed)\n\n",
                        prog.insts.size(), enc.bytes.size(),
                        double(enc.bytes.size()) /
                            double(prog.insts.size()));
        }

        MachineConfig cfg = configByLetter(config);
        System sys(cfg);
        RunResult r = sys.runProgram(enc);
        std::printf("[%s @ %u MHz] exit value: %u (0x%08x)\n",
                    cfg.name.c_str(), cfg.freqMHz, r.exitValue,
                    r.exitValue);
        std::printf("instructions %llu, cycles %llu (%.1f us), "
                    "CPI %.2f, OPI %.2f\n",
                    static_cast<unsigned long long>(r.instrs),
                    static_cast<unsigned long long>(r.cycles),
                    r.microseconds(cfg.freqMHz), r.cpi(), r.opi());
        if (want_stats) {
            std::printf("\n");
            sys.processor.stats.dump(std::cout);
            sys.processor.lsu().stats.dump(std::cout);
            sys.processor.lsu().dcache().stats.dump(std::cout);
            sys.processor.biu().stats.dump(std::cout);
        }
        if (!sys.processor.mmio().debugOutput().empty()) {
            std::printf("debug output: %s\n",
                        sys.processor.mmio().debugOutput().c_str());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
