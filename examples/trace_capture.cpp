/**
 * @file
 * Capture a cycle-level trace of one workload run (README: "How to
 * capture and view a trace"):
 *
 *     ./examples/trace_capture --workload motion_est --config D \
 *         --trace-out trace.json --intervals-out intervals.csv
 *
 * trace.json is Chrome trace-event JSON: open https://ui.perfetto.dev
 * (or chrome://tracing) and load the file; one simulated cycle shows
 * as one microsecond, with core / lsu / biu / dram tracks.
 *
 * Options:
 *   --workload NAME   Table 5 kernel name, or "motion_est" (default)
 *   --config L        machine configuration A..D (default D)
 *   --trace-out F     Chrome trace JSON path (default trace.json)
 *   --intervals-out F interval metrics CSV path (default intervals.csv)
 *   --interval N      sampler period in cycles (default 1024)
 *   --ring N          tracer ring capacity in events (default 1<<18)
 *
 * With TM_PROF=1 a host-time breakdown follows the run summary: the
 * self-profiler's hierarchical scope dump (compile / staging / core
 * run / refills / verify / serialization) plus a coverage line showing
 * what share of the measured wall time the scopes account for.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/config.hh"
#include "support/logging.hh"
#include "support/prof.hh"
#include "tir/scheduler.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"
#include "workloads/motion_est.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--config A..D]\n"
                 "          [--trace-out FILE] [--intervals-out FILE]\n"
                 "          [--interval CYCLES] [--ring EVENTS]\n"
                 "workloads: motion_est",
                 argv0);
    for (const Workload &w : table5Suite())
        std::fprintf(stderr, ", %s", w.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "motion_est";
    char configLetter = 'D';
    std::string traceOut = "trace.json";
    std::string intervalsOut = "intervals.csv";
    Cycles interval = 1024;
    size_t ring = size_t(1) << 18;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *opt) -> const char * {
            if (std::strcmp(argv[i], opt) != 0 || i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (const char *v = value("--workload")) {
            workload = v;
        } else if (const char *v = value("--config")) {
            configLetter = v[0];
        } else if (const char *v = value("--trace-out")) {
            traceOut = v;
        } else if (const char *v = value("--intervals-out")) {
            intervalsOut = v;
        } else if (const char *v = value("--interval")) {
            interval = Cycles(std::strtoull(v, nullptr, 10));
        } else if (const char *v = value("--ring")) {
            ring = size_t(std::strtoull(v, nullptr, 10));
        } else {
            return usage(argv[0]);
        }
    }

    MachineConfig cfg;
    try {
        cfg = configByLetter(configLetter);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "bad --config: %s\n", e.what());
        return 2;
    }

    trace::Tracer tracer(ring);
    trace::IntervalSampler sampler(interval);
    System sys(cfg);
    sys.processor.attachTracer(&tracer);
    sys.processor.attachSampler(&sampler);

    // Opt into the self-profiler when TM_PROF is set, and time the
    // instrumented region (compile .. serialization) so the scope
    // totals below can be checked against real wall time.
    prof::Profiler *profiler = prof::envProfiler();
    prof::attach(profiler);
    using HostClock = std::chrono::steady_clock;
    HostClock::time_point wall0 = HostClock::now();

    RunResult r;
    try {
        if (workload == "motion_est") {
            tir::CompiledProgram cp = tir::compile(
                buildMotionEstimation({true, true, true}), cfg);
            {
                TM_PROF_SCOPE(prof::Scope::Stage);
                stageMotionEstimation(sys, 99);
            }
            r = sys.runProgram(cp.encoded);
            TM_PROF_SCOPE(prof::Scope::Verify);
            std::string err;
            if (!r.halted || !verifyMotionEstimation(sys, 99, err)) {
                std::fprintf(stderr, "verify failed: %s\n", err.c_str());
                return 1;
            }
        } else {
            const Workload *found = nullptr;
            static std::vector<Workload> suite = table5Suite();
            for (const Workload &w : suite) {
                if (w.name == workload)
                    found = &w;
            }
            if (!found)
                return usage(argv[0]);
            tir::CompiledProgram cp = tir::compile(found->build(), cfg);
            RunOutcome o = runWorkloadOn(sys, *found, cp.encoded);
            if (!o.ok) {
                std::fprintf(stderr, "run failed: %s\n", o.error.c_str());
                return 1;
            }
            r = o.run;
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }

    std::ofstream tf(traceOut);
    if (!tf) {
        std::fprintf(stderr, "cannot write %s\n", traceOut.c_str());
        return 1;
    }
    tracer.writeChromeJson(tf);

    std::ofstream cf(intervalsOut);
    if (!cf) {
        std::fprintf(stderr, "cannot write %s\n", intervalsOut.c_str());
        return 1;
    }
    sampler.writeCsv(cf);
    double wallMs =
        std::chrono::duration<double, std::milli>(HostClock::now() - wall0)
            .count();

    std::printf("%s/%c: %llu cycles, %llu instrs, %llu stall cycles\n",
                workload.c_str(), configLetter,
                (unsigned long long)r.cycles, (unsigned long long)r.instrs,
                (unsigned long long)r.stallCycles);
    std::printf("stall breakdown:\n");
    for (const auto &[k, v] : sys.processor.stats.all()) {
        if (k.rfind("stall.", 0) == 0)
            std::printf("  cpu.%s %llu\n", k.c_str(),
                        (unsigned long long)v);
    }
    std::printf("trace: %s (%llu events recorded, %llu dropped)\n",
                traceOut.c_str(), (unsigned long long)tracer.recorded(),
                (unsigned long long)tracer.dropped());
    std::printf("intervals: %s (%zu rows, every %llu cycles)\n",
                intervalsOut.c_str(), sampler.rows().size(),
                (unsigned long long)sampler.period());

    if (profiler != nullptr) {
        std::printf("\n");
        profiler->writeText(std::cout);
        std::cout.flush();
        double coveredMs = double(profiler->rootNs()) / 1e6;
        std::printf("profile coverage: %.1f ms in scopes / %.1f ms "
                    "wall = %.1f%%\n",
                    coveredMs, wallMs,
                    wallMs > 0.0 ? 100.0 * coveredMs / wallMs : 0.0);
    }
    return 0;
}
