/**
 * @file
 * Video pipeline example: the workloads the paper's introduction
 * motivates. Runs motion-compensated temporal up-conversion and the
 * MPEG2 texture pipeline, first in the portable TriMedia subset and
 * then with the TM3270's new operations and prefetching — showing the
 * prefetch region registers being programmed over MMIO and the effect
 * on stall cycles.
 *
 * Run: ./build/examples/video_pipeline
 */

#include <cstdio>

#include "support/logging.hh"
#include "tir/scheduler.hh"
#include "workloads/texture.hh"
#include "workloads/upconv.hh"

using namespace tm3270;
using namespace tm3270::workloads;

namespace
{

void
runUpconv(const char *label, const UpconvFlags &flags)
{
    System sys(tm3270Config());
    stageUpconversion(sys, 7);
    tir::CompiledProgram cp =
        tir::compile(buildUpconversion(flags), tm3270Config());
    RunResult r = sys.runProgram(cp.encoded);
    std::string err;
    if (!verifyUpconversion(sys, 7, err))
        fatal("up-conversion output mismatch: %s", err.c_str());

    const auto &lsu = sys.processor.lsu().stats;
    std::printf("%-36s %9llu cycles %8llu stalls  "
                "(%llu prefetches useful)\n",
                label, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.stallCycles),
                static_cast<unsigned long long>(
                    lsu.get("prefetch_useful")));
}

void
runTexture(const char *label, bool two_slot)
{
    System sys(tm3270Config());
    stageTexture(sys, 7);
    tir::CompiledProgram cp =
        tir::compile(buildTexturePipeline(two_slot), tm3270Config());
    RunResult r = sys.runProgram(cp.encoded);
    std::string err;
    if (!verifyTexture(sys, 7, err))
        fatal("texture output mismatch: %s", err.c_str());
    std::printf("%-36s %9llu cycles   OPI %.2f\n", label,
                static_cast<unsigned long long>(r.cycles), r.opi());
}

} // namespace

int
main()
{
    std::printf("Temporal up-conversion (%ux%u fields, half-pel "
                "motion):\n",
                upconv_geom::W, upconv_geom::H);
    runUpconv("  portable TriMedia subset", UpconvFlags{false, false});
    runUpconv("  + LD_FRAC8 / non-aligned", UpconvFlags{true, false});
    runUpconv("  + prefetch regions (MMIO)", UpconvFlags{true, true});

    std::printf("\nMPEG2 texture pipeline (%u rows):\n",
                texture_geom::numRows);
    runTexture("  scalar multiplies", false);
    runTexture("  SUPER_DUALIMIX two-slot ops", true);

    std::printf("\nAll outputs verified bit-exactly against the host "
                "reference implementations.\n");
    return 0;
}
