/**
 * @file
 * CABAC example: generate an H.264-style CABAC bitstream with the
 * golden-model arithmetic encoder, then decode it three ways —
 * with the host golden model (the paper's Fig. 2 function), with the
 * plain-operation TM3270 program, and with the SUPER_CABAC two-slot
 * operations — and compare work per decoded bin.
 *
 * Run: ./build/examples/cabac_decode
 */

#include <cstdio>

#include "support/logging.hh"
#include "tir/scheduler.hh"
#include "workloads/cabac_prog.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    // A ~50 kbit synthetic field with 64 contexts.
    SyntheticField field = generateField(50000, 64, 0.82, 2026);
    std::printf("synthetic CABAC field: %zu stream bits, %zu bins "
                "(%.2f bins/bit)\n",
                field.streamBits, field.bins.size(),
                double(field.bins.size()) / double(field.streamBits));

    // Host golden model (paper Fig. 2, bit-exact).
    {
        CabacDecoder dec(field.stream);
        std::vector<CabacContext> ctx = field.initCtx;
        size_t errors = 0;
        for (size_t i = 0; i < field.bins.size(); ++i)
            errors += dec.decodeBit(ctx[field.ctxSequence[i]]) !=
                      field.bins[i];
        std::printf("golden model: %zu decode errors, %zu bits "
                    "consumed\n",
                    errors, dec.bitsConsumed());
    }

    // TM3270 programs.
    for (bool optimized : {false, true}) {
        System sys(tm3270Config());
        stageCabacField(sys, field);
        tir::CompiledProgram cp = tir::compile(
            buildCabacDecode(unsigned(field.bins.size()), optimized),
            tm3270Config());
        RunResult r = sys.runProgram(cp.encoded);
        std::string err;
        if (!verifyCabacBits(sys, field, err))
            fatal("decode mismatch: %s", err.c_str());
        std::printf("%-28s %9llu VLIW instrs  %5.1f instr/bin  "
                    "%5.1f instr/bit\n",
                    optimized ? "TM3270 + SUPER_CABAC ops:"
                              : "TM3270 plain operations:",
                    static_cast<unsigned long long>(r.instrs),
                    double(r.instrs) / double(field.bins.size()),
                    double(r.instrs) / double(field.streamBits));
    }

    std::printf("\nAt 350 MHz the TM3270 sustains the CABAC decode "
                "rates that standard-definition H.264 requires "
                "(paper §7).\n");
    return 0;
}
