/**
 * @file
 * Power and DVFS example (paper §5.2): the TM3270 is a fully static
 * design with asynchronous bus interfaces, so frequency and voltage
 * can change on the fly. This example measures the cycles each
 * workload actually needs, picks the lowest frequency that still
 * meets a frame-time deadline, and reports power at 1.2 V versus a
 * voltage-scaled operating point.
 *
 * Run: ./build/examples/dvfs_power
 */

#include <algorithm>
#include <cstdio>

#include "power/power_model.hh"
#include "tir/scheduler.hh"
#include "workloads/workload.hh"

using namespace tm3270;
using namespace tm3270::workloads;

int
main()
{
    // Calibrate the power model on the MP3 proxy (Table 4).
    MachineConfig cfg = tm3270Config();
    PowerModel model;
    RunResult mp3_r;
    ActivitySample mp3;
    {
        Workload w = mp3Workload();
        System sys(cfg);
        w.init(sys);
        tir::CompiledProgram cp = tir::compile(w.build(), cfg);
        sys.processor.loadProgram(cp.encoded);
        mp3_r = sys.processor.run();
        mp3 = ActivitySample::fromRun(sys, mp3_r);
        model.calibrate(mp3);
    }

    std::printf("DVFS planning: run each task at the lowest frequency "
                "that meets a 10 ms deadline\n\n");
    std::printf("%-14s %10s %8s %8s | %10s | %10s %10s\n", "workload",
                "cycles", "OPI", "CPI", "f-min MHz", "mW @350/1.2",
                "mW @fmin/0.8");

    for (const char *name :
         {"filter", "rgb2yuv", "mpeg2_c", "majority_sel", "filmdet"}) {
        for (Workload &w : table5Suite()) {
            if (w.name != name)
                continue;
            System sys(cfg);
            w.init(sys);
            tir::CompiledProgram cp = tir::compile(w.build(), cfg);
            sys.processor.loadProgram(cp.encoded);
            RunResult r = sys.processor.run();
            ActivitySample a = ActivitySample::fromRun(sys, r);

            // Lowest frequency meeting the deadline:
            // f >= cycles / 10 ms, in MHz = cycles / 10000.
            double fmin = std::max(double(r.cycles) / 1e4, 1.0);
            double p_full = model.powerMw(a, 350.0, 1.2);
            // Below ~200 MHz the part runs at 0.8 V (paper: functional
            // operation at 0.8 V is guaranteed at a lower frequency).
            double volts = fmin < 200.0 ? 0.8 : 1.2;
            double p_dvfs = model.powerMw(a, fmin, volts);
            std::printf("%-14s %10llu %8.2f %8.2f | %10.1f | %10.1f "
                        "%10.2f\n",
                        name, static_cast<unsigned long long>(r.cycles),
                        a.opi, a.cpi, fmin, p_full, p_dvfs);
        }
    }

    std::printf("\nMP3 decode reference point: %.2f mW at 8 MHz / "
                "0.8 V (paper: 3.32 mW)\n",
                model.powerMw(mp3, 8.0, 0.8));
    return 0;
}
