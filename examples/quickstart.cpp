/**
 * @file
 * Quickstart: three ways to run code on the TM3270 model.
 *
 *  1. Assemble a TriMedia-style text program and run it.
 *  2. Build a kernel with the TIR builder, let the list scheduler
 *     target the machine, and inspect the generated VLIW schedule.
 *  3. Compare the same kernel across the paper's four machine
 *     configurations (Table 6).
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "core/system.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

using namespace tm3270;

namespace
{

void
part1_assembler()
{
    std::printf("--- 1. assembler ------------------------------------\n");
    // Sum the first 100 integers. One line is one VLIW instruction;
    // '|' separates operations sharing an instruction; jumps have 5
    // architectural delay slots on the TM3270 (filled with nops here).
    AsmProgram prog = assemble(
        "imm16 #0 -> r2 | imm16 #0 -> r3\n"
        "loop:\n"
        "iadd r2 r3 -> r2 | iaddi r3 #1 -> r3\n"
        "ilesi r3 #100 -> r4\n"
        "if r4 jmpt @loop\n"
        "nop\nnop\nnop\nnop\nnop\n"
        "halt r2\n");

    System sys(tm3270Config());
    RunResult r = sys.runProgram(prog.encode());
    std::printf("sum(0..99) = %u (expect 4950)\n", r.exitValue);
    std::printf("instructions issued: %llu, cycles: %llu, "
                "CPI %.2f, code size %zu bytes\n\n",
                static_cast<unsigned long long>(r.instrs),
                static_cast<unsigned long long>(r.cycles), r.cpi(),
                prog.encode().bytes.size());
}

void
part2_tir()
{
    std::printf("--- 2. TIR builder + scheduler ----------------------\n");
    // A SIMD byte-average kernel: the scheduler assigns issue slots,
    // fills jump delay slots, and allocates r2..r127.
    tir::Builder b;
    tir::VReg src1 = b.var(), src2 = b.var(), dst = b.var();
    tir::VReg i = b.var();
    b.assign(src1, b.imm32(0x1000));
    b.assign(src2, b.imm32(0x2000));
    b.assign(dst, b.imm32(0x3000));
    b.assign(i, b.imm32(0));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);
    tir::VReg cond = b.ilesi(i, 252);
    b.assign(i, b.iaddi(i, 4));
    tir::VReg off = i;
    tir::VReg a = b.ld32r(src1, off);
    tir::VReg c = b.ld32r(src2, off);
    b.st32r(b.quadavg(a, c), dst, off);
    b.jmpt(cond, loop);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());

    tir::CompiledProgram cp = tir::compile(b.take(), tm3270Config());
    std::printf("scheduled VLIW code:\n%s\n",
                disassemble(cp.insts, cp.jumpTargets).c_str());

    System sys(tm3270Config());
    for (unsigned k = 0; k < 256; ++k) {
        sys.memory.setByte(0x1000 + k, uint8_t(k));
        sys.memory.setByte(0x2000 + k, uint8_t(255 - k));
    }
    RunResult r = sys.runProgram(cp.encoded);
    uint8_t out0, out255;
    sys.readBytes(0x3000 + 4, &out0, 1);
    sys.readBytes(0x3000 + 255, &out255, 1);
    std::printf("quadavg output bytes: [4]=%u [255]=%u (both 128), "
                "%llu cycles\n\n",
                out0, out255,
                static_cast<unsigned long long>(r.cycles));
}

void
part3_configs()
{
    std::printf("--- 3. four machine configurations ------------------\n");
    tir::Builder b;
    tir::VReg p = b.var(), i = b.var(), acc = b.var();
    b.assign(p, b.imm32(0x00100000));
    b.assign(i, b.imm32(0));
    b.assign(acc, b.imm32(0));
    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);
    b.setBlock(loop);
    tir::VReg cond = b.ilesi(i, 2000);
    b.assign(i, b.iaddi(i, 1));
    b.assign(acc, b.iadd(acc, b.ld32d(p, 0)));
    b.assign(p, b.iaddi(p, 32)); // one access per generation's line
    b.jmpt(cond, loop);
    int done = b.newBlock();
    b.setBlock(done);
    b.halt(acc);
    tir::TirProgram prog = b.take();

    std::printf("%-10s %8s %10s %10s %8s\n", "config", "MHz", "cycles",
                "stalls", "time us");
    for (char letter : {'A', 'B', 'C', 'D'}) {
        MachineConfig cfg = configByLetter(letter);
        tir::CompiledProgram cp = tir::compile(prog, cfg);
        System sys(cfg);
        RunResult r = sys.runProgram(cp.encoded);
        std::printf("%-10c %8u %10llu %10llu %8.1f\n", letter,
                    cfg.freqMHz,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.stallCycles),
                    r.microseconds(cfg.freqMHz));
    }
}

} // namespace

int
main()
{
    part1_assembler();
    part2_tir();
    part3_configs();
    return 0;
}
