#!/usr/bin/env bash
# Full verification ladder: tier-1 tests, ASan/UBSan, and the TSan
# sweep-driver subset, in one command:
#
#     scripts/verify.sh [-j N]
#
# Build trees:
#   build/       RelWithDebInfo, full tier-1 ctest suite
#   build-asan/  -DTM_SANITIZE=address,undefined, full suite
#   build-tsan/  -DTM_SANITIZE=thread, -R 'Sweep|ProgramCache'
#                (the threaded code: sweep pool + compile-once cache)
#
# Exits non-zero on the first failing stage. Incremental: existing
# build trees are reused, so re-runs only pay for what changed.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
    case "$opt" in
      j) jobs="$OPTARG" ;;
      *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

stage() { printf '\n=== %s ===\n' "$*"; }

stage "tier-1 (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

stage "ASan/UBSan (build-asan/)"
cmake -B build-asan -S . -DTM_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

stage "TSan sweep subset (build-tsan/)"
cmake -B build-tsan -S . -DTM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Sweep|ProgramCache'

stage "all green"
