#!/usr/bin/env bash
# Full verification ladder: project-invariant lint, tier-1 tests,
# clang-tidy (when available), ASan/UBSan, the TSan sweep-driver
# subset, trace validity, and the tracing-off simrate gate, in one
# command:
#
#     scripts/verify.sh [-j N]
#
# Stage 0 is scripts/tm_lint.py (DESIGN.md §10): fixture selftest,
# then the determinism/stat-accounting/thread-safety rules over src/.
#
# Build trees (all configured with -DTM_WERROR=ON: warnings = errors):
#   build/       RelWithDebInfo, full tier-1 ctest suite
#   build-asan/  -DTM_SANITIZE=address,undefined, full suite
#   build-tsan/  -DTM_SANITIZE=thread, -R 'Sweep|ProgramCache'
#                (the threaded code: sweep pool + compile-once cache)
#
# Stage 4 captures a small trace with examples/trace_capture and
# checks it is valid Chrome trace-event JSON; stage 5 re-runs
# bench_simrate and gates items_per_second against the committed
# BENCH_simrate.json (tolerance 2%, see scripts/check_simrate.py), so
# the never-taken tracing branches stay free in the hot loops. Stage 6
# gates the same run-manifest against the longitudinal ledger
# (median-of-3 baseline + per-benchmark floors, see
# scripts/perf_history.py) and appends it to
# bench/history/history.jsonl on success.
#
# Exits non-zero on the first failing stage. Incremental: existing
# build trees are reused, so re-runs only pay for what changed.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
    case "$opt" in
      j) jobs="$OPTARG" ;;
      *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

stage() { printf '\n=== %s ===\n' "$*"; }

# The lint gate runs before any build so invariant violations fail in
# seconds. The selftest first: a lint whose rules silently stopped
# firing must not be able to green-light the tree (the fixtures under
# tests/lint_fixtures/ each MUST be flagged with their declared rule).
stage "lint (tm-lint selftest + src/ sweep)"
python3 scripts/tm_lint.py --selftest
python3 scripts/tm_lint.py

stage "tier-1 (build/)"
cmake -B build -S . -DTM_WERROR=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

# Generic AST checks (.clang-tidy) over the compile_commands.json the
# tier-1 configure just exported. Optional: the container image may
# not ship clang-tidy; tm-lint above carries the project invariants
# either way.
stage "clang-tidy (optional)"
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet -j "$jobs" "$(pwd)/src/.*"
elif command -v clang-tidy >/dev/null 2>&1; then
    find src -name '*.cc' -print0 |
        xargs -0 -P "$jobs" -n 8 clang-tidy -p build -quiet
else
    echo "clang-tidy not found - stage skipped (tm-lint already ran)"
fi

stage "ASan/UBSan (build-asan/)"
cmake -B build-asan -S . -DTM_SANITIZE=address,undefined \
    -DTM_WERROR=ON >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

stage "TSan sweep subset (build-tsan/)"
cmake -B build-tsan -S . -DTM_SANITIZE=thread -DTM_WERROR=ON >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Sweep|ProgramCache'

stage "trace validity (examples/trace_capture)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
./build/examples/trace_capture --workload motion_est --config D \
    --trace-out "$tracedir/trace.json" \
    --intervals-out "$tracedir/intervals.csv"
python3 - "$tracedir/trace.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
events = d["traceEvents"]
assert events, "empty traceEvents"
phases = {e["ph"] for e in events}
assert phases <= {"X", "i", "C", "M"}, f"unexpected phases: {phases}"
assert all("ts" in e for e in events if e["ph"] != "M")
print(f"trace OK: {len(events)} events, phases {sorted(phases)}")
EOF

stage "tracing-off simrate gate (2%)"
# 3 repetitions; the gate takes the fastest of each (host load only
# ever slows a run down, so max-over-reps estimates the true rate).
# --manifest_out is explicit so the committed BENCH_simrate.json
# baseline in the repo root is never overwritten by a verify run.
./build/bench/bench_simrate \
    --manifest_out="$tracedir/simrate_manifest.json" \
    --benchmark_repetitions=3 \
    --benchmark_out="$tracedir/simrate.json" \
    --benchmark_out_format=json
python3 scripts/check_simrate.py "$tracedir/simrate.json"

stage "perf history (ledger gate + append)"
# The manifest the bench just emitted is gated against the last three
# ledger points (median-of-3, plus any per-benchmark floors), then
# recorded, so bench/history/history.jsonl accretes one row per green
# verify run.
python3 scripts/perf_history.py check "$tracedir/simrate_manifest.json"
python3 scripts/perf_history.py append "$tracedir/simrate_manifest.json"

stage "all green"
