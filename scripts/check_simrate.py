#!/usr/bin/env python3
"""Tracing-off overhead gate for the simulation-rate benchmark.

Compares a fresh BENCH_simrate.json against the committed baseline:
every benchmark present in both must keep items_per_second (simulated
VLIW instructions per wall second) within a tolerance of its baseline.
Benchmarks only present on one side — e.g. the tracing-ON companion
BM_SimrateMotionEstTraced, whose cost is the price of tracing, not a
regression — are reported but not gated.

Usage:
    scripts/check_simrate.py NEW.json [BASELINE.json]

BASELINE.json defaults to the committed BENCH_simrate.json next to
this repository's root. The relative slowdown tolerance is 0.02 (2%),
overridable via TM_SIMRATE_TOLERANCE. Exits non-zero when any gated
benchmark regresses beyond tolerance.

Shared-host noise handling: when a file holds several entries for one
benchmark (e.g. a --benchmark_repetitions run), the *fastest* is used
— transient host load only ever slows a run down, so the max over
repetitions is the best available estimate of the code's true rate.
scripts/verify.sh measures with 3 repetitions, and the committed
baseline records a per-benchmark floor over several runs on the
reference host for the same reason.
"""

import json
import os
import sys


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips:
            name = b["name"]
            rates[name] = max(rates.get(name, 0.0), float(ips))
    return rates


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    new_path = argv[1]
    base_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_simrate.json",
        )
    )
    tolerance = float(os.environ.get("TM_SIMRATE_TOLERANCE", "0.02"))

    base = load_rates(base_path)
    new = load_rates(new_path)
    if not base or not new:
        print(f"error: no items_per_second entries in "
              f"{base_path if not base else new_path}", file=sys.stderr)
        return 2

    failed = []
    for name in sorted(set(base) | set(new)):
        if "Traced" in name:
            print(f"  {name:42s} (tracing-on companion; not gated)")
            continue
        if name not in base or name not in new:
            side = "baseline" if name in base else "new run"
            print(f"  {name:42s} ({side} only; not gated)")
            continue
        ratio = new[name] / base[name]
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            failed.append(name)
        print(f"  {name:42s} {base[name] / 1e6:8.2f} -> "
              f"{new[name] / 1e6:8.2f} M instr/s  "
              f"({(ratio - 1.0) * 100:+6.2f}%)  {status}")

    if failed:
        print(f"simrate gate FAILED (>{tolerance * 100:.0f}% below "
              f"baseline): {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"simrate gate passed (tolerance {tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
