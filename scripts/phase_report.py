#!/usr/bin/env python3
"""Phase-behaviour report from an IntervalSampler CSV.

The interval sampler (src/trace/interval.hh) emits one row per N
simulated cycles with per-interval IPC, stall fraction and cache/
prefetch rates. This script renders that series two ways:

    scripts/phase_report.py RUN.intervals.csv [--svg OUT.svg]
                            [--columns ipc,stall_frac] [--width N]

  * terminal: one unicode sparkline per selected column plus min /
    mean / max, so a phase change (e.g. the motion-estimation inner
    loop entering its prefetch-friendly steady state) is visible in
    CI logs without any tooling;
  * --svg: a dependency-free SVG line chart (one polyline per column,
    shared cycle axis) for DESIGN.md-style reports.

Exit codes: 0 ok, 2 usage/data error (missing column, empty series).
"""

import argparse
import sys

SPARKS = "▁▂▃▄▅▆▇█"


def read_csv(path):
    with open(path) as f:
        lines = [ln.strip() for ln in f if ln.strip()]
    if len(lines) < 2:
        raise ValueError(f"{path}: no data rows")
    header = lines[0].split(",")
    rows = []
    for ln in lines[1:]:
        parts = ln.split(",")
        if len(parts) != len(header):
            raise ValueError(f"{path}: ragged row: {ln!r}")
        rows.append([float(x) for x in parts])
    return header, rows


def column(header, rows, name):
    try:
        i = header.index(name)
    except ValueError:
        raise ValueError(
            f"no column {name!r}; have {', '.join(header)}") from None
    return [r[i] for r in rows]


def resample(values, width):
    """Mean-pool values into at most width buckets."""
    if len(values) <= width:
        return values
    out = []
    for b in range(width):
        lo = b * len(values) // width
        hi = max(lo + 1, (b + 1) * len(values) // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values, lo, hi):
    span = hi - lo
    if span <= 0:
        return SPARKS[0] * len(values)
    idx = [min(len(SPARKS) - 1, int((v - lo) / span * len(SPARKS)))
           for v in values]
    return "".join(SPARKS[i] for i in idx)


def render_terminal(cycles, cols, width):
    for name, values in cols.items():
        lo, hi = min(values), max(values)
        mean = sum(values) / len(values)
        line = sparkline(resample(values, width), lo, hi)
        print(f"{name:>18s} {line}")
        print(f"{'':>18s} min {lo:.3f}  mean {mean:.3f}  max {hi:.3f}  "
              f"({len(values)} samples to cycle {int(cycles[-1])})")


# A small qualitative palette; cycles if more columns are requested.
PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"]


def render_svg(cycles, cols, path):
    w, h, pad = 960, 240, 40
    plot_w, plot_h = w - 2 * pad, h - 2 * pad
    cmin, cmax = cycles[0], cycles[-1]
    cspan = max(1.0, cmax - cmin)

    def x(c):
        return pad + (c - cmin) / cspan * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
        f'height="{h}" viewBox="0 0 {w} {h}">',
        f'<rect width="{w}" height="{h}" fill="white"/>',
        f'<line x1="{pad}" y1="{h - pad}" x2="{w - pad}" '
        f'y2="{h - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{h - pad}" '
        f'stroke="#888"/>',
        f'<text x="{w - pad}" y="{h - pad + 16}" font-size="11" '
        f'text-anchor="end" fill="#444">cycle {int(cmax)}</text>',
    ]
    for i, (name, values) in enumerate(cols.items()):
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0

        def y(v):
            return h - pad - (v - lo) / span * plot_h

        pts = " ".join(f"{x(c):.1f},{y(v):.1f}"
                       for c, v in zip(cycles, values))
        color = PALETTE[i % len(PALETTE)]
        parts.append(f'<polyline points="{pts}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        parts.append(f'<text x="{pad + 6}" y="{pad + 14 + 14 * i}" '
                     f'font-size="12" fill="{color}">{name} '
                     f'[{lo:.3f} .. {hi:.3f}]</text>')
    parts.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(parts) + "\n")
    print(f"wrote {path} ({len(cols)} series, {len(cycles)} samples)")


def main(argv):
    p = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("csv", help="IntervalSampler .intervals.csv")
    p.add_argument("--columns", default="ipc,stall_frac",
                   help="comma-separated columns (default ipc,stall_frac)")
    p.add_argument("--svg", default=None, help="also write an SVG chart")
    p.add_argument("--width", type=int, default=72,
                   help="sparkline width in cells (default 72)")
    args = p.parse_args(argv[1:])

    try:
        header, rows = read_csv(args.csv)
        cycles = column(header, rows, "cycle")
        cols = {name: column(header, rows, name)
                for name in args.columns.split(",") if name}
        if not cols:
            raise ValueError("no columns selected")
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    render_terminal(cycles, cols, args.width)
    if args.svg:
        render_svg(cycles, cols, args.svg)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
