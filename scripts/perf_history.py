#!/usr/bin/env python3
"""Perf-history ledger and regression gate over run manifests.

Every bench harness and the sweep driver emit a tm3270.run_manifest.v1
JSON document (src/support/report.hh). This script turns those
per-run manifests into a longitudinal record and gates new runs
against it:

    scripts/perf_history.py append MANIFEST...   [--history FILE]
    scripts/perf_history.py check  MANIFEST...   [--history FILE]
    scripts/perf_history.py report               [--history FILE]
    scripts/perf_history.py --selftest

append   Compacts each manifest (schema, kind/name, git rev, wall-clock
         stamp, per-benchmark rates, aggregate block, per-job stat
         digests) onto one line of bench/history/history.jsonl. The
         ledger is append-only JSONL so `git log -p` shows perf history
         as plain diffs and a truncated tail never corrupts old rows.

check    Flags regressions in MANIFEST against the ledger. For every
         rate series (bench entry or sweep aggregate) the baseline is
         the *median of the last three* historical points — one noisy
         fast run cannot ratchet the bar up, and one noisy slow run
         cannot drag it down (same shared-host reasoning as
         scripts/check_simrate.py, which this subsumes for history-aware
         gating; check_simrate.py remains the two-file A/B gate).
         A new rate below baseline * (1 - tolerance) is a regression.
         Tolerance: --tolerance, else TM_SIMRATE_TOLERANCE, else 0.02.

         Per-benchmark floors: an optional JSON file (--floors, default
         bench/history/floors.json next to the history file) maps rate
         names to absolute items/s minima; a run below its floor fails
         even if history has drifted down with it. Floors pin the
         "never regress past this" line for headline benchmarks while
         the median handles run-to-run noise.

report   One line per rate series: points, latest, median-of-3
         baseline, best.

--selftest builds a synthetic ledger in a temp dir, verifies a healthy
manifest passes, then seeds a 30% regression and verifies check exits
nonzero (and that a floor violation alone also trips). Exits 0 iff the
detector behaves; wired into ctest so the gate cannot silently rot.

Exit codes: 0 ok, 1 regression detected, 2 usage/data error.
"""

import argparse
import json
import os
import statistics
import sys

SCHEMA = "tm3270.run_manifest.v1"
HISTORY_SCHEMA = "tm3270.perf_history.v1"
DEFAULT_HISTORY = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "bench", "history",
    "history.jsonl")


def load_manifest(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    return doc


def manifest_rates(doc):
    """Gated rate series of a manifest, name -> items/s.

    Bench manifests contribute one series per benchmark (max over
    repetitions; aggregates and tracing-ON "Traced" companions are
    skipped, mirroring check_simrate.py). Sweep manifests contribute
    one series, "sweep:<name>", from the aggregate throughput.
    """
    rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if "Traced" in name:
            continue
        ips = b.get("items_per_second")
        if ips:
            rates[name] = max(rates.get(name, 0.0), float(ips))
    if doc.get("kind") == "sweep":
        ips = doc.get("aggregate", {}).get("items_per_second")
        if ips:
            rates[f"sweep:{doc.get('name', '?')}"] = float(ips)
    return rates


def compact(doc):
    """The one-line ledger record derived from a full manifest."""
    ctx = doc.get("context", {})
    rec = {
        "schema": HISTORY_SCHEMA,
        "kind": doc.get("kind"),
        "name": doc.get("name"),
        "git_rev": ctx.get("git_rev"),
        "created_unix_ms": ctx.get("created_unix_ms"),
        "rates": manifest_rates(doc),
    }
    if doc.get("aggregate"):
        rec["aggregate"] = doc["aggregate"]
    digests = {
        j["tag"]: j["stat_digest"]
        for j in doc.get("jobs", [])
        if "tag" in j and "stat_digest" in j
    }
    if digests:
        rec["stat_digests"] = digests
    if doc.get("warnings"):
        rec["warnings"] = doc["warnings"]
    return rec


def load_history(path):
    rows = []
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"warning: {path}:{lineno}: unparseable row "
                      f"skipped", file=sys.stderr)
    return rows


def series(rows):
    """name -> chronological list of historical rates."""
    out = {}
    for row in rows:
        for name, rate in row.get("rates", {}).items():
            out.setdefault(name, []).append(float(rate))
    return out


def baseline_of(points):
    """Median of the last three points (fewer if history is short)."""
    tail = points[-3:]
    return statistics.median(tail) if tail else None


def load_floors(path):
    if not path or not os.path.exists(path):
        return {}
    with open(path) as f:
        floors = json.load(f)
    return {k: float(v) for k, v in floors.items()}


def cmd_append(args):
    os.makedirs(os.path.dirname(os.path.abspath(args.history)),
                exist_ok=True)
    with open(args.history, "a") as f:
        for path in args.manifests:
            rec = compact(load_manifest(path))
            f.write(json.dumps(rec, sort_keys=True) + "\n")
            print(f"appended {rec['kind']}/{rec['name']} "
                  f"({len(rec['rates'])} rate series) -> {args.history}")
    return 0


def check_rates(new_rates, hist, floors, tolerance):
    """Return list of failure strings; prints one line per series."""
    failures = []
    for name in sorted(new_rates):
        rate = new_rates[name]
        points = hist.get(name, [])
        base = baseline_of(points)
        floor = floors.get(name)
        status, detail = "ok", ""
        if floor is not None and rate < floor:
            status = "FLOOR"
            detail = f"below floor {floor / 1e6:.2f}"
            failures.append(f"{name}: {rate / 1e6:.2f} M/s under "
                            f"floor {floor / 1e6:.2f} M/s")
        if base is not None:
            ratio = rate / base
            detail = (f"median3 {base / 1e6:8.2f} "
                      f"({(ratio - 1.0) * 100:+6.2f}%)" +
                      (f"  {detail}" if detail else ""))
            if ratio < 1.0 - tolerance and status == "ok":
                status = "REGRESSION"
                failures.append(
                    f"{name}: {rate / 1e6:.2f} M/s is "
                    f"{(1.0 - ratio) * 100:.1f}% below the "
                    f"median-of-3 baseline {base / 1e6:.2f} M/s")
        elif status == "ok":
            detail = f"no history ({len(points)} points); not gated"
        print(f"  {name:42s} {rate / 1e6:8.2f} M/s  {detail}  {status}")
    return failures


def cmd_check(args):
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("TM_SIMRATE_TOLERANCE", "0.02"))
    floors_path = args.floors or os.path.join(
        os.path.dirname(os.path.abspath(args.history)), "floors.json")
    floors = load_floors(floors_path)
    hist = series(load_history(args.history))

    failures = []
    for path in args.manifests:
        doc = load_manifest(path)
        rates = manifest_rates(doc)
        print(f"{doc.get('kind')}/{doc.get('name')} ({path}):")
        if not rates:
            print("  no gateable rate series", file=sys.stderr)
            return 2
        failures += check_rates(rates, hist, floors, tolerance)

    if failures:
        print(f"perf-history gate FAILED (tolerance "
              f"{tolerance * 100:.0f}%):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"perf-history gate passed (tolerance {tolerance * 100:.0f}%)")
    return 0


def cmd_report(args):
    hist = series(load_history(args.history))
    if not hist:
        print(f"no history at {args.history}")
        return 0
    print(f"{'series':42s} {'points':>6s} {'latest':>10s} "
          f"{'median3':>10s} {'best':>10s}   (M items/s)")
    for name in sorted(hist):
        pts = hist[name]
        print(f"{name:42s} {len(pts):6d} {pts[-1] / 1e6:10.2f} "
              f"{baseline_of(pts) / 1e6:10.2f} {max(pts) / 1e6:10.2f}")
    return 0


def synthetic_manifest(name, rate):
    return {
        "schema": SCHEMA,
        "kind": "bench",
        "name": "simrate",
        "context": {"git_rev": "selftest", "created_unix_ms": 0},
        "benchmarks": [
            {"name": name, "run_type": "iteration",
             "items_per_second": rate},
        ],
    }


def selftest():
    import tempfile

    failures = []

    def expect(label, got, want):
        ok = got == want
        print(f"  {'ok' if ok else 'FAIL'}: {label} "
              f"(exit {got}, want {want})")
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory() as td:
        history = os.path.join(td, "history.jsonl")
        mpath = os.path.join(td, "m.json")
        ns = argparse.Namespace(history=history, manifests=[mpath],
                                tolerance=0.02, floors=None)

        # Seed three healthy points (98/100/102 M/s -> median 100).
        for rate in (98e6, 100e6, 102e6):
            with open(mpath, "w") as f:
                json.dump(synthetic_manifest("BM_Self", rate), f)
            cmd_append(ns)

        with open(mpath, "w") as f:
            json.dump(synthetic_manifest("BM_Self", 99.5e6), f)
        expect("healthy run passes", cmd_check(ns), 0)

        # Seeded synthetic regression: 30% below the median-of-3.
        with open(mpath, "w") as f:
            json.dump(synthetic_manifest("BM_Self", 70e6), f)
        expect("30% regression detected", cmd_check(ns), 1)

        # Median-of-3 noise handling: one slow historical outlier must
        # not drag the baseline down far enough to excuse it.
        with open(mpath, "w") as f:
            json.dump(synthetic_manifest("BM_Self", 70e6), f)
        cmd_append(ns)  # the outlier is now IN the history tail
        with open(mpath, "w") as f:
            json.dump(synthetic_manifest("BM_Self", 80e6), f)
        expect("outlier cannot excuse a slow run", cmd_check(ns), 1)

        # Per-benchmark floor: healthy vs history, but under its floor.
        floors = os.path.join(td, "floors.json")
        with open(floors, "w") as f:
            json.dump({"BM_Self": 150e6}, f)
        ns.floors = floors
        with open(mpath, "w") as f:
            json.dump(synthetic_manifest("BM_Self", 100e6), f)
        expect("floor violation detected", cmd_check(ns), 1)

    if failures:
        print(f"selftest FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("selftest passed")
    return 0


def main(argv):
    if "--selftest" in argv[1:]:
        return selftest()
    p = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    pa = sub.add_parser("append", help="append manifests to the ledger")
    pa.add_argument("manifests", nargs="+")
    pc = sub.add_parser("check", help="gate manifests against history")
    pc.add_argument("manifests", nargs="+")
    pc.add_argument("--tolerance", type=float, default=None,
                    help="relative slowdown tolerance (default 0.02 / "
                         "TM_SIMRATE_TOLERANCE)")
    pc.add_argument("--floors", default=None,
                    help="per-benchmark absolute floors JSON (default "
                         "floors.json next to the history file)")
    pr = sub.add_parser("report", help="summarize the ledger")
    for q in (pa, pc, pr):
        q.add_argument("--history", default=DEFAULT_HISTORY)

    args = p.parse_args(argv[1:])
    try:
        if args.cmd == "append":
            return cmd_append(args)
        if args.cmd == "check":
            return cmd_check(args)
        return cmd_report(args)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
