#!/usr/bin/env python3
"""tm-lint: project invariant checker for the tm3270 simulator.

Mechanizes the determinism, stat-accounting, and thread-safety rules
that every performance PR so far had to prove by hand (DESIGN.md §10).
Runs as the first stage of scripts/verify.sh; exits non-zero on any
finding.

Rules
-----
  D1  Determinism sources in src/:
      - any use of an unordered associative container must carry an
        inline ``tm-lint: allow(D1)`` annotation justifying that it is
        lookup-only (never iterated for output); iterating one
        (range-for, .begin()/.end()) is always an error;
      - pointer-keyed ordered containers (std::map<T*, ...>,
        std::set<T*>) are an error: their iteration order is the
        allocator's, not the program's;
      - rand()/srand()/std::random_device/time()/system_clock/
        gettimeofday/clock() are errors anywhere in src/ — simulation
        randomness must come from seeded engines, timestamps from the
        cycle counter.
  D2  TM_TRACE_EVENT argument lists must be side-effect-free: no
      ++/--, no assignment operators, no calls to mutating methods
      (inc/set/push*/pop*/insert/erase/clear/emplace*). Tracing-off
      must stay observation-only; the macro does not evaluate its
      arguments when the tracer is null.
  P1  TM_PROF_SCOPE argument lists must be side-effect-free, for the
      same reason as D2: the self-profiler (support/prof.hh) is
      observation-only, and its probes must be free to compile in
      while changing nothing about simulation results.
  S1  Stat accounting is structurally complete:
      - every counter name registered in src/ (StatGroup::handle/inc/
        set string literals, plus the fu_* FU-class family) must
        appear as a leaf name in tests/golden/golden_stats.txt or be
        explicitly allowlisted as registered-but-unexercised;
      - the cpu.stall.* breakdown is closed: the set of stall-child
        counters registered on stall groups must equal the set binding
        through Lsu::bindStallStats plus the front end's "icache", and
        must cover every cpu.stall.* leaf in the golden file.
  T1  No hidden shared mutable state in translation units linked into
      the sweep driver's worker path (all of src/): namespace-scope or
      function-local ``static`` variables and anonymous-namespace
      variables must be const/constexpr unless annotated
      ``tm-lint: allow(T1)`` (e.g. the mutex-guarded WarnSink pair in
      support/logging.cc).
  H1  No string-keyed StatGroup operations (handle/inc/set/get with a
      string-literal key) inside tick()/step() hot functions —
      interned StatHandles only.

Modes
-----
The checker is tokenizer-based and self-contained: it lexes C++ into
comments/strings/identifiers/punctuation with exact line numbers and
pattern-matches on the token stream, so it runs in any environment
with python3. When python bindings for libclang are importable AND
build/compile_commands.json exists, ``--mode auto`` (the default)
additionally runs an AST-backed pass for D1/T1 (variable declarations
with static storage duration, calls to banned functions); AST findings
are additive — the tokenizer verdict is never suppressed. ``--mode
tokenize`` forces the portable path (used by --selftest so the fixture
gate is environment-independent).

Suppressions
------------
An inline comment ``// tm-lint: allow(RULE[,RULE]) <reason>`` on the
offending line or the line directly above suppresses those rules for
that line; ``// tm-lint: allow-file(RULE) <reason>`` near the top of a
file suppresses a rule for the whole file. Every annotation is the
allowlist mechanism required by DESIGN.md §10 — the reason text is
mandatory by convention and enforced in review, not by the tool.

Usage
-----
  scripts/tm_lint.py                  lint src/ against the golden file
  scripts/tm_lint.py --selftest       run the fixture suite under
                                      tests/lint_fixtures/ (each MUST
                                      be flagged with its declared
                                      rules; clean fixtures MUST pass)
  scripts/tm_lint.py --list-rules     print rule IDs and summaries
  scripts/tm_lint.py FILE...          lint specific files (S1's
                                      cross-file closure checks only
                                      run on full-tree scans)
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = {
    "D1": "no nondeterminism sources (unordered iteration, pointer-keyed "
          "ordering, rand/time) in src/",
    "D2": "TM_TRACE_EVENT arguments must be side-effect-free",
    "P1": "TM_PROF_SCOPE arguments must be side-effect-free",
    "S1": "every registered stat counter is golden-covered; cpu.stall.* "
          "closed under Lsu::bindStallStats",
    "T1": "no non-const static / anonymous-namespace mutable state in "
          "worker-path translation units",
    "H1": "no string-keyed StatGroup lookups inside tick/step hot "
          "functions",
}

# S1: counters that are registered in src/ but not exercised by any
# golden workload/config. Each entry documents why golden coverage is
# (currently) impossible; removing an entry is how you demand coverage.
S1_REGISTERED_UNEXERCISED = {
    # LSU paths no Table-5 kernel reaches with the golden configs:
    "load_validity_misses":  "needs a load hitting an allocated line "
                             "with the requested bytes invalid",
    "store_line_crossings":  "kernels issue aligned stores only",
    "cwb_full_stalls":       "golden configs drain the 8-deep CWB "
                             "faster than the kernels fill it",
    "cwb_full_stall_cycles": "same condition as cwb_full_stalls",
    # Stall causes that exist as registrations but never fire in the
    # golden suite:
    "copyback":              "cache-write-buffer-full stall never "
                             "taken by the golden suite (see "
                             "cwb_full_stalls)",
    # FU classes no golden kernel issues ops on:
    "fu_falu":               "no float kernels in the golden suite",
    "fu_fcomp":              "no float kernels in the golden suite",
    "fu_ftough":             "no float kernels in the golden suite",
    "fu_superld":            "golden kernels use plain loads",
    "fu_cabac":              "CABAC golden runs use the table path, "
                             "not the FU-class counter",
    "fu_none":               "sentinel for decode errors; counting it "
                             "would be a bug",
    # Tracer-local bookkeeping (trace/trace.hh): the "trace" group is
    # deliberately never attached to a System's stat groups, because
    # traced and untraced runs must stay bit-identical in every golden
    # dump; it is published only through run manifests.
    "events_recorded":       "tracer-local group, excluded from golden "
                             "dumps by design (trace bit-identity gate)",
    "events_dropped":        "tracer-local group, excluded from golden "
                             "dumps by design (trace bit-identity gate)",
}

# T1 scans every TU in src/ because every subsystem library is linked
# into the sweep driver's workers (src/driver pulls in core, lsu,
# cache, memory, workloads, ...). If a library ever becomes
# main-thread-only, scope the scan here.
BANNED_CALLS_D1 = {
    "rand", "srand", "random_device", "gettimeofday", "system_clock",
}
MUTATOR_CALLS_D2 = {
    "inc", "set", "push", "push_back", "push_front", "pop", "pop_back",
    "pop_front", "insert", "erase", "clear", "emplace", "emplace_back",
    "emplace_front", "reset", "record",
}
UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}
ORDERED_ASSOC_TYPES = {"map", "set", "multimap", "multiset"}
ASSIGN_OPS = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
}
HOT_FUNCTIONS = {"tick", "step"}
STAT_STRING_METHODS = {"handle", "inc", "set", "get"}


# --------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstring>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<string>"(?:\\.|[^"\\\n])*")
    | (?P<char>'(?:\\.|[^'\\\n])+')
    | (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[eEpP][+-]|[\w.])*)
    | (?P<punct><<=|>>=|\.\.\.|::|\+\+|--|->\*|->|<<|>>|&&|\|\||
        [-+*/%&|^!=<>]=|[{}()\[\];,<>=+\-*/%&|^~!?.:#@\\])
    """,
    re.VERBOSE | re.DOTALL,
)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Tok({self.kind},{self.text!r},{self.line})"


def lex(text):
    """Tokenize C++ source. Returns (code_tokens, comments) where
    comments is a list of (line, text) and code_tokens excludes
    comments but keeps strings/chars as single tokens."""
    code, comments = [], []
    for m in TOKEN_RE.finditer(text):
        kind = m.lastgroup
        if kind == "delim":
            continue
        tok_text = m.group(0)
        line = text.count("\n", 0, m.start()) + 1
        if kind == "comment":
            comments.append((line, tok_text))
            # Multi-line block comments still only annotate their first
            # line; allow() placement conventions use line comments.
        else:
            if kind == "rawstring":
                kind = "string"
            code.append(Tok(kind, tok_text, line))
    return code, comments


ALLOW_RE = re.compile(r"tm-lint:\s*allow\(([A-Z0-9,\s]+)\)")
ALLOW_FILE_RE = re.compile(r"tm-lint:\s*allow-file\(([A-Z0-9,\s]+)\)")
FIXTURE_EXPECT_RE = re.compile(
    r"tm-lint-fixture:\s*expect\s+([A-Z0-9\s,]+?)\s*$", re.MULTILINE)


def parse_suppressions(comments):
    """Map rule -> set of suppressed lines; file-wide rules separately.

    An annotation suppresses its own line, every following line of the
    same contiguous comment run, and the first code line after the
    run — so a multi-line justification comment above the offending
    declaration covers it."""
    comment_lines = set()
    for line, text in comments:
        comment_lines.update(range(line, line + text.count("\n") + 1))
    by_line = {}
    file_wide = set()
    for line, text in comments:
        for m in ALLOW_RE.finditer(text):
            last = line + text.count("\n")
            while last + 1 in comment_lines:
                last += 1
            covered = set(range(line, last + 2))
            for rule in re.split(r"[,\s]+", m.group(1).strip()):
                if rule:
                    by_line.setdefault(rule, set()).update(covered)
        for m in ALLOW_FILE_RE.finditer(text):
            for rule in re.split(r"[,\s]+", m.group(1).strip()):
                if rule:
                    file_wide.add(rule)
    return by_line, file_wide


class Finding:
    __slots__ = ("path", "line", "rule", "msg")

    def __init__(self, path, line, rule, msg):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self):
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.msg}"


def match_paren(toks, i):
    """toks[i] is '('; return index of matching ')' (or len(toks))."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


def match_brace(toks, i):
    """toks[i] is '{'; return index of matching '}' (or len(toks))."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


def match_angle(toks, i):
    """toks[i] is '<' opening a template argument list; return the
    index of the matching '>' or len(toks). Tracks (), [], {} and
    nested <> and gives up at ';' (not a template after all)."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t in "([{":
            j = {"(": match_paren, "[": match_bracket,
                 "{": match_brace}[t](toks, i)
            i = j
        elif t == "<":
            depth += 1
        elif t in (">", ">>"):
            depth -= 1 if t == ">" else 2
            if depth <= 0:
                return i
        elif t == ";":
            return len(toks)
        i += 1
    return len(toks)


def match_bracket(toks, i):
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "[":
            depth += 1
        elif t == "]":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


# --------------------------------------------------------------------
# Per-file checks (D1, D2, T1, H1 + S1 registration collection)
# --------------------------------------------------------------------

class FileLint:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.toks, comments = lex(text)
        self.suppress, self.suppress_file = parse_suppressions(comments)
        self.findings = []
        # S1 collection results (consumed by the tree-level check):
        self.registered_stats = []      # (name, line)
        self.stall_registrations = []   # (name, line, via_bind)

    def flag(self, line, rule, msg):
        if rule in self.suppress_file:
            return
        if line in self.suppress.get(rule, ()):
            return
        self.findings.append(Finding(self.path, line, rule, msg))

    def run(self):
        self.check_d1()
        self.check_observer_macro("TM_TRACE_EVENT", "D2")
        self.check_observer_macro("TM_PROF_SCOPE", "P1")
        self.check_t1()
        self.check_h1()
        self.collect_s1()
        return self.findings

    # ---------------- D1 ----------------

    def check_d1(self):
        toks = self.toks
        unordered_vars = set()
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prv = toks[i - 1].text if i > 0 else ""
            if t.text in UNORDERED_TYPES and nxt == "<":
                self.flag(
                    t.line, "D1",
                    f"use of std::{t.text}: unordered containers are "
                    "lookup-only in this codebase; annotate "
                    "'// tm-lint: allow(D1) <why it is never iterated "
                    "for output>' if that holds")
                # Track the declared variable name so iteration over it
                # is flagged even when the declaration was allowlisted.
                end = match_angle(toks, i + 1)
                j = end + 1
                # Skip references/pointers and nested name pieces.
                while j < len(toks) and toks[j].text in ("&", "*", "::"):
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    unordered_vars.add(toks[j].text)
            elif t.text in BANNED_CALLS_D1:
                if t.text in ("rand", "srand", "gettimeofday"):
                    if nxt != "(" or prv in (".", "->"):
                        continue  # member named rand, or not a call
                self.flag(
                    t.line, "D1",
                    f"'{t.text}' is a nondeterminism source; use a "
                    "seeded engine / the cycle counter instead")
            elif t.text == "time" and nxt == "(" and prv == "::":
                # std::time(...) — wall-clock in simulation output.
                self.flag(t.line, "D1",
                          "'std::time' is a nondeterminism source")
            elif t.text in ORDERED_ASSOC_TYPES and nxt == "<" and \
                    prv == "::":
                # std::map< / std::set<: reject pointer-typed keys.
                end = match_angle(toks, i + 1)
                key = []
                depth = 0
                for k in range(i + 2, end):
                    tt = toks[k].text
                    if tt == "<":
                        depth += 1
                    elif tt in (">", ">>"):
                        depth -= 1 if tt == ">" else 2
                    elif tt == "," and depth == 0:
                        break
                    key.append(tt)
                if key and key[-1] == "*":
                    self.flag(
                        t.line, "D1",
                        f"std::{t.text} keyed by a raw pointer orders "
                        "by allocation address — nondeterministic "
                        "iteration order")
        # Iteration over unordered-typed locals/members.
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in unordered_vars:
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prv = toks[i - 1].text if i > 0 else ""
            if prv == ":" and i >= 2 and toks[i - 2].text != ":":
                # `for (auto &x : container)` — ':' not part of '::'.
                self.flag(t.line, "D1",
                          f"range-for over unordered container "
                          f"'{t.text}': iteration order is "
                          "nondeterministic")
            elif nxt in (".", "->") and i + 2 < len(toks) and \
                    toks[i + 2].text in ("begin", "end", "cbegin",
                                         "cend"):
                self.flag(t.line, "D1",
                          f"iterator over unordered container "
                          f"'{t.text}': iteration order is "
                          "nondeterministic")

    # ---------------- D2 / P1 ----------------

    def check_observer_macro(self, macro, rule):
        """D2 (TM_TRACE_EVENT) and P1 (TM_PROF_SCOPE) share one
        mechanic: the macro's arguments may be evaluated zero times
        (tracer null / profiler detached), so they must carry no side
        effects."""
        toks = self.toks
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "id" and t.text == macro and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                # Skip the macro's own definition (#define ...).
                if i > 0 and toks[i - 1].text == "define":
                    i += 1
                    continue
                end = match_paren(toks, i + 1)
                self.check_observer_args(toks[i + 2:end], macro, rule)
                i = end
            i += 1

    def check_observer_args(self, args, macro, rule):
        for j, t in enumerate(args):
            if t.text in ("++", "--"):
                self.flag(t.line, rule,
                          f"'{t.text}' inside {macro} arguments:"
                          " the macro does not evaluate its arguments "
                          "when the observer is off")
            elif t.text in ASSIGN_OPS and t.kind == "punct":
                self.flag(t.line, rule,
                          f"assignment '{t.text}' inside {macro}"
                          " arguments must be side-effect-free")
            elif t.kind == "id" and t.text in MUTATOR_CALLS_D2 and \
                    j + 1 < len(args) and args[j + 1].text == "(" and \
                    j > 0 and args[j - 1].text in (".", "->"):
                self.flag(t.line, rule,
                          f"call to mutating method '{t.text}()' inside"
                          f" {macro} arguments")

    # ---------------- T1 ----------------

    def check_t1(self):
        toks = self.toks
        # Scope stack entries: 'ns' | 'class' | 'fn' | 'init'.
        stack = []
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            txt = t.text
            if txt == "{":
                stack.append(self.classify_brace(i))
                i += 1
                continue
            if txt == "}":
                if stack:
                    stack.pop()
                i += 1
                continue
            if t.kind == "id" and txt == "static":
                nxt = toks[i + 1].text if i + 1 < n else ""
                if nxt in ("_assert", "cast"):
                    i += 1
                    continue
                scope = stack[-1] if stack else "file"
                if scope in ("class", "init"):
                    i += 1
                    continue
                i = self.check_t1_decl(i, scope)
                continue
            if t.kind == "id" and txt == "namespace" and i + 1 < n and \
                    toks[i + 1].text == "{":
                # Anonymous namespace in a TU: every variable here is
                # shared mutable state unless const.
                close = match_brace(toks, i + 1)
                self.check_t1_anon_ns(i + 2, close)
                # Fall through: the '{' will be classified normally.
            i += 1

    def classify_brace(self, i):
        """Classify the brace at toks[i] from its left context."""
        toks = self.toks
        j = i - 1
        # Skip over noexcept/const/override/trailing-return clutter.
        while j >= 0 and toks[j].kind == "id" and toks[j].text in (
                "noexcept", "const", "override", "final", "mutable",
                "constexpr"):
            j -= 1
        if j < 0:
            return "fn"
        txt = toks[j].text
        if txt == ")":
            return "fn"       # function body (or if/for/while block)
        if txt in ("else", "do", "try", ":"):
            return "fn"
        if txt in ("=", ",", "(", "{", "return"):
            return "init"     # braced initializer / aggregate
        k = j
        while k >= 0 and (toks[k].kind in ("id", "string") or
                          toks[k].text in ("::", "<", ">", ",")):
            if toks[k].kind == "id" and toks[k].text in (
                    "class", "struct", "union", "enum"):
                return "class"
            if toks[k].kind == "id" and toks[k].text == "namespace":
                return "ns"
            if toks[k].text in (";", "}", "{"):
                break
            k -= 1
        return "fn"

    def check_t1_decl(self, i, scope):
        """toks[i] is 'static' at namespace or function scope. Scan the
        declaration; flag non-const variables. Returns resume index."""
        toks = self.toks
        n = len(toks)
        j = i + 1
        has_const = False
        is_function = False
        name = None
        depth_angle = 0
        while j < n:
            t = toks[j]
            txt = t.text
            if txt == "<":
                end = match_angle(toks, j)
                j = end + 1
                continue
            if txt in (";", "{", "="):
                break
            if t.kind == "id" and txt in ("const", "constexpr",
                                          "constinit", "thread_local"):
                has_const = True
            elif t.kind == "id":
                name = txt
                if j + 1 < n and toks[j + 1].text == "(":
                    # `static T name(...)`: a function declaration or
                    # definition, unless this is a ctor-call
                    # initializer — at namespace/function scope treat
                    # ids followed by '(' after another id as function
                    # declarators only if a type id preceded.
                    is_function = True
                    j = match_paren(toks, j + 1)
            elif txt == "[":
                j = match_bracket(toks, j)
            j += 1
        if not has_const and not is_function and name:
            self.flag(
                toks[i].line, "T1",
                f"non-const {'function-local' if scope == 'fn' else 'namespace-scope'}"
                f" 'static {name}' is shared mutable state on the "
                "sweep worker path; make it const/constexpr or "
                "annotate 'tm-lint: allow(T1) <synchronization story>'")
        # Resume after the declaration terminator.
        while j < n and toks[j].text not in (";", "{"):
            j += 1
        if j < n and toks[j].text == "{":
            return j  # let the main loop classify the brace
        return j + 1

    def check_t1_anon_ns(self, start, close):
        """Scan depth-1 statements of an anonymous namespace body for
        non-const, non-static variable declarations (static ones are
        caught by check_t1_decl)."""
        toks = self.toks
        j = start
        while j < close:
            stmt_start = j
            has_const = False
            has_static = False
            is_definition = False   # function/class/using/etc.
            name = None
            while j < close:
                t = toks[j]
                txt = t.text
                if txt == "<":
                    j = match_angle(toks, j) + 1
                    continue
                if txt == ";":
                    j += 1
                    break
                if txt == "{":
                    j = match_brace(toks, j) + 1
                    # struct {...} x; keeps scanning; function bodies
                    # terminate the statement at the closing brace.
                    if is_definition:
                        if j < close and toks[j].text == ";":
                            j += 1
                        break
                    continue
                if t.kind == "id":
                    if txt in ("const", "constexpr", "constinit"):
                        has_const = True
                    elif txt == "static":
                        has_static = True
                    elif txt in ("using", "typedef", "struct", "class",
                                 "enum", "union", "template",
                                 "static_assert", "namespace", "friend",
                                 "extern"):
                        is_definition = True
                    else:
                        name = txt
                        if j + 1 < close and toks[j + 1].text == "(":
                            is_definition = True  # function
                            j = match_paren(toks, j + 1)
                elif txt == "=":
                    # Initializer: stop interpreting ids as declarators.
                    while j < close and toks[j].text != ";":
                        if toks[j].text == "{":
                            j = match_brace(toks, j)
                        j += 1
                    j += 1
                    break
                j += 1
            if name and not (has_const or has_static or is_definition):
                self.flag(
                    toks[stmt_start].line, "T1",
                    f"anonymous-namespace variable '{name}' is shared "
                    "mutable state on the sweep worker path; make it "
                    "const or annotate 'tm-lint: allow(T1) "
                    "<synchronization story>'")
            if j <= stmt_start:
                j = stmt_start + 1

    # ---------------- H1 ----------------

    def check_h1(self):
        toks = self.toks
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in HOT_FUNCTIONS and \
                    i + 1 < n and toks[i + 1].text == "(":
                # Require a definition: ( params ) [const noexcept] {
                close = match_paren(toks, i + 1)
                j = close + 1
                while j < n and toks[j].kind == "id" and toks[j].text in (
                        "const", "noexcept", "override", "final"):
                    j += 1
                if j < n and toks[j].text == "{":
                    body_end = match_brace(toks, j)
                    self.check_h1_body(toks[j + 1:body_end], t.text)
                    i = body_end
            i += 1

    def check_h1_body(self, body, fn_name):
        for j, t in enumerate(body):
            if t.kind == "id" and t.text in STAT_STRING_METHODS and \
                    j > 0 and body[j - 1].text in (".", "->") and \
                    j + 2 < len(body) and body[j + 1].text == "(" and \
                    body[j + 2].kind == "string":
                self.flag(
                    t.line, "H1",
                    f"string-keyed StatGroup::{t.text}({body[j + 2].text})"
                    f" inside hot function '{fn_name}()': intern a "
                    "StatHandle at construction instead")

    # ---------------- S1 collection ----------------

    def collect_s1(self):
        toks = self.toks
        in_bind = None  # (end_index,) while inside bindStallStats body
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text == "bindStallStats" and \
                    i + 1 < n and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                j = close + 1
                if j < n and toks[j].text == "{":
                    in_bind = match_brace(toks, j)
            if in_bind is not None and i > in_bind:
                in_bind = None
            if t.kind == "id" and t.text in ("handle", "inc", "set") and \
                    i > 0 and toks[i - 1].text in (".", "->") and \
                    i + 2 < n and toks[i + 1].text == "(" and \
                    toks[i + 2].kind == "string":
                name = toks[i + 2].text[1:-1]
                self.registered_stats.append((name, t.line))
                recv = toks[i - 2].text if i >= 2 else ""
                if in_bind is not None or "stall" in recv.lower():
                    self.registered_stats.pop()
                    self.stall_registrations.append(
                        (name, t.line, in_bind is not None))
            elif t.kind == "string":
                name = t.text[1:-1]
                if re.fullmatch(r"fu_\w+", name):
                    # The FU-class counter family (fuStatName tables).
                    self.registered_stats.append((name, t.line))
            i += 1


# --------------------------------------------------------------------
# Tree-level S1 check
# --------------------------------------------------------------------

def load_golden(golden_path):
    """Return (leaf_names, stall_leaves) from golden_stats.txt."""
    leaves, stall = set(), set()
    with open(golden_path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("==="):
                continue
            stat = line.split()[0]
            if "." not in stat:
                continue
            leaves.add(stat.rsplit(".", 1)[1])
            m = re.match(r"^\w+\.stall\.(\w+)$", stat)
            if m:
                stall.add(m.group(1))
    return leaves, stall


def check_s1(file_lints, golden_path, full_tree):
    findings = []
    leaves, golden_stall = load_golden(golden_path)

    # Part 1: every registered counter appears in golden or is
    # explicitly allowlisted as registered-but-unexercised.
    for fl in file_lints:
        for name, line in fl.registered_stats:
            if name in leaves or name in golden_stall:
                continue
            if name in S1_REGISTERED_UNEXERCISED:
                continue
            if "S1" in fl.suppress_file or \
                    line in fl.suppress.get("S1", ()):
                continue
            findings.append(Finding(
                fl.path, line, "S1",
                f"counter '{name}' is registered but appears nowhere "
                f"in {os.path.relpath(golden_path, REPO)}; extend the "
                "golden suite to exercise it or add it to "
                "S1_REGISTERED_UNEXERCISED with a justification"))

    # Part 2 (full-tree scans only): the stall breakdown is closed.
    if full_tree:
        bind_names, other_names = set(), set()
        sites = {}
        for fl in file_lints:
            for name, line, via_bind in fl.stall_registrations:
                (bind_names if via_bind else other_names).add(name)
                sites.setdefault(name, (fl.path, line))
        registered = bind_names | other_names
        for leaf in sorted(golden_stall - registered):
            findings.append(Finding(
                golden_path, 1, "S1",
                f"golden stat 'cpu.stall.{leaf}' has no registration "
                "site on any stall group in src/"))
        for name in sorted(registered - golden_stall -
                           set(S1_REGISTERED_UNEXERCISED)):
            path, line = sites[name]
            findings.append(Finding(
                path, line, "S1",
                f"stall counter '{name}' is registered on a stall "
                "group but never appears as cpu.stall.* in the golden "
                "file — the exhaustive sum-equals-stall_cycles family "
                "would silently miss it"))
        if full_tree and not bind_names:
            findings.append(Finding(
                golden_path, 1, "S1",
                "found no stall-counter registrations inside "
                "Lsu::bindStallStats — the cpu.stall.* rebinding "
                "contract (DESIGN.md §9) has no registration sites"))
    return findings


# --------------------------------------------------------------------
# Optional libclang backend (additive; auto mode only)
# --------------------------------------------------------------------

def try_clang_findings(src_files):
    """AST-backed D1/T1 pass. Returns a list of findings, or None when
    libclang / compile_commands.json is unavailable. Never raises; the
    tokenizer verdict stands on its own."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    cc_path = os.path.join(REPO, "build", "compile_commands.json")
    if not os.path.exists(cc_path):
        return None
    try:
        db = cindex.CompilationDatabase.fromDirectory(
            os.path.dirname(cc_path))
        index = cindex.Index.create()
    except Exception:
        return None
    findings = []
    wanted = {os.path.abspath(p) for p in src_files}
    try:
        for cmd in db.getAllCompileCommands():
            path = os.path.abspath(os.path.join(cmd.directory,
                                                cmd.filename))
            if path not in wanted:
                continue
            args = [a for a in cmd.arguments][1:]
            args = [a for a in args if a not in ("-c", cmd.filename)]
            try:
                tu = index.parse(path, args=args)
            except Exception:
                continue
            for cur in tu.cursor.walk_preorder():
                if cur.location.file is None or \
                        os.path.abspath(cur.location.file.name) != path:
                    continue
                if cur.kind == cindex.CursorKind.VAR_DECL and \
                        cur.storage_class == cindex.StorageClass.STATIC:
                    qt = cur.type
                    if not qt.is_const_qualified():
                        findings.append(Finding(
                            path, cur.location.line, "T1",
                            f"[clang] static non-const variable "
                            f"'{cur.spelling}'"))
                if cur.kind == cindex.CursorKind.DECL_REF_EXPR and \
                        cur.spelling in BANNED_CALLS_D1:
                    findings.append(Finding(
                        path, cur.location.line, "D1",
                        f"[clang] reference to banned symbol "
                        f"'{cur.spelling}'"))
    except Exception:
        return findings
    return findings


# --------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------

SRC_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")


def collect_src_files(src_root):
    out = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for fn in sorted(filenames):
            if fn.endswith(SRC_EXTS):
                out.append(os.path.join(dirpath, fn))
    return sorted(out)


def lint_files(paths, golden_path, full_tree, mode):
    file_lints = []
    findings = []
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"tm-lint: cannot read {path}: {e}", file=sys.stderr)
            return None
        fl = FileLint(path, text)
        findings.extend(fl.run())
        file_lints.append(fl)
    if os.path.exists(golden_path):
        findings.extend(check_s1(file_lints, golden_path, full_tree))
    elif full_tree:
        print(f"tm-lint: golden file missing: {golden_path}",
              file=sys.stderr)
        return None
    if mode == "auto":
        clang_extra = try_clang_findings(paths)
        if clang_extra:
            # Deduplicate against tokenizer findings on (file,line,rule)
            seen = {(f.path, f.line, f.rule) for f in findings}
            findings.extend(f for f in clang_extra
                            if (f.path, f.line, f.rule) not in seen)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_selftest(fixtures_dir, golden_path):
    """Every fixture declares the rules it must trip via a
    'tm-lint-fixture: expect D1 ...' header (or 'expect clean'). The
    suite fails if any declared rule does not fire, or if a clean
    fixture trips anything."""
    paths = sorted(
        os.path.join(fixtures_dir, fn)
        for fn in os.listdir(fixtures_dir)
        if fn.endswith(SRC_EXTS))
    if not paths:
        print(f"tm-lint selftest: no fixtures in {fixtures_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        m = FIXTURE_EXPECT_RE.search(text)
        if not m:
            print(f"FAIL {os.path.basename(path)}: no "
                  "'tm-lint-fixture: expect ...' header")
            failures += 1
            continue
        expected = set(re.split(r"[,\s]+", m.group(1).strip())) - {""}
        findings = lint_files([path], golden_path, full_tree=False,
                              mode="tokenize")
        fired = {f.rule for f in findings} if findings else set()
        if expected == {"CLEAN"}:
            ok = not fired
            detail = f"unexpected findings: {sorted(fired)}" if fired \
                else "clean as declared"
        else:
            missing = expected - fired
            ok = not missing
            detail = (f"declared rules did not fire: {sorted(missing)} "
                      f"(fired: {sorted(fired)})") if missing else \
                f"fired {sorted(fired & expected)}"
        status = "ok  " if ok else "FAIL"
        print(f"{status} {os.path.basename(path)}: {detail}")
        if not ok:
            failures += 1
            for f in findings or []:
                print(f"       {f}")
    total = len(paths)
    print(f"tm-lint selftest: {total - failures}/{total} fixtures "
          "behaved as declared")
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="tm_lint.py",
        description="tm3270 project invariant checker (DESIGN.md §10)")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint (default: all of src/)")
    ap.add_argument("--mode", choices=("auto", "tokenize", "clang"),
                    default="auto",
                    help="auto: tokenizer + libclang when available; "
                         "tokenize: portable tokenizer only")
    ap.add_argument("--golden",
                    default=os.path.join(REPO, "tests", "golden",
                                         "golden_stats.txt"),
                    help="golden stats file for rule S1")
    ap.add_argument("--src", default=os.path.join(REPO, "src"),
                    help="source tree to scan")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture suite under "
                         "tests/lint_fixtures/")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the success summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0

    if args.selftest:
        fixtures = os.path.join(REPO, "tests", "lint_fixtures")
        return run_selftest(fixtures, args.golden)

    if args.mode == "clang":
        # Hard-require the AST backend (diagnostic use only; the
        # shipped gate always includes the tokenizer pass).
        try:
            import clang.cindex  # noqa: F401
        except Exception:
            print("tm-lint: --mode clang requires python3 libclang "
                  "bindings (python3-clang)", file=sys.stderr)
            return 2

    if args.files:
        paths = [os.path.abspath(p) for p in args.files]
        full_tree = False
    else:
        paths = collect_src_files(args.src)
        full_tree = True
    if not paths:
        print("tm-lint: nothing to lint", file=sys.stderr)
        return 2

    findings = lint_files(paths, args.golden, full_tree, args.mode)
    if findings is None:
        return 2
    for f in findings:
        print(f)
    if findings:
        print(f"tm-lint: {len(findings)} finding(s) across "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"tm-lint: OK ({len(paths)} files, rules "
              f"{', '.join(sorted(RULES))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
