/**
 * @file
 * Bus interface unit (BIU): the processor's interface to the rest of
 * the SoC (paper §3). Performs the asynchronous clock-domain transfer
 * between the CPU clock and the memory clock and serializes line
 * refills, copy-backs and prefetches on the off-chip bus. Demand
 * traffic has priority over prefetch traffic: a prefetch is only
 * started when the bus is idle.
 */

#ifndef TM3270_MEMORY_BIU_HH
#define TM3270_MEMORY_BIU_HH

#include "memory/main_memory.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270
{

namespace trace
{
class Tracer;
}

/** Bus interface unit with a single shared off-chip bus. */
class Biu
{
  public:
    /**
     * @param mem        the off-chip memory (owned by the system)
     * @param cpu_mhz    CPU clock frequency
     */
    Biu(MainMemory &mem, uint32_t cpu_mhz);

    /** Change the CPU frequency (dynamic voltage/frequency scaling). */
    void setCpuFreq(uint32_t mhz) { cpuMHz = mhz; }
    uint32_t cpuFreq() const { return cpuMHz; }

    /**
     * Blocking demand line read at CPU cycle @p now. Returns the CPU
     * cycle at which the refill data is available.
     */
    Cycles demandRead(Addr addr, unsigned bytes, Cycles now);

    /**
     * Non-blocking write (copy-back drain). Occupies the bus; the
     * caller does not wait. Returns the completion cycle.
     */
    Cycles asyncWrite(Addr addr, unsigned bytes, Cycles now);

    /**
     * Non-blocking prefetch read. Started only when the bus is idle at
     * @p now; returns 0 when the bus is busy (prefetch must retry).
     * Otherwise returns the CPU cycle at which the line is available.
     */
    Cycles prefetchRead(Addr addr, unsigned bytes, Cycles now);

    /** CPU cycle until which the bus is occupied. */
    Cycles busyUntil() const { return busBusyUntil; }

    void reset();

    /** Attach/detach the cycle-level event tracer (null: off). */
    void setTracer(trace::Tracer *t) { tracer = t; }

    StatGroup stats{"biu"};

  private:
    MainMemory &mem;
    uint32_t cpuMHz;
    Cycles busBusyUntil = 0;
    trace::Tracer *tracer = nullptr;

    // Interned counters for the per-transaction hot path.
    StatHandle hDemandReads = stats.handle("demand_reads");
    StatHandle hDemandReadBytes = stats.handle("demand_read_bytes");
    StatHandle hBusWaitCycles = stats.handle("bus_wait_cycles");
    StatHandle hWrites = stats.handle("writes");
    StatHandle hWriteBytes = stats.handle("write_bytes");
    StatHandle hPrefetchReads = stats.handle("prefetch_reads");
    StatHandle hPrefetchReadBytes = stats.handle("prefetch_read_bytes");

    Cycles toCpuCycles(Cycles mem_cycles) const;
};

} // namespace tm3270

#endif // TM3270_MEMORY_BIU_HH
