#include "memory/main_memory.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "support/logging.hh"
#include "trace/trace.hh"

namespace tm3270
{

MainMemory::MainMemory(size_t size, DdrConfig cfg_)
    : store(size, 0), cfg(cfg_), openRow(cfg_.numBanks, -1)
{
}

void
MainMemory::read(Addr addr, uint8_t *out, size_t len) const
{
    tm_assert(size_t(addr) + len <= store.size(),
              "memory read out of bounds: addr 0x%08x len %zu", addr, len);
    std::memcpy(out, store.data() + addr, len);
}

void
MainMemory::write(Addr addr, const uint8_t *data, size_t len,
                  const uint8_t *mask)
{
    tm_assert(size_t(addr) + len <= store.size(),
              "memory write out of bounds: addr 0x%08x len %zu", addr, len);
    if (!mask) {
        std::memcpy(store.data() + addr, data, len);
        return;
    }
    for (size_t i = 0; i < len; ++i) {
        if (mask[i / 8] & (1u << (i % 8)))
            store[addr + i] = data[i];
    }
}

void
MainMemory::writeMasked(Addr addr, const uint8_t *data, size_t len,
                        const uint64_t *mask_words)
{
    tm_assert(size_t(addr) + len <= store.size(),
              "memory write out of bounds: addr 0x%08x len %zu", addr, len);
    for (size_t w = 0; w * 64 < len; ++w) {
        size_t base = w * 64;
        size_t n = std::min<size_t>(64, len - base);
        uint64_t full =
            n == 64 ? ~uint64_t(0) : (uint64_t(1) << n) - 1;
        uint64_t m = mask_words[w] & full;
        if (m == full) {
            std::memcpy(store.data() + addr + base, data + base, n);
        } else {
            while (m) {
                unsigned i = unsigned(std::countr_zero(m));
                store[addr + base + i] = data[base + i];
                m &= m - 1;
            }
        }
    }
}

uint8_t
MainMemory::byteAt(Addr addr) const
{
    tm_assert(addr < store.size(), "byteAt out of bounds 0x%08x", addr);
    return store[addr];
}

void
MainMemory::setByte(Addr addr, uint8_t v)
{
    tm_assert(addr < store.size(), "setByte out of bounds 0x%08x", addr);
    store[addr] = v;
}

unsigned
MainMemory::bankOf(Addr addr) const
{
    // Cache-line interleaving across banks.
    return (addr >> 7) % cfg.numBanks;
}

int64_t
MainMemory::rowOf(Addr addr) const
{
    return addr >> cfg.rowBytesLog2;
}

Cycles
MainMemory::transactionCycles(Addr addr, unsigned bytes, Cycles cpu_now)
{
    unsigned bank = bankOf(addr);
    int64_t row = rowOf(addr);

    Cycles cyc = cfg.tCtl + cfg.tCas;
    if (openRow[bank] != row) {
        cyc += (openRow[bank] >= 0 ? cfg.tRp : 0) + cfg.tRcd;
        openRow[bank] = row;
        hRowMisses.inc();
        TM_TRACE_EVENT(tracer, trace::Ev::DramRowMiss, cpu_now, 0, addr,
                       bank);
    } else {
        hRowHits.inc();
        TM_TRACE_EVENT(tracer, trace::Ev::DramRowHit, cpu_now, 0, addr,
                       bank);
    }
    cyc += (bytes + cfg.busBytes - 1) / cfg.busBytes;
    hTransactions.inc();
    hBytes.inc(bytes);
    return cyc;
}

void
MainMemory::resetTiming()
{
    std::fill(openRow.begin(), openRow.end(), -1);
}

} // namespace tm3270
