/**
 * @file
 * Off-chip DDR SDRAM model: functional byte storage plus a bank/row
 * timing model. The paper's evaluation uses a 32-bit DDR SDRAM at
 * 200 MHz (§6); timing here is expressed in *memory* clock cycles and
 * converted to CPU cycles by the bus interface unit.
 */

#ifndef TM3270_MEMORY_MAIN_MEMORY_HH
#define TM3270_MEMORY_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270
{

namespace trace
{
class Tracer;
}

/** DDR SDRAM timing and geometry parameters. */
struct DdrConfig
{
    uint32_t freqMHz = 200;      ///< memory clock (DDR: 2 transfers/clock)
    unsigned busBytes = 8;       ///< bytes per memory clock (32-bit DDR)
    unsigned numBanks = 4;
    unsigned rowBytesLog2 = 12;  ///< 4 KByte rows
    unsigned tRp = 3;            ///< precharge
    unsigned tRcd = 3;           ///< row activate to column
    unsigned tCas = 3;           ///< column access
    unsigned tCtl = 4;           ///< controller/SoC interconnect overhead
};

/**
 * Functional DDR memory with open-row timing.
 *
 * Storage is a flat array; reads/writes are immediate (timing is
 * accounted separately by transactionCycles()). Writes support a byte
 * mask: the TM3270 SoC bus protocol transfers cache lines with
 * byte-validity indicators (paper §4.1).
 */
class MainMemory
{
  public:
    MainMemory(size_t size, DdrConfig cfg = DdrConfig());

    size_t size() const { return store.size(); }
    const DdrConfig &config() const { return cfg; }

    /** Functional read. */
    void read(Addr addr, uint8_t *out, size_t len) const;

    /** Functional write with optional byte mask (1 bit per byte). */
    void write(Addr addr, const uint8_t *data, size_t len,
               const uint8_t *mask = nullptr);

    /**
     * Functional write with a packed 64-bit-word byte mask (bit i of
     * word i/64 validates byte i), the representation the cache keeps
     * per line: copy-backs of fully-valid lines degrade to a single
     * memcpy, sparse masks to one store per set bit.
     */
    void writeMasked(Addr addr, const uint8_t *data, size_t len,
                     const uint64_t *mask_words);

    uint8_t byteAt(Addr addr) const;
    void setByte(Addr addr, uint8_t v);

    /**
     * Timing for one burst transaction of @p bytes at @p addr, in
     * memory clock cycles, updating the open-row state. @p cpu_now
     * timestamps the bank-activity trace event when a tracer is
     * attached (the DRAM has no clock of its own; the BIU passes the
     * CPU cycle at which the bus grants the transaction).
     */
    Cycles transactionCycles(Addr addr, unsigned bytes,
                             Cycles cpu_now = 0);

    /** Close all rows (e.g. between benchmark runs). */
    void resetTiming();

    /** Attach/detach the cycle-level event tracer (null: off). */
    void setTracer(trace::Tracer *t) { tracer = t; }

    StatGroup stats{"mem"};

  private:
    std::vector<uint8_t> store;
    DdrConfig cfg;
    std::vector<int64_t> openRow; ///< per bank; -1 = closed
    trace::Tracer *tracer = nullptr;

    // Interned counters for the per-transaction hot path.
    StatHandle hRowMisses = stats.handle("row_misses");
    StatHandle hRowHits = stats.handle("row_hits");
    StatHandle hTransactions = stats.handle("transactions");
    StatHandle hBytes = stats.handle("bytes");

    unsigned bankOf(Addr addr) const;
    int64_t rowOf(Addr addr) const;
};

} // namespace tm3270

#endif // TM3270_MEMORY_MAIN_MEMORY_HH
