#include "memory/biu.hh"

#include "trace/trace.hh"

namespace tm3270
{

Biu::Biu(MainMemory &mem_, uint32_t cpu_mhz) : mem(mem_), cpuMHz(cpu_mhz)
{
}

Cycles
Biu::toCpuCycles(Cycles mem_cycles) const
{
    // Round up: the asynchronous domain crossing re-synchronizes on
    // the CPU clock.
    return (mem_cycles * cpuMHz + mem.config().freqMHz - 1) /
           mem.config().freqMHz;
}

Cycles
Biu::demandRead(Addr addr, unsigned bytes, Cycles now)
{
    Cycles start = std::max(now, busBusyUntil);
    Cycles dur = toCpuCycles(mem.transactionCycles(addr, bytes, start));
    busBusyUntil = start + dur;
    hDemandReads.inc();
    hDemandReadBytes.inc(bytes);
    hBusWaitCycles.inc(start - now);
    TM_TRACE_EVENT(tracer, trace::Ev::BiuDemandRead, start,
                   uint32_t(dur), addr, bytes);
    return busBusyUntil;
}

Cycles
Biu::asyncWrite(Addr addr, unsigned bytes, Cycles now)
{
    Cycles start = std::max(now, busBusyUntil);
    Cycles dur = toCpuCycles(mem.transactionCycles(addr, bytes, start));
    busBusyUntil = start + dur;
    hWrites.inc();
    hWriteBytes.inc(bytes);
    TM_TRACE_EVENT(tracer, trace::Ev::BiuWrite, start, uint32_t(dur),
                   addr, bytes);
    return busBusyUntil;
}

Cycles
Biu::prefetchRead(Addr addr, unsigned bytes, Cycles now)
{
    if (busBusyUntil > now)
        return 0; // demand traffic has priority; retry later
    Cycles dur = toCpuCycles(mem.transactionCycles(addr, bytes, now));
    busBusyUntil = now + dur;
    hPrefetchReads.inc();
    hPrefetchReadBytes.inc(bytes);
    TM_TRACE_EVENT(tracer, trace::Ev::BiuPrefetchRead, now,
                   uint32_t(dur), addr, bytes);
    return busBusyUntil;
}

void
Biu::reset()
{
    busBusyUntil = 0;
    stats.reset();
    mem.resetTiming();
}

} // namespace tm3270
