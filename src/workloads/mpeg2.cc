/**
 * @file
 * MPEG2 decoder proxy (paper Table 5, mpeg2_a/b/c): the dominant
 * memory behaviour of MPEG2 decoding — motion-compensated prediction
 * from a reference frame plus residual reconstruction — on a 512x384
 * luma frame at 16x16 macroblock granularity.
 *
 * The three variants differ in their motion-vector fields, mirroring
 * the paper's streams: 'a' has a highly disruptive (large, random)
 * field, 'b' a moderate one, and 'c' a mostly-zero field. Vectors are
 * restricted to multiples of 4 pixels so the kernel stays within the
 * TM3260-portable aligned-word-load subset (the paper's baseline
 * results likewise exclude TM3270-specific non-aligned accesses).
 */

#include <random>

#include "support/logging.hh"
#include "support/saturate.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr unsigned W = 512;
constexpr unsigned H = 384;
constexpr unsigned mbSize = 16;
constexpr unsigned mbCols = W / mbSize; // 32
constexpr unsigned mbRows = H / mbSize; // 24
constexpr unsigned numMbs = mbCols * mbRows;

constexpr Addr prevBase = 0x00400000;
constexpr Addr curBase = 0x00500000;
constexpr Addr resBase = 0x00600000;
constexpr Addr mvBase = 0x00700000;

tir::TirProgram
buildMpeg2()
{
    using namespace tir;
    Builder b;
    VReg mb = b.var();
    VReg prow = b.var(); ///< prediction source row pointer
    VReg crow = b.var(); ///< current frame row pointer
    VReg rrow = b.var(); ///< residual row pointer
    VReg row = b.var();
    b.assign(mb, b.imm32(0));

    int mb_loop = b.newBlock();
    int row_loop = b.newBlock();
    int mb_next = b.newBlock();
    int done = b.newBlock();

    b.setBlock(0);
    b.jmpi(mb_loop);

    // Per-macroblock setup: fetch the motion vector and derive the
    // three row pointers.
    b.setBlock(mb_loop);
    {
        VReg mbx = b.iandi(mb, 31);
        VReg mby = b.asri(mb, 5);
        VReg mvp = b.iadd(b.imm32(int32_t(mvBase)), b.asli(mb, 1));
        VReg dx = b.ld8s(mvp, 0);
        VReg dy = b.ld8s(mvp, 1);
        VReg xoff = b.asli(mbx, 4);
        VReg yoff = b.asli(mby, 13); // mby * 16 * W
        VReg cur0 = b.iadd(b.iadd(b.imm32(int32_t(curBase)), yoff), xoff);
        VReg res0 = b.iadd(b.iadd(b.imm32(int32_t(resBase)), yoff), xoff);
        VReg pred0 = b.iadd(
            b.iadd(b.iadd(b.imm32(int32_t(prevBase)), yoff), xoff),
            b.iadd(dx, b.asli(dy, 9)));
        b.assign(prow, pred0);
        b.assign(crow, cur0);
        b.assign(rrow, res0);
        b.assign(row, b.imm32(0));
        b.jmpi(row_loop);
    }

    // Motion compensation + residual add, one 16-pixel row at a time.
    b.setBlock(row_loop);
    {
        VReg cond = b.ilesi(row, int32_t(mbSize - 1));
        b.assign(row, b.iaddi(row, 1));
        for (int wdx = 0; wdx < 4; ++wdx) {
            VReg pred = b.ld32d(prow, wdx * 4);
            VReg res = b.ld32d(rrow, wdx * 4);
            VReg rec = b.emit(Opcode::DSPUQUADADDUI, pred, res);
            b.st32d(rec, crow, wdx * 4);
        }
        b.assign(prow, b.iaddi(prow, int32_t(W)));
        b.assign(crow, b.iaddi(crow, int32_t(W)));
        b.assign(rrow, b.iaddi(rrow, int32_t(W)));
        b.jmpt(cond, row_loop);
    }

    b.setBlock(mb_next);
    {
        b.assign(mb, b.iaddi(mb, 1));
        VReg more = b.ilesi(mb, int32_t(numMbs));
        b.jmpt(more, mb_loop);
    }

    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

struct Mpeg2Data
{
    std::vector<uint8_t> prev;
    std::vector<int8_t> res;
    std::vector<int8_t> mvs; ///< dx, dy per macroblock
};

Mpeg2Data
makeData(char variant)
{
    Mpeg2Data d;
    std::mt19937_64 rng(0x1234 + uint64_t(variant));
    d.prev.resize(W * H);
    for (auto &v : d.prev)
        v = uint8_t(rng());
    d.res.resize(W * H);
    for (auto &v : d.res)
        v = int8_t(int(rng() % 64) - 32);

    int max_blocks; // MV magnitude in 4-pixel steps
    double p_zero;
    switch (variant) {
      case 'a': max_blocks = 8; p_zero = 0.05; break; // disruptive
      case 'b': max_blocks = 2; p_zero = 0.40; break;
      default: max_blocks = 1; p_zero = 0.90; break; // near-static
    }

    std::uniform_real_distribution<double> unif(0, 1);
    d.mvs.resize(numMbs * 2);
    for (unsigned m = 0; m < numMbs; ++m) {
        unsigned mbx = m % mbCols, mby = m / mbCols;
        int dx = 0, dy = 0;
        if (unif(rng) >= p_zero) {
            auto pick = [&](int lo, int hi) {
                return int(rng() % unsigned(hi - lo + 1)) + lo;
            };
            dx = 4 * pick(-max_blocks, max_blocks);
            dy = 4 * pick(-max_blocks, max_blocks);
        }
        // Keep the source block inside the frame.
        dx = int(clipRange(dx, -int(mbx * mbSize),
                           int(W - mbSize - mbx * mbSize)));
        dy = int(clipRange(dy, -int(mby * mbSize),
                           int(H - mbSize - mby * mbSize)));
        dx &= ~3; // word aligned
        d.mvs[2 * m] = int8_t(dx);
        d.mvs[2 * m + 1] = int8_t(dy);
    }
    return d;
}

std::vector<uint8_t>
referenceDecode(const Mpeg2Data &d)
{
    std::vector<uint8_t> cur(W * H, 0);
    for (unsigned m = 0; m < numMbs; ++m) {
        unsigned mbx = m % mbCols, mby = m / mbCols;
        int dx = d.mvs[2 * m], dy = d.mvs[2 * m + 1];
        for (unsigned r = 0; r < mbSize; ++r) {
            for (unsigned c = 0; c < mbSize; ++c) {
                size_t dst = (mby * mbSize + r) * W + mbx * mbSize + c;
                size_t src = size_t(int(dst) + dy * int(W) + dx);
                cur[dst] = clipU8(int(d.prev[src]) + d.res[dst]);
            }
        }
    }
    return cur;
}

} // namespace

Workload
mpeg2Workload(char variant)
{
    tm_assert(variant == 'a' || variant == 'b' || variant == 'c',
              "mpeg2 variant must be a, b or c");
    Workload w;
    w.name = std::string("mpeg2_") + variant;
    w.description = "MPEG2 decoder proxy (motion compensation + "
                    "residual reconstruction).";
    w.build = buildMpeg2;
    w.init = [variant](System &sys) {
        Mpeg2Data d = makeData(variant);
        sys.writeBytes(prevBase, d.prev.data(), d.prev.size());
        sys.writeBytes(resBase, d.res.data(), d.res.size());
        sys.writeBytes(mvBase, d.mvs.data(), d.mvs.size());
    };
    w.verify = [variant](System &sys, std::string &err) {
        Mpeg2Data d = makeData(variant);
        std::vector<uint8_t> want = referenceDecode(d);
        std::vector<uint8_t> got(W * H);
        sys.readBytes(curBase, got.data(), got.size());
        for (size_t i = 0; i < want.size(); ++i) {
            if (want[i] != got[i]) {
                err = strfmt("pixel %zu: want %u got %u", i, want[i],
                             got[i]);
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
