/**
 * @file
 * Temporal video up-conversion kernel (paper §6 / reference [14]):
 * a motion-compensated intermediate field is interpolated between the
 * previous and next fields, with half-pel horizontal motion. The paper
 * reports ~40% improvement from the new operations and a further
 * ~20% from data prefetching.
 */

#ifndef TM3270_WORKLOADS_UPCONV_HH
#define TM3270_WORKLOADS_UPCONV_HH

#include <string>

#include "core/system.hh"
#include "tir/tir.hh"

namespace tm3270::workloads
{

/** Feature selection for the up-conversion kernel. */
struct UpconvFlags
{
    bool newOps = false;   ///< LD_FRAC8 + non-aligned access
    bool prefetch = false; ///< region prefetching on both fields
};

namespace upconv_geom
{
inline constexpr unsigned W = 256;
inline constexpr unsigned H = 256;
inline constexpr unsigned blockSize = 8;
inline constexpr Addr prevBase = 0x00100000;
inline constexpr Addr nextBase = 0x00140000;
inline constexpr Addr outBase = 0x00180000;
inline constexpr Addr mvBase = 0x001C0000; ///< 2 bytes per block
} // namespace upconv_geom

tir::TirProgram buildUpconversion(const UpconvFlags &flags);

void stageUpconversion(System &sys, uint64_t seed);

bool verifyUpconversion(System &sys, uint64_t seed, std::string &err);

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_UPCONV_HH
