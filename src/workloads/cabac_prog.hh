/**
 * @file
 * TM3270 CABAC decoding programs (paper §2.2.3, Table 3): the complete
 * per-bin decoding process — context fetch from memory, arithmetic
 * decoding, renormalization with stream refill, context write-back and
 * decoded-bit output — in two versions:
 *
 *  - non-optimized: biari_decode_symbol in plain TriMedia operations
 *    (guarded selects, LPS-range/state-transition/renorm tables in
 *    data memory);
 *  - optimized: the arithmetic core replaced by the SUPER_CABAC_CTX /
 *    SUPER_CABAC_STR two-slot operations.
 *
 * Both decode the same synthetic field bitstream and must produce
 * bit-identical output, verified against the golden model.
 */

#ifndef TM3270_WORKLOADS_CABAC_PROG_HH
#define TM3270_WORKLOADS_CABAC_PROG_HH

#include "cabac/cabac.hh"
#include "core/system.hh"
#include "tir/tir.hh"

namespace tm3270::workloads
{

/** Memory layout of the CABAC decode programs. */
namespace cabac_layout
{
inline constexpr Addr stream = 0x00100000;
inline constexpr Addr ctxSeq = 0x00200000;
inline constexpr Addr ctxArray = 0x00300000; ///< 1 word per context
inline constexpr Addr outBits = 0x00400000;
inline constexpr Addr lpsTab = 0x00500000;   ///< 64 x 4 bytes
inline constexpr Addr mpsNext = 0x00500100;  ///< 64 bytes
inline constexpr Addr lpsNext = 0x00500140;  ///< 64 bytes
inline constexpr Addr normTab = 0x00500200;  ///< 512 bytes
} // namespace cabac_layout

/** Build the decode program for @p num_bins bins. */
tir::TirProgram buildCabacDecode(unsigned num_bins, bool optimized);

/** Stage stream, context sequence, initial contexts and tables. */
void stageCabacField(System &sys, const SyntheticField &field);

/** Check the decoded bits written by the program. */
bool verifyCabacBits(System &sys, const SyntheticField &field,
                     std::string &err);

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_CABAC_PROG_HH
