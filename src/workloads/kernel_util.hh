/**
 * @file
 * Shared kernel-construction helpers: the portable (TM3260-safe)
 * emulation of non-aligned word loads via aligned loads plus guarded
 * funnel-shift selection. The TM3270's penalty-free non-aligned access
 * makes this whole sequence a single load (paper §4.1).
 */

#ifndef TM3270_WORKLOADS_KERNEL_UTIL_HH
#define TM3270_WORKLOADS_KERNEL_UTIL_HH

#include "tir/builder.hh"

namespace tm3270::workloads
{

/** Alignment guards for a (possibly unaligned) base pointer. */
struct UnalignedCtx
{
    tir::VReg g0, g1, g2, g3; ///< alignment == 0..3 guards
    tir::VReg pa;             ///< word-aligned base pointer
};

inline UnalignedCtx
makeUnalignedCtx(tir::Builder &b, tir::VReg p)
{
    UnalignedCtx u;
    tir::VReg al = b.iandi(p, 3);
    u.g0 = b.ieqli(al, 0);
    u.g1 = b.ieqli(al, 1);
    u.g2 = b.ieqli(al, 2);
    u.g3 = b.ieqli(al, 3);
    u.pa = b.emit(Opcode::BITAND0, p, b.imm32(3));
    return u;
}

/**
 * 32-bit load at (p + off). With @p hw_unaligned the hardware path is
 * emitted (one load); otherwise two aligned loads plus guarded
 * funnel-shift selection reconstruct the word.
 */
inline tir::VReg
loadWordMaybeUnaligned(tir::Builder &b, bool hw_unaligned, tir::VReg p,
                       int32_t off, const UnalignedCtx &u)
{
    if (hw_unaligned)
        return b.ld32d(p, off);
    tir::VReg w0 = b.ld32d(u.pa, off);
    tir::VReg w1 = b.ld32d(u.pa, off + 4);
    // All shift variants are computed up front; the unguarded initial
    // assignment re-defines the select variable on every pass, so the
    // register allocator treats it as block-local.
    tir::VReg f1 = b.funshift1(w0, w1);
    tir::VReg f2 = b.funshift2(w0, w1);
    tir::VReg f3 = b.funshift3(w0, w1);
    tir::VReg w = b.var();
    b.assign(w, w0);
    b.assign(w, f1, u.g1);
    b.assign(w, f2, u.g2);
    b.assign(w, f3, u.g3);
    return w;
}

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_KERNEL_UTIL_HH
