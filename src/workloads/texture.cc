#include "workloads/texture.hh"

#include <random>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "tir/builder.hh"

namespace tm3270::workloads
{

namespace
{

using namespace texture_geom;
using tir::Builder;
using tir::VReg;

// Stage coefficients and the quantization scale (dual-16, same value
// in both lanes).
constexpr int c1s1 = 54, c2s1 = 31; // stage 1 butterfly
// Stage 2 coefficients carry the quantization scale (folded in, as a
// production pipeline would).
constexpr int c1s2 = 45 * 23, c2s2 = 27 * 23;

constexpr Word
lane2(int v)
{
    return dual16(Word(uint16_t(v)), Word(uint16_t(v)));
}

/** Butterfly outputs (u*c1 + v*c2, u*c2 - v*c1), clipped to 16 bits
 *  per packed lane and repacked. */
struct Bfly
{
    VReg y0, y1;
};

Bfly
butterfly(Builder &b, bool two_slot, VReg u, VReg v, int c1, int c2,
          VReg c1r, VReg c2r, VReg nc1r, VReg clipMax)
{
    (void)c1;
    (void)c2;
    Bfly out;
    (void)clipMax;
    if (two_slot) {
        auto [h0, l0] = b.superDualimix(u, c1r, v, c2r);
        auto [h1, l1] = b.superDualimix(u, c2r, v, nc1r);
        out.y0 = b.dspidualpack(h0, l0);
        out.y1 = b.dspidualpack(h1, l1);
        return out;
    }
    // Scalar path: unpack lanes, multiply, recombine.
    VReg uh = b.asri(u, 16), ul = b.sex16(u);
    VReg vh = b.asri(v, 16), vl = b.sex16(v);
    VReg c1v = b.sex16(c1r), c2v = b.sex16(c2r);
    auto mac = [&](VReg a, VReg bb, VReg ca, VReg cb) {
        return b.iadd(b.imul(a, ca), b.imul(bb, cb));
    };
    auto msub = [&](VReg a, VReg bb, VReg ca, VReg cb) {
        return b.isub(b.imul(a, ca), b.imul(bb, cb));
    };
    out.y0 = b.dspidualpack(mac(uh, vh, c1v, c2v),
                            mac(ul, vl, c1v, c2v));
    out.y1 = b.dspidualpack(msub(uh, vh, c2v, c1v),
                            msub(ul, vl, c2v, c1v));
    return out;
}

tir::TirProgram
buildKernel(bool two_slot)
{
    Builder b;
    VReg in = b.var(), out = b.var(), end = b.var();
    VReg c1a = b.var(), c2a = b.var(), nc1a = b.var();
    VReg c1b = b.var(), c2b = b.var(), nc1b = b.var();
    VReg clipMax = b.var();
    b.assign(in, b.imm32(int32_t(inBase)));
    b.assign(out, b.imm32(int32_t(outBase)));
    b.assign(end, b.imm32(int32_t(inBase + numRows * 32)));
    b.assign(c1a, b.imm32(int32_t(lane2(c1s1))));
    b.assign(c2a, b.imm32(int32_t(lane2(c2s1))));
    b.assign(nc1a, b.imm32(int32_t(lane2(-c1s1))));
    b.assign(c1b, b.imm32(int32_t(lane2(c1s2))));
    b.assign(c2b, b.imm32(int32_t(lane2(c2s2))));
    b.assign(nc1b, b.imm32(int32_t(lane2(-c1s2))));
    b.assign(clipMax, b.imm32(32767));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    {
        // Two rows per iteration: independent butterfly networks fill
        // the issue slots and hide the operation latencies.
        VReg cond = b.ilesu(b.iaddi(in, 64), end);
        for (int u = 0; u < 2; ++u) {
            int32_t base_off = 32 * u;
            std::array<VReg, 8> x;
            for (int i = 0; i < 8; ++i)
                x[size_t(i)] = b.ld32d(in, base_off + 4 * i);
            // Stage 1: pairs (0,1) (2,3) (4,5) (6,7).
            std::array<VReg, 8> y;
            for (int p = 0; p < 4; ++p) {
                Bfly f = butterfly(b, two_slot, x[size_t(2 * p)],
                                   x[size_t(2 * p + 1)], c1s1, c2s1,
                                   c1a, c2a, nc1a, clipMax);
                y[size_t(2 * p)] = f.y0;
                y[size_t(2 * p + 1)] = f.y1;
            }
            // Stage 2: pairs (0,2) (1,3) (4,6) (5,7).
            std::array<VReg, 8> z;
            constexpr int pairs[4][2] = {{0, 2}, {1, 3}, {4, 6}, {5, 7}};
            for (auto &pr : pairs) {
                Bfly f = butterfly(b, two_slot, y[size_t(pr[0])],
                                   y[size_t(pr[1])], c1s2, c2s2, c1b,
                                   c2b, nc1b, clipMax);
                z[size_t(pr[0])] = f.y0;
                z[size_t(pr[1])] = f.y1;
            }
            for (int i = 0; i < 8; ++i)
                b.st32d(z[size_t(i)], out, base_off + 4 * i);
        }
        b.assign(in, b.iaddi(in, 64));
        b.assign(out, b.iaddi(out, 64));
        b.jmpt(cond, loop);
    }

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

std::vector<int16_t>
makeInput(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<int16_t> v(numRows * 16);
    for (auto &s : v)
        s = int16_t(int(rng() % 512) - 256);
    return v;
}

int16_t
refButterflyLane(int u, int v, int c1, int c2, bool first)
{
    int64_t r = first ? int64_t(u) * c1 + int64_t(v) * c2
                      : int64_t(u) * c2 - int64_t(v) * c1;
    return int16_t(clipRange(clipS32(r), -32768, 32767));
}

} // namespace

tir::TirProgram
buildTexturePipeline(bool use_two_slot)
{
    return buildKernel(use_two_slot);
}

void
stageTexture(System &sys, uint64_t seed)
{
    auto in = makeInput(seed);
    std::vector<uint8_t> bytes;
    for (int16_t s : in) {
        bytes.push_back(uint8_t(uint16_t(s) >> 8));
        bytes.push_back(uint8_t(uint16_t(s)));
    }
    sys.writeBytes(texture_geom::inBase, bytes.data(), bytes.size());
}

bool
verifyTexture(System &sys, uint64_t seed, std::string &err)
{
    auto in = makeInput(seed);
    for (unsigned row = 0; row < numRows; ++row) {
        // Each packed word is (laneH, laneL); verify both lanes.
        for (int lane = 0; lane < 2; ++lane) {
            int x[8];
            for (int i = 0; i < 8; ++i)
                x[i] = in[row * 16 + unsigned(2 * i) + unsigned(lane)];
            int y[8];
            for (int p = 0; p < 4; ++p) {
                y[2 * p] = refButterflyLane(x[2 * p], x[2 * p + 1], c1s1,
                                            c2s1, true);
                y[2 * p + 1] = refButterflyLane(x[2 * p], x[2 * p + 1],
                                                c1s1, c2s1, false);
            }
            int z[8];
            constexpr int pairs[4][2] = {{0, 2}, {1, 3}, {4, 6}, {5, 7}};
            for (auto &pr : pairs) {
                z[pr[0]] = refButterflyLane(y[pr[0]], y[pr[1]], c1s2,
                                            c2s2, true);
                z[pr[1]] = refButterflyLane(y[pr[0]], y[pr[1]], c1s2,
                                            c2s2, false);
            }
            for (int i = 0; i < 8; ++i) {
                int want = z[i];
                Word got_w = sys.peek32(outBase + row * 32 +
                                        unsigned(4 * i));
                int16_t got = lane == 0 ? int16_t(got_w >> 16)
                                        : int16_t(got_w & 0xffff);
                if (got != want) {
                    err = strfmt(
                        "row %u word %d lane %d: want %d got %d", row,
                        i, lane, want, int(got));
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace tm3270::workloads
