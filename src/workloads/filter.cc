/**
 * @file
 * "filter" kernel (EEMBC consumer suite style, paper Table 5): a
 * 5-tap binomial low-pass FIR over 8-bit pixels, four outputs per
 * iteration using word loads, funnel shifts and the ifir8ui dot
 * product. Written in the TM3260-portable subset (aligned word loads
 * only).
 */

#include "support/logging.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr Addr srcBase = 0x00100000;
constexpr Addr dstBase = 0x00180000;
constexpr unsigned numPixels = 32 * 1024;
// Binomial taps {1, 4, 6, 4, 1}, normalized by >> 4.
constexpr int taps[5] = {1, 4, 6, 4, 1};

tir::TirProgram
buildFilter()
{
    using namespace tir;
    Builder b;
    VReg src = b.var();
    VReg dst = b.var();
    VReg end = b.var();
    VReg coef = b.var(); // taps 0..3 packed MSB-first
    b.assign(src, b.imm32(int32_t(srcBase)));
    b.assign(dst, b.imm32(int32_t(dstBase)));
    b.assign(end, b.imm32(int32_t(dstBase + numPixels)));
    b.assign(coef, b.imm32(taps[0] << 24 | taps[1] << 16 | taps[2] << 8 |
                           taps[3]));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg cond = b.ilesu(b.iaddi(dst, 4), end);
    // Load 8 input pixels covering outputs x .. x+3.
    VReg w0 = b.ld32d(src, 0);
    VReg w1 = b.ld32d(src, 4);
    std::array<VReg, 4> win = {
        w0,
        b.funshift1(w0, w1),
        b.funshift2(w0, w1),
        b.funshift3(w0, w1),
    };
    std::array<VReg, 4> out;
    for (int k = 0; k < 4; ++k) {
        VReg dot = b.ifir8ui(win[size_t(k)], coef);
        VReg tail = b.ubytesel(w1, b.imm32(3 - k)); // in[x+4+k]
        VReg sum = b.iaddi(b.iadd(dot, tail), 8);
        out[size_t(k)] = b.asri(sum, 4);
    }
    VReg o01 = b.emit(Opcode::PACKBYTES, out[0], out[1]);
    VReg o23 = b.emit(Opcode::PACKBYTES, out[2], out[3]);
    b.st32d(b.pack16lsb(o01, o23), dst, 0);
    b.assign(src, b.iaddi(src, 4));
    b.assign(dst, b.iaddi(dst, 4));
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

void
referenceFilter(const uint8_t *in, uint8_t *out, size_t n)
{
    for (size_t x = 0; x < n; ++x) {
        int sum = 8;
        for (int k = 0; k < 5; ++k)
            sum += taps[k] * in[x + size_t(k)];
        out[x] = uint8_t(sum >> 4);
    }
}

} // namespace

Workload
filterWorkload()
{
    Workload w;
    w.name = "filter";
    w.description = "5-tap FIR filter over 8-bit pixels (EEMBC style).";
    w.build = buildFilter;
    w.init = [](System &sys) {
        fillRandom(sys, srcBase, numPixels + 8, 2);
    };
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> in(numPixels + 8), want(numPixels),
            got(numPixels);
        sys.readBytes(srcBase, in.data(), in.size());
        referenceFilter(in.data(), want.data(), numPixels);
        sys.readBytes(dstBase, got.data(), got.size());
        for (size_t i = 0; i < numPixels; ++i) {
            if (want[i] != got[i]) {
                err = strfmt("pixel %zu: want %u got %u", i, want[i],
                             got[i]);
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
