#include "workloads/motion_est.hh"

#include <random>

#include "core/mmio.hh"
#include "support/logging.hh"
#include "tir/builder.hh"
#include "workloads/kernel_util.hh"

namespace tm3270::workloads
{

namespace
{

using namespace me_geom;
using tir::Builder;
using tir::VReg;

constexpr unsigned candSpan = 2 * searchR + 1; // 9

/** Blocks walk a diagonal so every search window is cold. */
constexpr unsigned
blockX(unsigned bi)
{
    return 16 + (bi % 12) * 40;
}

constexpr unsigned
blockY(unsigned bi)
{
    return 16 + bi * 8;
}

VReg
loadWord(Builder &b, const MeFlags &f, VReg p, int32_t off,
         const UnalignedCtx &u)
{
    return loadWordMaybeUnaligned(b, f.unaligned, p, off, u);
}

tir::TirProgram
buildKernel(const MeFlags &f)
{
    Builder b;
    VReg bi = b.var();
    VReg curp = b.var();
    VReg outp = b.var();
    VReg win0 = b.var(); ///< candidate (dy=0, dx=0) pointer of block
    b.assign(bi, b.imm32(0));
    b.assign(curp, b.imm32(int32_t(curBase)));
    b.assign(outp, b.imm32(int32_t(outBase)));

    if (f.prefetch) {
        // Program PF0 over the reference frame with a one-row stride,
        // via the memory-mapped prefetch registers (paper §2.3).
        VReg mmio = b.imm32(int32_t(mmio_map::pfRegion));
        b.st32d(b.imm32(int32_t(refBase)), mmio, 0);
        b.st32d(b.imm32(int32_t(refBase + refW * refH)), mmio, 4);
        b.st32d(b.imm32(int32_t(refW)), mmio, 8);
    }

    int block_loop = b.newBlock();
    int cand_loop = b.newBlock();
    int refine = b.newBlock();
    int done = b.newBlock();

    b.setBlock(0);
    b.jmpi(block_loop);

    // Per-block variables.
    std::array<VReg, 16> cb; ///< current block, 2 words x 8 rows
    for (auto &v : cb)
        v = b.var();
    VReg row_base = b.var(); ///< candidate row base (advances by W)
    VReg dx = b.var();
    VReg cand = b.var(); ///< candidate pointer = row_base + dx
    VReg cidx = b.var();
    VReg best_sad = b.var();
    VReg best_idx = b.var();
    VReg best_p = b.var();

    b.setBlock(block_loop);
    {
        // Load the current block into registers.
        for (unsigned r = 0; r < blockSize; ++r) {
            for (unsigned w = 0; w < 2; ++w) {
                b.assign(cb[2 * r + w],
                         b.ld32d(curp, int32_t(r * 8 + w * 4)));
            }
        }
        // win0 = &ref[blockY(bi) - R][blockX(bi) - R]
        // x = 16 + (bi % 12) * 40; y = 16 + bi * 8.
        VReg bim = b.var();
        // bi % 12 via multiply-shift division (bi < 4096).
        b.assign(bim, b.lsri(b.imul(bi, b.imm32(0x5556)), 18));
        VReg bx = b.iadd(b.imm32(int32_t(blockX(0))),
                         b.imul(b.isub(bi, b.imul(bim, b.imm32(12))),
                                b.imm32(40)));
        VReg by = b.iaddi(b.asli(bi, 3), int32_t(blockY(0)));
        VReg base = b.imm32(
            int32_t(refBase - searchR * refW - searchR));
        VReg w0p = b.iadd(b.iadd(base, b.asli(by, 9)), bx);
        b.assign(win0, w0p);
        b.assign(row_base, w0p);
        b.assign(dx, b.imm32(0));
        b.assign(cand, w0p);
        b.assign(cidx, b.imm32(0));
        b.assign(best_sad, b.imm32(0x7FFFFFFF));
        b.assign(best_idx, b.imm32(0));
        b.assign(best_p, w0p);
        b.jmpi(cand_loop);
    }

    b.setBlock(cand_loop);
    {
        // Three candidates per iteration: amortizes the load-use
        // latency chain and the jump delay slots across independent
        // SAD computations (the scheduler interleaves them).
        for (unsigned k = 0; k < 3; ++k) {
            VReg ck = k ? b.iaddi(cand, int32_t(k)) : cand;
            UnalignedCtx u = makeUnalignedCtx(b, ck);
            VReg acc0 = b.var(), acc1 = b.var();
            b.assign(acc0, b.imm32(0));
            b.assign(acc1, b.imm32(0));
            VReg rp = ck;
            for (unsigned r = 0; r < blockSize; ++r) {
                if (r > 0) {
                    rp = b.iaddi(rp, int32_t(refW));
                    if (!f.unaligned)
                        u.pa = b.iaddi(u.pa, int32_t(refW));
                }
                for (unsigned w = 0; w < 2; ++w) {
                    VReg rw = loadWord(b, f, rp, int32_t(w * 4), u);
                    VReg a = w == 0 ? acc0 : acc1;
                    b.assign(a, b.iadd(a, b.ume8uu(rw, cb[2 * r + w])));
                }
            }
            VReg acc = b.iadd(acc0, acc1);
            // Strict-less keeps the first (lowest index) winner.
            VReg better = b.ilesu(acc, best_sad);
            b.assign(best_sad, acc, better);
            b.assign(best_idx, k ? b.iaddi(cidx, int32_t(k)) : cidx,
                     better);
            b.assign(best_p, ck, better);
        }

        // Advance to the next candidate triple (row-major).
        b.assign(cidx, b.iaddi(cidx, 3));
        b.assign(dx, b.iaddi(dx, 3));
        VReg row_done = b.ieqli(dx, int32_t(candSpan));
        b.assign(dx, b.imm32(0), row_done);
        b.assign(row_base, b.iaddi(row_base, int32_t(refW)), row_done);
        b.assign(cand, b.iadd(row_base, dx));
        VReg cont = b.ilesi(cidx, int32_t(candSpan * candSpan));
        b.jmpt(cont, cand_loop);
    }

    b.setBlock(refine);
    {
        // Half-pel refinement around the winner: left, right, vertical
        // and diagonal half-pel positions (frac = 8; paper [12]).
        // Vertical and diagonal positions average adjacent rows, so
        // nine rows of interpolated/center words are produced.
        VReg accl = b.var(), accr = b.var(), accv = b.var(),
             accd = b.var();
        for (VReg a : {accl, accr, accv, accd})
            b.assign(a, b.imm32(0));
        VReg pl = b.iaddi(best_p, -1);
        VReg pr = b.iaddi(best_p, 1);
        UnalignedCtx ul = makeUnalignedCtx(b, pl);
        UnalignedCtx uc = makeUnalignedCtx(b, best_p);
        UnalignedCtx ur = makeUnalignedCtx(b, pr);
        VReg rpl = pl, rpc = best_p, rpr = pr;
        std::array<VReg, 2> hr_prev = {0, 0}, wc_prev = {0, 0};
        for (unsigned r = 0; r <= blockSize; ++r) {
            if (r > 0) {
                if (f.fracLoad || f.unaligned) {
                    rpl = b.iaddi(rpl, int32_t(refW));
                    rpc = b.iaddi(rpc, int32_t(refW));
                }
                if (!f.fracLoad) {
                    if (f.unaligned) {
                        rpr = b.iaddi(rpr, int32_t(refW));
                    } else {
                        ul.pa = b.iaddi(ul.pa, int32_t(refW));
                        uc.pa = b.iaddi(uc.pa, int32_t(refW));
                        ur.pa = b.iaddi(ur.pa, int32_t(refW));
                    }
                }
            }
            for (unsigned w = 0; w < 2; ++w) {
                int32_t off = int32_t(w * 4);
                VReg hl = 0, hr, wc;
                if (f.fracLoad) {
                    if (r < blockSize) {
                        hl = b.ldFrac8(off ? b.iaddi(rpl, off) : rpl,
                                       b.imm32(8));
                    }
                    hr = b.ldFrac8(off ? b.iaddi(rpc, off) : rpc,
                                   b.imm32(8));
                    wc = b.ld32d(rpc, off);
                } else {
                    VReg wl = 0;
                    if (r < blockSize)
                        wl = loadWord(b, f, rpl, off, ul);
                    wc = loadWord(b, f, rpc, off, uc);
                    VReg wr = loadWord(b, f, rpr, off, ur);
                    if (r < blockSize)
                        hl = b.quadavg(wl, wc);
                    hr = b.quadavg(wc, wr);
                }
                if (r < blockSize) {
                    VReg c = cb[2 * r + w];
                    b.assign(accl, b.iadd(accl, b.ume8uu(hl, c)));
                    b.assign(accr, b.iadd(accr, b.ume8uu(hr, c)));
                }
                if (r > 0) {
                    VReg c = cb[2 * (r - 1) + w];
                    VReg hv = b.quadavg(wc_prev[w], wc);
                    VReg hd = b.quadavg(hr_prev[w], hr);
                    b.assign(accv, b.iadd(accv, b.ume8uu(hv, c)));
                    b.assign(accd, b.iadd(accd, b.ume8uu(hd, c)));
                }
                hr_prev[w] = hr;
                wc_prev[w] = wc;
            }
        }
        b.st32d(best_idx, outp, 0);
        b.st32d(best_sad, outp, 4);
        b.st32d(accl, outp, 8);
        b.st32d(accr, outp, 12);
        b.st32d(accv, outp, 16);
        b.st32d(accd, outp, 20);

        b.assign(bi, b.iaddi(bi, 1));
        b.assign(curp, b.iaddi(curp, 64));
        b.assign(outp, b.iaddi(outp, 24));
        VReg more = b.ilesi(bi, int32_t(numBlocks));
        b.jmpt(more, block_loop);
    }

    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

/** Deterministic frame content. */
std::vector<uint8_t>
makeRef(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<uint8_t> ref(refW * refH);
    for (auto &v : ref)
        v = uint8_t(rng());
    return ref;
}

std::vector<uint8_t>
makeCur(const std::vector<uint8_t> &ref, uint64_t seed)
{
    // Current blocks are displaced, noisy copies of reference content
    // so the search has a meaningful winner.
    std::mt19937_64 rng(seed ^ 0x5555);
    std::vector<uint8_t> cur(numBlocks * 64);
    for (unsigned bi = 0; bi < numBlocks; ++bi) {
        int dx = int(rng() % candSpan) - int(searchR);
        int dy = int(rng() % candSpan) - int(searchR);
        for (unsigned r = 0; r < blockSize; ++r) {
            for (unsigned c = 0; c < blockSize; ++c) {
                size_t src =
                    size_t((int(blockY(bi)) + dy + int(r)) * int(refW) +
                           int(blockX(bi)) + dx + int(c));
                int noise = int(rng() % 9) - 4;
                cur[bi * 64 + r * 8 + c] =
                    uint8_t(std::clamp(int(ref[src]) + noise, 0, 255));
            }
        }
    }
    return cur;
}

} // namespace

tir::TirProgram
buildMotionEstimation(const MeFlags &flags)
{
    return buildKernel(flags);
}

void
stageMotionEstimation(System &sys, uint64_t seed)
{
    auto ref = makeRef(seed);
    auto cur = makeCur(ref, seed);
    sys.writeBytes(refBase, ref.data(), ref.size());
    sys.writeBytes(curBase, cur.data(), cur.size());
}

std::vector<MeResult>
referenceMotionEstimation(uint64_t seed)
{
    auto ref = makeRef(seed);
    auto cur = makeCur(ref, seed);
    std::vector<MeResult> out;

    auto pel = [&](size_t idx) { return int(ref[idx]); };
    auto half = [&](size_t idx) {
        return (pel(idx) + pel(idx + 1) + 1) >> 1;
    };

    for (unsigned bi = 0; bi < numBlocks; ++bi) {
        const uint8_t *cb = cur.data() + bi * 64;
        size_t win0 =
            (blockY(bi) - searchR) * refW + blockX(bi) - searchR;
        MeResult r{0, 0xFFFFFFFF, 0, 0, 0, 0};
        size_t best = win0;
        for (unsigned c = 0; c < candSpan * candSpan; ++c) {
            size_t p = win0 + (c / candSpan) * refW + (c % candSpan);
            uint32_t sad = 0;
            for (unsigned rr = 0; rr < blockSize; ++rr) {
                for (unsigned cc = 0; cc < blockSize; ++cc) {
                    sad += uint32_t(
                        std::abs(pel(p + rr * refW + cc) -
                                 int(cb[rr * 8 + cc])));
                }
            }
            if (sad < r.bestSad) {
                r.bestSad = sad;
                r.bestIdx = c;
                best = p;
            }
        }
        uint32_t sl = 0, sr = 0, sv = 0, sd = 0;
        for (unsigned rr = 0; rr < blockSize; ++rr) {
            for (unsigned cc = 0; cc < blockSize; ++cc) {
                int cv = int(cb[rr * 8 + cc]);
                size_t p = best + rr * refW + cc;
                sl += uint32_t(std::abs(half(p - 1) - cv));
                sr += uint32_t(std::abs(half(p) - cv));
                sv += uint32_t(std::abs(
                    ((pel(p) + pel(p + refW) + 1) >> 1) - cv));
                sd += uint32_t(std::abs(
                    ((half(p) + half(p + refW) + 1) >> 1) - cv));
            }
        }
        r.halfSadL = sl;
        r.halfSadR = sr;
        r.halfSadV = sv;
        r.halfSadD = sd;
        out.push_back(r);
    }
    return out;
}

bool
verifyMotionEstimation(System &sys, uint64_t seed, std::string &err)
{
    auto want = referenceMotionEstimation(seed);
    for (unsigned bi = 0; bi < numBlocks; ++bi) {
        Addr base = outBase + bi * 24;
        MeResult got{sys.peek32(base),      sys.peek32(base + 4),
                     sys.peek32(base + 8),  sys.peek32(base + 12),
                     sys.peek32(base + 16), sys.peek32(base + 20)};
        const MeResult &w = want[bi];
        if (got.bestIdx != w.bestIdx || got.bestSad != w.bestSad ||
            got.halfSadL != w.halfSadL || got.halfSadR != w.halfSadR ||
            got.halfSadV != w.halfSadV || got.halfSadD != w.halfSadD) {
            err = strfmt("block %u: want (%u,%u,%u,%u,%u,%u) got "
                         "(%u,%u,%u,%u,%u,%u)",
                         bi, w.bestIdx, w.bestSad, w.halfSadL,
                         w.halfSadR, w.halfSadV, w.halfSadD, got.bestIdx,
                         got.bestSad, got.halfSadL, got.halfSadR,
                         got.halfSadV, got.halfSadD);
            return false;
        }
    }
    return true;
}

} // namespace tm3270::workloads
