#include "workloads/cabac_prog.hh"

#include "isa/cabac_tables.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "tir/builder.hh"

namespace tm3270::workloads
{

namespace
{

using namespace cabac_layout;
using tir::Builder;
using tir::VReg;

/**
 * Shared prologue: returns (stream base, out pointer, bin counter,
 * bit position) variables and leaves the builder in the loop block.
 */
struct LoopVars
{
    VReg sp, outp, bin, bitpos;
    int loop, done;
};

LoopVars
prologue(Builder &b, unsigned num_bins)
{
    LoopVars v;
    v.sp = b.var();
    v.outp = b.var();
    v.bin = b.var();
    v.bitpos = b.var();
    b.assign(v.sp, b.imm32(int32_t(stream)));
    b.assign(v.outp, b.imm32(int32_t(outBits)));
    b.assign(v.bin, b.imm32(0));
    b.assign(v.bitpos, b.imm32(9)); // 9 initialization bits consumed

    v.loop = b.newBlock();
    v.done = b.newBlock();
    (void)num_bins;
    return v;
}

void
epilogue(Builder &b, const LoopVars &v, unsigned num_bins)
{
    // Loop control lives at the end of the loop body.
    b.assign(v.bin, b.iaddi(v.bin, 1));
    VReg more = b.iles(v.bin, b.imm32(int32_t(num_bins)));
    b.assign(v.outp, b.iaddi(v.outp, 1));
    b.jmpt(more, v.loop);

    b.setBlock(v.done);
    b.halt(v.bitpos);
}

/** Load the 32-bit stream window and the in-word bit position. */
std::pair<VReg, VReg>
streamWindow(Builder &b, const LoopVars &v)
{
    VReg byte_off = b.lsri(v.bitpos, 3);
    VReg word = b.ld32r(v.sp, byte_off);
    VReg in_word = b.iandi(v.bitpos, 7);
    return {word, in_word};
}

tir::TirProgram
buildOptimized(unsigned num_bins)
{
    Builder b;
    LoopVars v = prologue(b, num_bins);

    // (value, range) packed DUAL16, kept in a register across bins.
    VReg vr = b.var();
    VReg first = b.ld32d(b.imm32(int32_t(stream)), 0);
    VReg value0 = b.lsr(first, b.imm32(23)); // first 9 bits
    b.assign(vr, b.pack16lsb(value0, b.imm32(510)));

    // Software-pipelined context fetch: the model state of the next
    // bin loads while the current bin decodes; a same-context check
    // forwards the freshly updated state when needed.
    VReg seq_base = b.var(), ctx_base = b.var();
    VReg ctx_addr = b.var(), sm = b.var();
    b.assign(seq_base, b.imm32(int32_t(ctxSeq)));
    b.assign(ctx_base, b.imm32(int32_t(ctxArray)));
    VReg idx0 = b.ld8u(seq_base, 0);
    b.assign(ctx_addr, b.iadd(ctx_base, b.asli(idx0, 2)));
    b.assign(sm, b.ld32r(ctx_addr, b.zero()));
    b.setBlock(0);
    b.jmpi(v.loop);

    b.setBlock(v.loop);
    {
        // Prefetch the next bin's context (independent of the chain).
        VReg nidx = b.ld8u(b.iadd(seq_base, b.iaddi(v.bin, 1)));
        VReg naddr = b.iadd(ctx_base, b.asli(nidx, 2));
        VReg nsm = b.ld32r(naddr, b.zero());

        auto [word, in_word] = streamWindow(b, v);

        // The two-slot CABAC operations (paper Table 2).
        auto [vr2, sm2] = b.superCabacCtx(vr, in_word, word, sm);
        auto [pos2, bit] = b.superCabacStr(vr, in_word, sm);

        b.st32r(sm2, ctx_addr, b.zero());
        b.st8d(bit, v.outp, 0);
        b.assign(v.bitpos, b.iadd(b.isub(v.bitpos, in_word), pos2));
        b.assign(vr, vr2);
        VReg same = b.ieql(naddr, ctx_addr);
        b.assign(sm, nsm);
        b.assign(sm, sm2, same); // forward the just-updated state
        b.assign(ctx_addr, naddr);
        epilogue(b, v, num_bins);
    }
    return b.take();
}

tir::TirProgram
buildNonOptimized(unsigned num_bins)
{
    Builder b;
    LoopVars v = prologue(b, num_bins);

    VReg value = b.var();
    VReg range = b.var();
    VReg first = b.ld32d(b.imm32(int32_t(stream)), 0);
    b.assign(value, b.lsr(first, b.imm32(23)));
    b.assign(range, b.imm32(510));

    VReg seq_base = b.var(), ctx_base = b.var();
    VReg ctx_addr = b.var(), sm = b.var();
    b.assign(seq_base, b.imm32(int32_t(ctxSeq)));
    b.assign(ctx_base, b.imm32(int32_t(ctxArray)));
    VReg idx0 = b.ld8u(seq_base, 0);
    b.assign(ctx_addr, b.iadd(ctx_base, b.asli(idx0, 2)));
    b.assign(sm, b.ld32r(ctx_addr, b.zero()));
    b.setBlock(0);
    b.jmpi(v.loop);

    b.setBlock(v.loop);
    {
        // --- context maintenance (software-pipelined) ---------------
        VReg nidx = b.ld8u(b.iadd(seq_base, b.iaddi(v.bin, 1)));
        VReg naddr = b.iadd(ctx_base, b.asli(nidx, 2));
        VReg nsm = b.ld32r(naddr, b.zero());
        VReg state = b.lsri(sm, 16);
        VReg mps = b.iandi(sm, 1);

        // --- biari_decode_symbol (paper Fig. 2), plain operations ---
        VReg q = b.iandi(b.lsri(range, 6), 3);
        VReg lps_addr = b.iadd(b.iadd(b.imm32(int32_t(lpsTab)),
                                      b.asli(state, 2)),
                               q);
        VReg rlps = b.ld8u(lps_addr, 0);
        VReg temp = b.isub(range, rlps);
        VReg is_mps = b.ilesu(value, temp);
        VReg is_lps = b.ixor(is_mps, b.one());

        // Guarded updates for the MPS/LPS paths.
        b.assign(value, b.isub(value, temp), is_lps);
        b.assign(range, temp, is_mps);
        b.assign(range, rlps, is_lps);
        VReg bit = b.var();
        b.assign(bit, mps, is_mps);
        b.assign(bit, b.ixor(mps, b.one()), is_lps);
        VReg at_zero = b.ieqli(state, 0);
        VReg flip = b.iand(is_lps, at_zero);
        VReg mps2 = b.ixor(mps, flip);

        // State transition through the in-memory tables.
        VReg tab = b.var();
        b.assign(tab, b.imm32(int32_t(mpsNext)), is_mps);
        b.assign(tab, b.imm32(int32_t(lpsNext)), is_lps);
        VReg state2 = b.ld8u(b.iadd(tab, state));

        // --- renormalization (table-driven shift) -------------------
        VReg shift = b.ld8u(b.iadd(b.imm32(int32_t(normTab)), range));
        b.assign(range, b.asl(range, shift));
        auto [word, in_word] = streamWindow(b, v);
        VReg aligned = b.asl(word, in_word);
        VReg newbits =
            b.lsr(b.lsri(aligned, 1), b.isub(b.imm32(31), shift));
        b.assign(value,
                 b.iandi(b.ior(b.asl(value, shift), newbits), 0x3ff));
        b.assign(v.bitpos, b.iadd(v.bitpos, shift));

        // --- write-back and next-context forwarding -----------------
        VReg sm2 = b.pack16lsb(state2, mps2);
        b.st32r(sm2, ctx_addr, b.zero());
        b.st8d(bit, v.outp, 0);
        VReg same = b.ieql(naddr, ctx_addr);
        b.assign(sm, nsm);
        b.assign(sm, sm2, same);
        b.assign(ctx_addr, naddr);
        epilogue(b, v, num_bins);
    }
    return b.take();
}

} // namespace

tir::TirProgram
buildCabacDecode(unsigned num_bins, bool optimized)
{
    return optimized ? buildOptimized(num_bins)
                     : buildNonOptimized(num_bins);
}

void
stageCabacField(System &sys, const SyntheticField &field)
{
    sys.writeBytes(stream, field.stream.data(), field.stream.size());
    {
        // One guard byte: the software-pipelined decode loop preloads
        // the context index of bin N before discovering the loop ends.
        std::vector<uint8_t> seq = field.ctxSequence;
        seq.push_back(0);
        sys.writeBytes(ctxSeq, seq.data(), seq.size());
    }
    for (size_t i = 0; i < field.initCtx.size(); ++i) {
        sys.poke32(ctxArray + Addr(4 * i),
                   dual16(field.initCtx[i].state, field.initCtx[i].mps));
    }
    // LPS range table: 64 x 4 bytes.
    std::vector<uint8_t> lps;
    for (unsigned s = 0; s < 64; ++s) {
        for (unsigned q = 0; q < 4; ++q)
            lps.push_back(lpsRangeTable[s][q]);
    }
    sys.writeBytes(lpsTab, lps.data(), lps.size());
    sys.writeBytes(mpsNext, mpsNextStateTable, 64);
    sys.writeBytes(lpsNext, lpsNextStateTable, 64);
    // Renormalization shift table.
    std::vector<uint8_t> norm(512, 0);
    for (unsigned r = 1; r < 512; ++r) {
        unsigned s = 0;
        while ((r << s) < 256)
            ++s;
        norm[r] = uint8_t(s);
    }
    sys.writeBytes(normTab, norm.data(), norm.size());
    // Clear the output region.
    std::vector<uint8_t> zero(field.bins.size(), 0xEE);
    sys.writeBytes(outBits, zero.data(), zero.size());
}

bool
verifyCabacBits(System &sys, const SyntheticField &field, std::string &err)
{
    std::vector<uint8_t> got(field.bins.size());
    sys.readBytes(outBits, got.data(), got.size());
    for (size_t i = 0; i < field.bins.size(); ++i) {
        if (got[i] != field.bins[i]) {
            err = strfmt("bin %zu: want %u got %u", i, field.bins[i],
                         got[i]);
            return false;
        }
    }
    return true;
}

} // namespace tm3270::workloads
