/**
 * @file
 * The workload suite (paper Table 5): each workload bundles a TIR
 * kernel generator, memory staging, and a host-reference verifier so
 * every simulated run is checked bit-exactly against C++ reference
 * code.
 */

#ifndef TM3270_WORKLOADS_WORKLOAD_HH
#define TM3270_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "core/system.hh"
#include "tir/builder.hh"
#include "tir/scheduler.hh"

namespace tm3270::workloads
{

/** One benchmark kernel/application. */
struct Workload
{
    std::string name;
    std::string description;
    /** Build the kernel IR (identical across configurations; the
     *  scheduler retargets it — "re-compilation", paper §6). */
    std::function<tir::TirProgram()> build;
    /** Stage input data in simulated memory. */
    std::function<void(System &)> init;
    /** Verify simulated memory against the host reference. */
    std::function<bool(System &, std::string &)> verify;
};

/**
 * Structured outcome of one workload run: verification failures and
 * non-halting programs are reported, not thrown, so sweep worker
 * threads can keep going when one job goes bad.
 */
struct RunOutcome
{
    bool ok = false;
    std::string error; ///< empty iff ok
    RunResult run;     ///< valid whenever the program executed
};

/**
 * Run an already-compiled @p prog of workload @p w on @p sys (staging
 * inputs, running, verifying against the host reference). Never calls
 * fatal(): the result is structured. The caller owns @p sys and can
 * harvest stats from it afterwards.
 */
RunOutcome runWorkloadOn(System &sys, const Workload &w,
                         const EncodedProgram &prog);

/** Run @p w on a machine configuration; fatal on verify failure. */
RunResult runWorkload(const Workload &w, const MachineConfig &cfg,
                      bool use_prefetch_regions = false);

// Table 5 kernels/applications.
Workload memsetWorkload();
Workload memcpyWorkload();
Workload filterWorkload();
Workload rgb2yuvWorkload();
Workload rgb2cmykWorkload();
Workload rgb2yiqWorkload();
Workload mpeg2Workload(char variant); ///< 'a' | 'b' | 'c'
Workload filmdetWorkload();
Workload majoritySelWorkload();

/** The full Table 5 suite in paper order. */
std::vector<Workload> table5Suite();

/** MP3 decoder proxy (subband synthesis; Table 4 power workload). */
Workload mp3Workload();

/** Fill simulated memory with deterministic pseudo-random bytes. */
void fillRandom(System &sys, Addr base, size_t len, uint64_t seed);

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_WORKLOAD_HH
