#include "workloads/workload.hh"

#include "support/logging.hh"
#include "support/prof.hh"

namespace tm3270::workloads
{

RunOutcome
runWorkloadOn(System &sys, const Workload &w, const EncodedProgram &prog)
{
    RunOutcome o;
    {
        TM_PROF_SCOPE(prof::Scope::Stage);
        w.init(sys);
    }
    o.run = sys.runProgram(prog);
    if (!o.run.halted) {
        o.error = strfmt("workload %s did not halt", w.name.c_str());
        return o;
    }
    TM_PROF_SCOPE(prof::Scope::Verify);
    std::string err;
    if (!w.verify(sys, err)) {
        o.error = strfmt("workload %s failed verification: %s",
                         w.name.c_str(), err.c_str());
        return o;
    }
    o.ok = true;
    return o;
}

RunResult
runWorkload(const Workload &w, const MachineConfig &cfg,
            bool use_prefetch_regions)
{
    System sys(cfg);
    (void)use_prefetch_regions; // kernels program regions via MMIO
    tir::CompiledProgram cp = tir::compile(w.build(), cfg);
    RunOutcome o = runWorkloadOn(sys, w, cp.encoded);
    if (!o.ok)
        fatal("%s", o.error.c_str());
    return o.run;
}

std::vector<Workload>
table5Suite()
{
    return {
        memsetWorkload(),    memcpyWorkload(),   filterWorkload(),
        rgb2yuvWorkload(),   rgb2cmykWorkload(), rgb2yiqWorkload(),
        mpeg2Workload('a'),  mpeg2Workload('b'), mpeg2Workload('c'),
        filmdetWorkload(),   majoritySelWorkload(),
    };
}

} // namespace tm3270::workloads
