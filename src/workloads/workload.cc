#include "workloads/workload.hh"

#include "support/logging.hh"

namespace tm3270::workloads
{

RunResult
runWorkload(const Workload &w, const MachineConfig &cfg,
            bool use_prefetch_regions)
{
    System sys(cfg);
    w.init(sys);
    (void)use_prefetch_regions; // kernels program regions via MMIO
    tir::CompiledProgram cp = tir::compile(w.build(), cfg);
    RunResult r = sys.runProgram(cp.encoded);
    tm_assert(r.halted, "workload %s did not halt", w.name.c_str());
    std::string err;
    if (!w.verify(sys, err))
        fatal("workload %s failed verification: %s", w.name.c_str(),
              err.c_str());
    return r;
}

std::vector<Workload>
table5Suite()
{
    return {
        memsetWorkload(),    memcpyWorkload(),   filterWorkload(),
        rgb2yuvWorkload(),   rgb2cmykWorkload(), rgb2yiqWorkload(),
        mpeg2Workload('a'),  mpeg2Workload('b'), mpeg2Workload('c'),
        filmdetWorkload(),   majoritySelWorkload(),
    };
}

} // namespace tm3270::workloads
