/**
 * @file
 * memset and memcpy kernels (paper Table 5): 64 KByte region
 * operations. memcpy is the kernel with the largest A->B gain in the
 * paper because of the TM3270's allocate-on-write-miss policy.
 */

#include <random>

#include "support/logging.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr Addr srcBase = 0x00100000;
constexpr Addr dstBase = 0x00200000;
constexpr unsigned regionBytes = 64 * 1024;
constexpr Word memsetPattern = 0xA5A5A5A5u;

tir::TirProgram
buildMemset()
{
    using namespace tir;
    Builder b;
    VReg dst = b.var();
    VReg end = b.var();
    VReg val = b.var();
    b.assign(dst, b.imm32(int32_t(dstBase)));
    b.assign(end, b.imm32(int32_t(dstBase + regionBytes)));
    b.assign(val, b.imm32(int32_t(memsetPattern)));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    for (int off = 0; off < 64; off += 4)
        b.st32d(val, dst, off);
    b.assign(dst, b.iaddi(dst, 64));
    VReg cond = b.ilesu(dst, end);
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

tir::TirProgram
buildMemcpy()
{
    using namespace tir;
    Builder b;
    VReg src = b.var();
    VReg dst = b.var();
    VReg end = b.var();
    b.assign(src, b.imm32(int32_t(srcBase)));
    b.assign(dst, b.imm32(int32_t(dstBase)));
    b.assign(end, b.imm32(int32_t(srcBase + regionBytes)));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    std::array<VReg, 8> t;
    for (int i = 0; i < 8; ++i)
        t[size_t(i)] = b.ld32d(src, i * 4);
    for (int i = 0; i < 8; ++i)
        b.st32d(t[size_t(i)], dst, i * 4);
    b.assign(src, b.iaddi(src, 32));
    b.assign(dst, b.iaddi(dst, 32));
    VReg cond = b.ilesu(src, end);
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

} // namespace

void
fillRandom(System &sys, Addr base, size_t len, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<uint8_t> buf(len);
    for (auto &v : buf)
        v = static_cast<uint8_t>(rng());
    sys.writeBytes(base, buf.data(), len);
}

Workload
memsetWorkload()
{
    Workload w;
    w.name = "memset";
    w.description = "Sets a 64 Kbyte region to a pre-defined value.";
    w.build = buildMemset;
    w.init = [](System &) {};
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> buf(regionBytes);
        sys.readBytes(dstBase, buf.data(), buf.size());
        for (size_t i = 0; i < buf.size(); ++i) {
            if (buf[i] != 0xA5) {
                err = strfmt("byte %zu is 0x%02x", i, buf[i]);
                return false;
            }
        }
        return true;
    };
    return w;
}

Workload
memcpyWorkload()
{
    Workload w;
    w.name = "memcpy";
    w.description = "Copies a 64 Kbyte region.";
    w.build = buildMemcpy;
    w.init = [](System &sys) { fillRandom(sys, srcBase, regionBytes, 1); };
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> a(regionBytes), c(regionBytes);
        sys.readBytes(srcBase, a.data(), a.size());
        sys.readBytes(dstBase, c.data(), c.size());
        if (a != c) {
            err = "copied region differs from source";
            return false;
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
