/**
 * @file
 * Motion estimation kernel (paper §6 / reference [12]): full-search
 * SAD block matching plus half-pel refinement. Build-time feature
 * flags select the TM3270-specific optimizations whose combined gain
 * the paper reports as more than 2x:
 *
 *  - unaligned: penalty-free non-aligned loads instead of the aligned
 *    load + guarded funnel-shift selection sequence;
 *  - fracLoad: LD_FRAC8 collapsed loads for half-pel interpolation
 *    instead of two loads + quadavg;
 *  - prefetch: a region prefetcher programmed over the reference
 *    window.
 */

#ifndef TM3270_WORKLOADS_MOTION_EST_HH
#define TM3270_WORKLOADS_MOTION_EST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hh"
#include "tir/tir.hh"

namespace tm3270::workloads
{

/** Kernel feature selection. */
struct MeFlags
{
    bool unaligned = false;
    bool fracLoad = false;
    bool prefetch = false;
};

/** Geometry of the motion-estimation experiment. */
namespace me_geom
{
inline constexpr unsigned refW = 512;
inline constexpr unsigned refH = 256;
inline constexpr unsigned blockSize = 8;
inline constexpr unsigned numBlocks = 24;
inline constexpr unsigned searchR = 4; ///< +/- pixels, 9x9 candidates
inline constexpr Addr refBase = 0x00100000;
inline constexpr Addr curBase = 0x00140000;
inline constexpr Addr outBase = 0x00180000; ///< 6 words per block
} // namespace me_geom

/** Per-block result record (matches the kernel's output words). */
struct MeResult
{
    uint32_t bestIdx;   ///< winning candidate index (dy * 9 + dx)
    uint32_t bestSad;
    uint32_t halfSadL;  ///< half-pel SAD left of the winner
    uint32_t halfSadR;  ///< half-pel SAD right of the winner
    uint32_t halfSadV;  ///< half-pel SAD below (vertical)
    uint32_t halfSadD;  ///< half-pel SAD diagonal (right-down)
};

/** Build the kernel. */
tir::TirProgram buildMotionEstimation(const MeFlags &flags);

/** Stage reference frame and current blocks. */
void stageMotionEstimation(System &sys, uint64_t seed);

/** Host reference search (bit-exact against the kernel). */
std::vector<MeResult> referenceMotionEstimation(uint64_t seed);

/** Verify the kernel's output records. */
bool verifyMotionEstimation(System &sys, uint64_t seed, std::string &err);

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_MOTION_EST_HH
