#include "workloads/upconv.hh"

#include <random>

#include "core/mmio.hh"
#include "support/logging.hh"
#include "tir/builder.hh"
#include "workloads/kernel_util.hh"

namespace tm3270::workloads
{

namespace
{

using namespace upconv_geom;
using tir::Builder;
using tir::VReg;

constexpr unsigned gridCols = W / blockSize - 2; // 30, one-block margin
constexpr unsigned gridRows = H / blockSize - 2; // 6
constexpr unsigned numBlocks = gridCols * gridRows;

/** Half-pel interpolated word (frac = 8) at p + off. */
VReg
halfPel(Builder &b, const UpconvFlags &f, VReg p, int32_t off,
        const UnalignedCtx &u0, const UnalignedCtx &u1)
{
    if (f.newOps)
        return b.ldFrac8(b.iaddi(p, off), b.imm32(8));
    VReg a = loadWordMaybeUnaligned(b, false, p, off, u0);
    VReg p1_unused = b.zero();
    (void)p1_unused;
    VReg c = loadWordMaybeUnaligned(b, false, p, off, u1);
    // u1 is the context of p + 1; its aligned base differs, so the
    // second load actually reads the word one byte to the right.
    return b.quadavg(a, c);
}

tir::TirProgram
buildKernel(const UpconvFlags &f)
{
    Builder b;
    VReg blk = b.var();
    VReg mvp = b.var();
    b.assign(blk, b.imm32(0));
    b.assign(mvp, b.imm32(int32_t(mvBase)));

    if (f.prefetch) {
        VReg mmio = b.imm32(int32_t(mmio_map::pfRegion));
        b.st32d(b.imm32(int32_t(prevBase)), mmio, 0x00);
        b.st32d(b.imm32(int32_t(prevBase + W * H)), mmio, 0x04);
        b.st32d(b.imm32(int32_t(W)), mmio, 0x08);
        b.st32d(b.imm32(int32_t(nextBase)), mmio, 0x10);
        b.st32d(b.imm32(int32_t(nextBase + W * H)), mmio, 0x14);
        b.st32d(b.imm32(int32_t(W)), mmio, 0x18);
    }

    int block_loop = b.newBlock();
    int done = b.newBlock();
    b.setBlock(0);
    b.jmpi(block_loop);

    b.setBlock(block_loop);
    {
        // Block coordinates: x = (1 + blk % 30) * 8, y = (1 + blk/30)*8.
        VReg col = b.var(); // maintained incrementally
        VReg rowv = b.var();
        (void)col;
        (void)rowv;
        // Compute x/y from blk with multiply (30 is not a power of 2).
        VReg by = b.var();
        // by = blk / 30 via multiply-shift: (blk * 0x8889) >> 20 is
        // exact for blk < 2^16 when dividing by 30.
        b.assign(by, b.lsri(b.imul(blk, b.imm32(0x8889)), 20));
        VReg bx = b.isub(blk, b.imul(by, b.imm32(int32_t(gridCols))));
        VReg x = b.asli(b.iaddi(bx, 1), 3);
        VReg y = b.asli(b.iaddi(by, 1), 3);

        VReg mvx = b.ld8s(mvp, 0); // half-pels, odd
        VReg mvy = b.ld8s(mvp, 1);
        VReg xi = b.asri(mvx, 1);

        VReg rowoff = b.asli(y, 8); // y * W
        VReg p_prev = b.iadd(
            b.iadd(b.imm32(int32_t(prevBase)), rowoff),
            b.iadd(b.iadd(x, xi), b.asli(mvy, 8)));
        VReg p_next = b.iadd(
            b.iadd(b.imm32(int32_t(nextBase)), rowoff),
            b.isub(b.isub(x, b.iaddi(xi, 1)), b.asli(mvy, 8)));
        VReg p_out =
            b.iadd(b.iadd(b.imm32(int32_t(outBase)), rowoff), x);

        UnalignedCtx up0 = makeUnalignedCtx(b, p_prev);
        UnalignedCtx up1 = makeUnalignedCtx(b, b.iaddi(p_prev, 1));
        UnalignedCtx un0 = makeUnalignedCtx(b, p_next);
        UnalignedCtx un1 = makeUnalignedCtx(b, b.iaddi(p_next, 1));

        for (unsigned r = 0; r < blockSize; ++r) {
            for (unsigned w = 0; w < 2; ++w) {
                int32_t off = int32_t(r * W + w * 4);
                VReg hp = halfPel(b, f, p_prev, off, up0, up1);
                VReg hn = halfPel(b, f, p_next, off, un0, un1);
                b.st32d(b.quadavg(hp, hn), p_out, off);
            }
        }

        b.assign(blk, b.iaddi(blk, 1));
        b.assign(mvp, b.iaddi(mvp, 2));
        VReg more = b.ilesi(blk, int32_t(numBlocks));
        b.jmpt(more, block_loop);
    }

    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

std::vector<uint8_t>
makeField(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<uint8_t> v(W * H);
    for (auto &p : v)
        p = uint8_t(rng());
    return v;
}

std::vector<int8_t>
makeMvs(uint64_t seed)
{
    std::mt19937_64 rng(seed ^ 0xABCD);
    std::vector<int8_t> mv(numBlocks * 2);
    constexpr int8_t xchoice[4] = {-3, -1, 1, 3}; // odd: always half-pel
    for (unsigned i = 0; i < numBlocks; ++i) {
        mv[2 * i] = xchoice[rng() % 4];
        mv[2 * i + 1] = int8_t(int(rng() % 5) - 2);
    }
    return mv;
}

} // namespace

tir::TirProgram
buildUpconversion(const UpconvFlags &flags)
{
    return buildKernel(flags);
}

void
stageUpconversion(System &sys, uint64_t seed)
{
    auto prev = makeField(seed);
    auto next = makeField(seed + 1);
    auto mvs = makeMvs(seed);
    sys.writeBytes(prevBase, prev.data(), prev.size());
    sys.writeBytes(nextBase, next.data(), next.size());
    sys.writeBytes(mvBase, mvs.data(), mvs.size());
}

bool
verifyUpconversion(System &sys, uint64_t seed, std::string &err)
{
    auto prev = makeField(seed);
    auto next = makeField(seed + 1);
    auto mvs = makeMvs(seed);
    std::vector<uint8_t> got(W * H);
    sys.readBytes(outBase, got.data(), got.size());

    for (unsigned i = 0; i < numBlocks; ++i) {
        unsigned bx = (1 + i % gridCols) * blockSize;
        unsigned by = (1 + i / gridCols) * blockSize;
        int mvx = mvs[2 * i], mvy = mvs[2 * i + 1];
        int xi = mvx >> 1;
        for (unsigned r = 0; r < blockSize; ++r) {
            for (unsigned c = 0; c < blockSize; ++c) {
                size_t pp = size_t((int(by + r) + mvy) * int(W) +
                                   int(bx + c) + xi);
                size_t pn = size_t((int(by + r) - mvy) * int(W) +
                                   int(bx + c) - xi - 1);
                int hp = (prev[pp] + prev[pp + 1] + 1) >> 1;
                int hn = (next[pn] + next[pn + 1] + 1) >> 1;
                uint8_t want = uint8_t((hp + hn + 1) >> 1);
                uint8_t g = got[(by + r) * W + bx + c];
                if (g != want) {
                    err = strfmt("block %u px (%u,%u): want %u got %u",
                                 i, r, c, want, g);
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace tm3270::workloads
