/**
 * @file
 * MP3 decoder proxy (paper Table 4 power workload: 384 kbit/s stereo
 * decoding at 44.1 kHz). The dominant MP3 decode kernel is the
 * polyphase synthesis filterbank: windowed multiply-accumulate over
 * 16-bit samples. The proxy runs that kernel shape — dual-16 scaling
 * plus ifir16 dot products with coefficients held in registers — over
 * a cache-resident working set, reproducing the paper's reported
 * OPI ~ 4.5 and CPI ~ 1.0 operating point.
 */

#include <random>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr Addr sampleBase = 0x00100000;
constexpr Addr outBase = 0x00120000;
constexpr unsigned tapsPerBand = 16;   ///< 16 dual-16 words = 32 taps
constexpr unsigned windowGranules = 64; ///< circulating window buffer
constexpr unsigned numGranules = 768;

/** Deterministic 16-bit test vectors (the circulating window). */
std::vector<int16_t>
makeSamples()
{
    std::mt19937_64 rng(11);
    std::vector<int16_t> v(windowGranules * tapsPerBand * 2);
    for (auto &s : v)
        s = int16_t(int(rng() % 4096) - 2048);
    return v;
}

/** Per-tap scale factors, held in registers by the kernel. */
int32_t
scaleAt(unsigned tap)
{
    std::mt19937_64 rng(12 + tap);
    int hi = int(rng() % 64) + 1;
    int lo = int(rng() % 64) + 1;
    return int32_t(dual16(Word(uint16_t(hi)), Word(uint16_t(lo))));
}

/** Window coefficients baked into the kernel as immediates. */
int32_t
coefAt(unsigned bank, unsigned tap)
{
    std::mt19937_64 rng(13 + bank * 131 + tap);
    int hi = int(rng() % 255) - 127;
    int lo = int(rng() % 255) - 127;
    return int32_t(dual16(Word(uint16_t(hi)), Word(uint16_t(lo))));
}

tir::TirProgram
buildMp3()
{
    using namespace tir;
    Builder b;
    VReg gr = b.var();
    VReg base = b.var();
    VReg out = b.var();
    b.assign(gr, b.imm32(0));
    b.assign(base, b.imm32(int32_t(sampleBase)));
    b.assign(out, b.imm32(int32_t(outBase)));

    // Coefficients and scale factors live in registers for the whole
    // run, as a production synthesis filterbank would keep them.
    std::vector<VReg> coefs(tapsPerBand), coefs2(tapsPerBand),
        scales(tapsPerBand);
    for (unsigned t = 0; t < tapsPerBand; ++t) {
        coefs[t] = b.var();
        coefs2[t] = b.var();
        scales[t] = b.var();
        b.assign(coefs[t], b.imm32(coefAt(0, t)));
        b.assign(coefs2[t], b.imm32(coefAt(1, t)));
        b.assign(scales[t], b.imm32(scaleAt(t)));
    }

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    // One granule: 32 taps of windowed MAC over both stereo windows,
    // with dual-16 scaling, over the circulating sample buffer.
    b.setBlock(loop);
    {
        VReg cond = b.ilesi(gr, int32_t(numGranules - 1));
        // sp = base + (gr * 64) mod window bytes
        VReg sp = b.iadd(
            base, b.iandi(b.asli(gr, 6),
                          int32_t(windowGranules * 64 - 1) & 0xfff));
        b.assign(gr, b.iaddi(gr, 1));
        VReg accA = b.var(), accB = b.var(), accC = b.var();
        b.assign(accA, b.imm32(0));
        b.assign(accB, b.imm32(0));
        b.assign(accC, b.imm32(0));
        for (unsigned t = 0; t < tapsPerBand; ++t) {
            VReg smp = b.ld32d(sp, int32_t(4 * t));
            VReg scaled = b.dspidualmul(smp, scales[t]);
            VReg env = b.dspidualadd(scaled, smp);
            VReg dotA = b.ifir16(scaled, coefs[t]);
            VReg dotB = b.ifir16(env, coefs2[t]);
            // Envelope magnitude term (windowing side-chain).
            VReg diff = b.emit(Opcode::DSPIDUALSUB, env, scaled);
            VReg mag = b.emit(Opcode::DSPIDUALABS, diff, b.zero());
            b.assign(accC, b.iadd(accC, mag));
            if (t % 2 == 0) {
                b.assign(accA, b.iadd(accA, dotA));
                b.assign(accB, b.iadd(accB, dotB));
            } else {
                b.assign(accB, b.iadd(accB, dotA));
                b.assign(accA, b.iadd(accA, dotB));
            }
        }
        b.st32d(b.iadd(b.iadd(accA, accB), accC), out, 0);
        b.assign(out, b.iaddi(out, 4));
        b.jmpt(cond, loop);
    }

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

int32_t
referenceGranule(const std::vector<int16_t> &samples, unsigned gr)
{
    auto clip16 = [](int64_t v) {
        return int(std::min<int64_t>(std::max<int64_t>(v, -32768), 32767));
    };
    int32_t acc = 0;
    unsigned slot = gr % windowGranules;
    for (unsigned t = 0; t < tapsPerBand; ++t) {
        size_t si = size_t(slot) * tapsPerBand * 2 + 2 * t;
        int hi = samples[si], lo = samples[si + 1];
        int32_t sw = scaleAt(t);
        auto shi = int16_t(uint32_t(sw) >> 16);
        auto slo = int16_t(uint32_t(sw) & 0xffff);
        int sch = clip16(int64_t(hi) * shi);
        int scl = clip16(int64_t(lo) * slo);
        int eh = clip16(int64_t(sch) + hi);
        int el = clip16(int64_t(scl) + lo);
        int32_t c1 = coefAt(0, t), c2 = coefAt(1, t);
        auto h16 = [](int32_t w) { return int(int16_t(uint32_t(w) >> 16)); };
        auto l16 = [](int32_t w) { return int(int16_t(uint32_t(w) & 0xffff)); };
        int32_t dotA = int32_t(sch * h16(c1) + scl * l16(c1));
        int32_t dotB = int32_t(eh * h16(c2) + el * l16(c2));
        int dh = clip16(int64_t(eh) - sch), dl = clip16(int64_t(el) - scl);
        int mh = clip16(dh < 0 ? -int64_t(dh) : int64_t(dh));
        int ml = clip16(dl < 0 ? -int64_t(dl) : int64_t(dl));
        int32_t mag = int32_t((uint32_t(uint16_t(mh)) << 16) |
                              uint16_t(ml));
        acc += dotA + dotB + mag;
    }
    return acc;
}

} // namespace

Workload
mp3Workload()
{
    Workload w;
    w.name = "mp3";
    w.description = "MP3 decoder proxy (polyphase synthesis MAC).";
    w.build = buildMp3;
    w.init = [](System &sys) {
        auto samples = makeSamples();
        std::vector<uint8_t> sb;
        for (int16_t s : samples) {
            sb.push_back(uint8_t(uint16_t(s) >> 8));
            sb.push_back(uint8_t(uint16_t(s)));
        }
        sys.writeBytes(sampleBase, sb.data(), sb.size());
    };
    w.verify = [](System &sys, std::string &err) {
        auto samples = makeSamples();
        for (unsigned g = 0; g < numGranules; ++g) {
            Word want = Word(referenceGranule(samples, g));
            Word got = sys.peek32(outBase + 4 * g);
            if (want != got) {
                err = strfmt("granule %u: want 0x%08x got 0x%08x", g,
                             want, got);
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
