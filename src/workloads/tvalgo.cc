/**
 * @file
 * TV-set algorithms of paper Table 5: "filmdet" (film-mode detection:
 * field-difference SAD accumulation over two fields) and
 * "majority_sel" (de-interlacer: per-pixel median of three lines via
 * quad min/max).
 */

#include <random>

#include "support/logging.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr unsigned W = 512;
constexpr unsigned Hfield = 240;
constexpr Addr fieldA = 0x00300000;
constexpr Addr fieldB = 0x00340000;
constexpr Addr fieldC = 0x00380000;
constexpr Addr outBase = 0x003C0000;
constexpr unsigned fieldBytes = W * Hfield;

tir::TirProgram
buildFilmdet()
{
    using namespace tir;
    Builder b;
    VReg pa = b.var(), pb = b.var(), end = b.var();
    VReg acc0 = b.var(), acc1 = b.var(), acc2 = b.var(), acc3 = b.var();
    b.assign(pa, b.imm32(int32_t(fieldA)));
    b.assign(pb, b.imm32(int32_t(fieldB)));
    b.assign(end, b.imm32(int32_t(fieldA + fieldBytes)));
    for (VReg v : {acc0, acc1, acc2, acc3})
        b.assign(v, b.imm32(0));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg cond = b.ilesu(b.iaddi(pa, 16), end);
    VReg accs[4] = {acc0, acc1, acc2, acc3};
    for (int k = 0; k < 4; ++k) {
        VReg wa = b.ld32d(pa, 4 * k);
        VReg wb = b.ld32d(pb, 4 * k);
        b.assign(accs[k], b.iadd(accs[k], b.ume8uu(wa, wb)));
    }
    b.assign(pa, b.iaddi(pa, 16));
    b.assign(pb, b.iaddi(pb, 16));
    b.jmpt(cond, loop);

    int tail = b.newBlock();
    b.setBlock(tail);
    VReg sad = b.iadd(b.iadd(acc0, acc1), b.iadd(acc2, acc3));
    // Film decision: still field pair when SAD is under threshold.
    VReg film = b.ilesu(sad, b.imm32(int32_t(fieldBytes * 4)));
    VReg outp = b.imm32(int32_t(outBase));
    b.st32d(sad, outp, 0);
    b.st32d(film, outp, 4);
    b.halt(sad);
    return b.take();
}

tir::TirProgram
buildMajoritySel()
{
    using namespace tir;
    Builder b;
    VReg pa = b.var(), pb = b.var(), pc = b.var(), po = b.var();
    VReg end = b.var();
    b.assign(pa, b.imm32(int32_t(fieldA)));
    b.assign(pb, b.imm32(int32_t(fieldB)));
    b.assign(pc, b.imm32(int32_t(fieldC)));
    b.assign(po, b.imm32(int32_t(outBase)));
    b.assign(end, b.imm32(int32_t(fieldA + fieldBytes)));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg cond = b.ilesu(b.iaddi(pa, 8), end);
    for (int k = 0; k < 2; ++k) {
        VReg a = b.ld32d(pa, 4 * k);
        VReg bb = b.ld32d(pb, 4 * k);
        VReg c = b.ld32d(pc, 4 * k);
        // Per-byte median of three: max(min(a,b), min(max(a,b), c)).
        VReg mn = b.quadumin(a, bb);
        VReg mx = b.quadumax(a, bb);
        VReg med = b.quadumax(mn, b.quadumin(mx, c));
        b.st32d(med, po, 4 * k);
    }
    b.assign(pa, b.iaddi(pa, 8));
    b.assign(pb, b.iaddi(pb, 8));
    b.assign(pc, b.iaddi(pc, 8));
    b.assign(po, b.iaddi(po, 8));
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

} // namespace

Workload
filmdetWorkload()
{
    Workload w;
    w.name = "filmdet";
    w.description = "Film detection algorithm, as used in TV sets.";
    w.build = buildFilmdet;
    w.init = [](System &sys) {
        fillRandom(sys, fieldA, fieldBytes, 5);
        fillRandom(sys, fieldB, fieldBytes, 6);
    };
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> a(fieldBytes), bb(fieldBytes);
        sys.readBytes(fieldA, a.data(), a.size());
        sys.readBytes(fieldB, bb.data(), bb.size());
        uint32_t sad = 0;
        for (size_t i = 0; i < fieldBytes; ++i)
            sad += uint32_t(std::abs(int(a[i]) - int(bb[i])));
        if (sys.peek32(outBase) != sad) {
            err = strfmt("SAD mismatch: want %u got %u", sad,
                         sys.peek32(outBase));
            return false;
        }
        uint32_t film = sad < fieldBytes * 4 ? 1 : 0;
        if (sys.peek32(outBase + 4) != film) {
            err = "film decision mismatch";
            return false;
        }
        return true;
    };
    return w;
}

Workload
majoritySelWorkload()
{
    Workload w;
    w.name = "majority_sel";
    w.description = "De-interlacer algorithm, as used in TV sets.";
    w.build = buildMajoritySel;
    w.init = [](System &sys) {
        fillRandom(sys, fieldA, fieldBytes, 7);
        fillRandom(sys, fieldB, fieldBytes, 8);
        fillRandom(sys, fieldC, fieldBytes, 9);
    };
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> a(fieldBytes), bb(fieldBytes), c(fieldBytes),
            got(fieldBytes);
        sys.readBytes(fieldA, a.data(), a.size());
        sys.readBytes(fieldB, bb.data(), bb.size());
        sys.readBytes(fieldC, c.data(), c.size());
        sys.readBytes(outBase, got.data(), got.size());
        for (size_t i = 0; i < fieldBytes; ++i) {
            uint8_t mn = std::min(a[i], bb[i]);
            uint8_t mx = std::max(a[i], bb[i]);
            uint8_t want = std::max(mn, std::min(mx, c[i]));
            if (got[i] != want) {
                err = strfmt("pixel %zu: want %u got %u", i, want,
                             got[i]);
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
