/**
 * @file
 * MPEG2 8x8 texture pipeline kernel (paper §6 / reference [13]): a
 * two-stage 16-bit butterfly transform plus quantization scaling over
 * pairs of blocks processed in packed dual-16 lanes. The optimized
 * version maps each butterfly onto SUPER_DUALIMIX two-slot operations;
 * the paper reports ~50% improvement for the texture pipeline.
 */

#ifndef TM3270_WORKLOADS_TEXTURE_HH
#define TM3270_WORKLOADS_TEXTURE_HH

#include <string>

#include "core/system.hh"
#include "tir/tir.hh"

namespace tm3270::workloads
{

namespace texture_geom
{
inline constexpr unsigned numRows = 512; ///< 8 packed values per row
inline constexpr Addr inBase = 0x00100000;
inline constexpr Addr outBase = 0x00140000;
} // namespace texture_geom

/** Build the kernel; @p use_two_slot selects SUPER_DUALIMIX. */
tir::TirProgram buildTexturePipeline(bool use_two_slot);

void stageTexture(System &sys, uint64_t seed);

bool verifyTexture(System &sys, uint64_t seed, std::string &err);

} // namespace tm3270::workloads

#endif // TM3270_WORKLOADS_TEXTURE_HH
