/**
 * @file
 * EEMBC-consumer-style color conversion kernels (paper Table 5):
 * rgb2yuv, rgb2cmyk and rgb2yiq. Input is RGBX (4 bytes per pixel);
 * yuv/yiq outputs are planar bytes, cmyk output is packed words. The
 * matrix kernels use the ifir8ui byte dot product with coefficient
 * words held in registers.
 */

#include "support/logging.hh"
#include "support/saturate.hh"
#include "workloads/workload.hh"

namespace tm3270::workloads
{

namespace
{

constexpr Addr srcBase = 0x00100000;
constexpr Addr out0 = 0x00200000; // Y / C plane (cmyk packs all here)
constexpr Addr out1 = 0x00240000; // U / I plane
constexpr Addr out2 = 0x00280000; // V / Q plane
constexpr unsigned numPixels = 16 * 1024;

/** Coefficients scaled by 128 (>> 7), all within signed 8-bit. */
struct Matrix
{
    int c[3][3];
    int bias[3]; ///< added after the shift
};

constexpr Matrix yuvMatrix = {
    {{33, 65, 13}, {-19, -37, 56}, {56, -47, -9}},
    {0, 128, 128},
};

constexpr Matrix yiqMatrix = {
    {{38, 75, 15}, {76, -35, -41}, {27, -67, 40}},
    {0, 128, 128},
};

/** Pack one matrix row as an ifir8ui coefficient word (RGBX layout:
 *  R in the most significant byte, X unused). */
constexpr int32_t
coefWord(const int *row)
{
    return int32_t((uint32_t(uint8_t(row[0])) << 24) |
                   (uint32_t(uint8_t(row[1])) << 16) |
                   (uint32_t(uint8_t(row[2])) << 8));
}

tir::TirProgram
buildMatrixKernel(const Matrix &m)
{
    using namespace tir;
    Builder b;
    VReg src = b.var(), d0 = b.var(), d1 = b.var(), d2 = b.var();
    VReg end = b.var();
    VReg c0 = b.var(), c1 = b.var(), c2 = b.var();
    b.assign(src, b.imm32(int32_t(srcBase)));
    b.assign(d0, b.imm32(int32_t(out0)));
    b.assign(d1, b.imm32(int32_t(out1)));
    b.assign(d2, b.imm32(int32_t(out2)));
    b.assign(end, b.imm32(int32_t(out0 + numPixels)));
    b.assign(c0, b.imm32(coefWord(m.c[0])));
    b.assign(c1, b.imm32(coefWord(m.c[1])));
    b.assign(c2, b.imm32(coefWord(m.c[2])));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg cond = b.ilesu(b.iaddi(d0, 2), end);
    // Two pixels per iteration for ILP.
    for (int px = 0; px < 2; ++px) {
        VReg pix = b.ld32d(src, px * 4);
        VReg coefs[3] = {c0, c1, c2};
        VReg dsts[3] = {d0, d1, d2};
        for (int ch = 0; ch < 3; ++ch) {
            VReg dot = b.ifir8ui(pix, coefs[ch]);
            VReg v = b.iaddi(b.asri(b.iaddi(dot, 64), 7), m.bias[ch]);
            VReg clipped = b.uclipi(v, b.imm32(255));
            b.st8d(clipped, dsts[ch], px);
        }
    }
    b.assign(src, b.iaddi(src, 8));
    b.assign(d0, b.iaddi(d0, 2));
    b.assign(d1, b.iaddi(d1, 2));
    b.assign(d2, b.iaddi(d2, 2));
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

tir::TirProgram
buildCmyk()
{
    using namespace tir;
    Builder b;
    VReg src = b.var(), dst = b.var(), end = b.var(), ones = b.var();
    b.assign(src, b.imm32(int32_t(srcBase)));
    b.assign(dst, b.imm32(int32_t(out0)));
    b.assign(end, b.imm32(int32_t(srcBase + numPixels * 4)));
    b.assign(ones, b.imm32(int32_t(0xFFFFFF00u)));

    int loop = b.newBlock();
    b.setBlock(0);
    b.jmpi(loop);

    b.setBlock(loop);
    VReg cond = b.ilesu(b.iaddi(src, 4), end);
    VReg pix = b.ld32d(src, 0);
    // inv = [255-R, 255-G, 255-B, 0] per byte.
    VReg inv = b.emit(Opcode::QUADSUB, ones, pix);
    VReg c = b.ubytesel(inv, b.imm32(3));
    VReg mg = b.ubytesel(inv, b.imm32(2));
    VReg y = b.ubytesel(inv, b.imm32(1));
    VReg k = b.imin(b.imin(c, mg), y);
    VReg cc = b.isub(c, k);
    VReg mm = b.isub(mg, k);
    VReg yy = b.isub(y, k);
    VReg cm = b.emit(Opcode::PACKBYTES, cc, mm);
    VReg yk = b.emit(Opcode::PACKBYTES, yy, k);
    b.st32d(b.pack16lsb(cm, yk), dst, 0);
    b.assign(src, b.iaddi(src, 4));
    b.assign(dst, b.iaddi(dst, 4));
    b.jmpt(cond, loop);

    int done = b.newBlock();
    b.setBlock(done);
    b.halt(b.zero());
    return b.take();
}

void
referenceMatrix(const Matrix &m, const uint8_t *rgbx, uint8_t *p0,
                uint8_t *p1, uint8_t *p2, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        int r = rgbx[4 * i], g = rgbx[4 * i + 1], bb = rgbx[4 * i + 2];
        uint8_t *out[3] = {p0, p1, p2};
        for (int ch = 0; ch < 3; ++ch) {
            int v = ((m.c[ch][0] * r + m.c[ch][1] * g + m.c[ch][2] * bb +
                      64) >>
                     7) +
                    m.bias[ch];
            out[ch][i] = uint8_t(clipRange(v, 0, 255));
        }
    }
}

Workload
matrixWorkload(const char *name, const Matrix &m)
{
    Workload w;
    w.name = name;
    w.description = "RGB color-space conversion (EEMBC style).";
    w.build = [&m] { return buildMatrixKernel(m); };
    w.init = [](System &sys) {
        fillRandom(sys, srcBase, numPixels * 4, 3);
    };
    w.verify = [&m](System &sys, std::string &err) {
        std::vector<uint8_t> in(numPixels * 4);
        sys.readBytes(srcBase, in.data(), in.size());
        std::vector<uint8_t> w0(numPixels), w1(numPixels), w2(numPixels);
        referenceMatrix(m, in.data(), w0.data(), w1.data(), w2.data(),
                        numPixels);
        std::vector<uint8_t> g0(numPixels), g1(numPixels), g2(numPixels);
        sys.readBytes(out0, g0.data(), numPixels);
        sys.readBytes(out1, g1.data(), numPixels);
        sys.readBytes(out2, g2.data(), numPixels);
        if (w0 != g0 || w1 != g1 || w2 != g2) {
            err = "converted planes differ from reference";
            return false;
        }
        return true;
    };
    return w;
}

} // namespace

Workload
rgb2yuvWorkload()
{
    return matrixWorkload("rgb2yuv", yuvMatrix);
}

Workload
rgb2yiqWorkload()
{
    return matrixWorkload("rgb2yiq", yiqMatrix);
}

Workload
rgb2cmykWorkload()
{
    Workload w;
    w.name = "rgb2cmyk";
    w.description = "RGB to CMYK conversion (EEMBC style).";
    w.build = buildCmyk;
    w.init = [](System &sys) {
        fillRandom(sys, srcBase, numPixels * 4, 4);
    };
    w.verify = [](System &sys, std::string &err) {
        std::vector<uint8_t> in(numPixels * 4), got(numPixels * 4);
        sys.readBytes(srcBase, in.data(), in.size());
        sys.readBytes(out0, got.data(), got.size());
        for (size_t i = 0; i < numPixels; ++i) {
            int c = 255 - in[4 * i], m = 255 - in[4 * i + 1],
                y = 255 - in[4 * i + 2];
            int k = std::min(c, std::min(m, y));
            uint8_t want[4] = {uint8_t(c - k), uint8_t(m - k),
                               uint8_t(y - k), uint8_t(k)};
            for (int j = 0; j < 4; ++j) {
                if (got[4 * i + size_t(j)] != want[j]) {
                    err = strfmt("pixel %zu ch %d: want %u got %u", i, j,
                                 want[j], got[4 * i + size_t(j)]);
                    return false;
                }
            }
        }
        return true;
    };
    return w;
}

} // namespace tm3270::workloads
