/**
 * @file
 * VLIW program encoder: lays out and bit-packs a sequence of VLIW
 * instructions into the compressed binary format of formats.hh.
 */

#ifndef TM3270_ENCODE_ENCODER_HH
#define TM3270_ENCODE_ENCODER_HH

#include <cstdint>
#include <vector>

#include "encode/formats.hh"
#include "isa/operation.hh"
#include "support/types.hh"

namespace tm3270
{

/**
 * An encoded program: the binary image plus layout metadata.
 *
 * Branch operations in the input carry the *instruction index* of
 * their target in the immediate; encoding patches the immediate to the
 * target's byte offset within the image. The patched instruction list
 * is retained in @c insts.
 */
struct EncodedProgram
{
    /** Binary image; instruction 0 starts at byte 0. */
    std::vector<uint8_t> bytes;
    /** Byte offset of each instruction within the image. */
    std::vector<uint32_t> offsets;
    /** Instructions with branch immediates patched to byte offsets. */
    std::vector<VliwInst> insts;
    /** True for uncompressed (jump-target) instructions. */
    std::vector<bool> uncompressed;

    /** Encoded size in bytes of instruction @p i. */
    uint32_t
    sizeOf(unsigned i) const
    {
        return (i + 1 < offsets.size() ? offsets[i + 1]
                                       : uint32_t(bytes.size())) -
               offsets[i];
    }

    /** Instruction index whose encoding starts at byte @p offset. */
    int indexAt(uint32_t offset) const;
};

/**
 * Encode @p insts. @p jump_targets marks instructions that are branch
 * targets (instruction 0 is always treated as one); these are encoded
 * uncompressed.
 */
EncodedProgram encodeProgram(const std::vector<VliwInst> &insts,
                             const std::vector<bool> &jump_targets);

/** Convenience overload deriving the jump-target set from branches. */
EncodedProgram encodeProgram(const std::vector<VliwInst> &insts);

} // namespace tm3270

#endif // TM3270_ENCODE_ENCODER_HH
