#include "encode/formats.hh"

#include <array>
#include <vector>

#include "support/logging.hh"

namespace tm3270
{

namespace
{

/**
 * The compact-opcode table: every register-register opcode (ImmKind
 * None), in opcode order, capped at 64 entries. Both encoder and
 * decoder derive the identical table from the OpInfo metadata.
 */
const std::vector<Opcode> &
compactTable()
{
    static const std::vector<Opcode> table = [] {
        std::vector<Opcode> t;
        for (unsigned i = 1; i < numOpcodes; ++i) {
            auto op = static_cast<Opcode>(i);
            if (opInfo(op).imm == ImmKind::None && t.size() < 64)
                t.push_back(op);
        }
        return t;
    }();
    return table;
}

const std::array<int, numOpcodes> &
compactIndexTable()
{
    static const std::array<int, numOpcodes> table = [] {
        std::array<int, numOpcodes> t;
        t.fill(-1);
        const auto &ct = compactTable();
        for (unsigned i = 0; i < ct.size(); ++i)
            t[static_cast<unsigned>(ct[i])] = static_cast<int>(i);
        return t;
    }();
    return table;
}

} // namespace

unsigned
numCompactOpcodes()
{
    return static_cast<unsigned>(compactTable().size());
}

int
compactIndex(Opcode op)
{
    return compactIndexTable()[static_cast<unsigned>(op)];
}

Opcode
compactOpcode(unsigned idx)
{
    tm_assert(idx < compactTable().size(), "bad compact opcode index");
    return compactTable()[idx];
}

SlotFmt
selectFormat(const Operation &op)
{
    if (!op.used())
        return SlotFmt::Unused;

    const OpInfo &oi = op.info();

    if (oi.imm == ImmKind::None) {
        // 26-bit: implied r1 guard and registers below r64.
        bool small_regs = op.dst[0] < 64 && op.src[0] < 64 && op.src[1] < 64;
        if (op.guard == regOne && small_regs &&
            static_cast<unsigned>(op.opc) < 256) {
            return SlotFmt::Fmt26;
        }
        if (compactIndex(op.opc) >= 0)
            return SlotFmt::Fmt34;
        return SlotFmt::Fmt42;
    }
    // All immediate-carrying operations use the 42-bit format.
    return SlotFmt::Fmt42;
}

} // namespace tm3270
