#include "encode/decoder.hh"

#include "support/bitops.hh"
#include "support/bitstream.hh"
#include "support/logging.hh"

namespace tm3270
{

namespace
{

Operation
decodeOp(BitReader &r, SlotFmt fmt)
{
    Operation op;
    switch (fmt) {
      case SlotFmt::Fmt26: {
        auto opc = static_cast<unsigned>(r.get(8));
        if (opc >= numOpcodes)
            fatal("bad opcode %u in 26-bit encoding", opc);
        op.opc = static_cast<Opcode>(opc);
        op.guard = regOne;
        op.dst[0] = static_cast<RegIndex>(r.get(6));
        op.src[0] = static_cast<RegIndex>(r.get(6));
        op.src[1] = static_cast<RegIndex>(r.get(6));
        break;
      }
      case SlotFmt::Fmt34: {
        auto ci = static_cast<unsigned>(r.get(6));
        if (ci >= numCompactOpcodes())
            fatal("bad compact opcode %u", ci);
        op.opc = compactOpcode(ci);
        op.guard = static_cast<RegIndex>(r.get(7));
        op.dst[0] = static_cast<RegIndex>(r.get(7));
        op.src[0] = static_cast<RegIndex>(r.get(7));
        op.src[1] = static_cast<RegIndex>(r.get(7));
        break;
      }
      case SlotFmt::Fmt42: {
        auto opc = static_cast<unsigned>(r.get(9));
        if (opc >= numOpcodes)
            fatal("bad opcode %u in 42-bit encoding", opc);
        op.opc = static_cast<Opcode>(opc);
        op.guard = static_cast<RegIndex>(r.get(7));
        switch (opInfo(op.opc).imm) {
          case ImmKind::None:
            op.dst[0] = static_cast<RegIndex>(r.get(7));
            op.src[0] = static_cast<RegIndex>(r.get(7));
            op.src[1] = static_cast<RegIndex>(r.get(7));
            r.get(5);
            break;
          case ImmKind::Simm12:
            op.dst[0] = static_cast<RegIndex>(r.get(7));
            op.src[0] = static_cast<RegIndex>(r.get(7));
            op.imm = static_cast<int32_t>(sext(r.get(12), 12));
            break;
          case ImmKind::Uimm12:
            op.dst[0] = static_cast<RegIndex>(r.get(7));
            op.src[0] = static_cast<RegIndex>(r.get(7));
            op.imm = static_cast<int32_t>(r.get(12));
            break;
          case ImmKind::Imm16:
            op.dst[0] = static_cast<RegIndex>(r.get(7));
            op.imm = static_cast<int32_t>(r.get(16));
            r.get(3);
            break;
        }
        break;
      }
      default:
        panic("decodeOp on unused slot");
    }
    if (op.opc == Opcode::NOP) {
        // NOPs decode back to the canonical unused-slot operation.
        op = Operation();
    }
    return op;
}

/** Fold SUPER_ARGS companions back into their two-slot main op. */
void
mergeTwoSlot(VliwInst &inst)
{
    for (unsigned s = 0; s < numSlots; ++s) {
        Operation &op = inst.slot[s];
        if (!op.used() || !op.info().isTwoSlot)
            continue;
        if (s + 1 >= numSlots || inst.slot[s + 1].opc != Opcode::SUPER_ARGS)
            fatal("two-slot op %s lacks its companion",
                  std::string(opName(op.opc)).c_str());
        const Operation &args = inst.slot[s + 1];
        op.dst[1] = args.dst[0];
        op.src[2] = args.src[0];
        op.src[3] = args.src[1];
        inst.slot[s + 1] = Operation();
        ++s;
    }
    for (const auto &op : inst.slot) {
        if (op.opc == Opcode::SUPER_ARGS)
            fatal("orphan SUPER_ARGS companion");
    }
}

} // namespace

DecodedInst
decodeInst(const std::vector<uint8_t> &image, uint32_t offset,
           std::optional<uint16_t> templ)
{
    if (offset >= image.size())
        fatal("instruction fetch past end of image (offset %u)", offset);

    BitReader r(image);
    r.seekBits(size_t(offset) * 8);

    DecodedInst d;
    unsigned next_uncompressed = r.getBit();
    d.hasNextTemplate = !next_uncompressed;
    if (d.hasNextTemplate)
        d.nextTemplate = static_cast<uint16_t>(r.get(10));

    std::array<SlotFmt, numSlots> fmts;
    if (!templ.has_value()) {
        fmts.fill(SlotFmt::Fmt42);
    } else {
        uint16_t t = *templ;
        for (unsigned s = 0; s < numSlots; ++s) {
            fmts[s] = static_cast<SlotFmt>((t >> (2 * (numSlots - 1 - s)))
                                           & 3);
        }
    }

    for (unsigned s = 0; s < numSlots; ++s) {
        if (fmts[s] != SlotFmt::Unused)
            d.inst.slot[s] = decodeOp(r, fmts[s]);
    }
    mergeTwoSlot(d.inst);

    d.size = static_cast<uint32_t>((r.bitPos() - size_t(offset) * 8 + 7)
                                   / 8);
    return d;
}

std::vector<VliwInst>
decodeProgram(const std::vector<uint8_t> &image)
{
    std::vector<VliwInst> insts;
    uint32_t offset = 0;
    std::optional<uint16_t> templ; // instruction 0 is uncompressed
    while (offset < image.size()) {
        DecodedInst d = decodeInst(image, offset, templ);
        insts.push_back(d.inst);
        offset += d.size;
        templ = d.hasNextTemplate ? std::optional<uint16_t>(d.nextTemplate)
                                  : std::nullopt;
    }
    return insts;
}

} // namespace tm3270
