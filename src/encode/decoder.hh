/**
 * @file
 * VLIW instruction decoder: the model of the P-stage pre-decode logic.
 * Decodes one instruction from the binary image given either the
 * template announced by the previous instruction or, at a jump target,
 * no template (uncompressed decode).
 */

#ifndef TM3270_ENCODE_DECODER_HH
#define TM3270_ENCODE_DECODER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "encode/formats.hh"
#include "isa/operation.hh"
#include "support/types.hh"

namespace tm3270
{

/** One decoded instruction plus the chaining state for the next one. */
struct DecodedInst
{
    VliwInst inst;
    /** Encoded size in bytes (next instruction at offset + size). */
    uint32_t size = 0;
    /** Template for the next instruction, when present. */
    uint16_t nextTemplate = 0;
    /**
     * False when the encoding carries no template: the next sequential
     * instruction is a jump target and must be decoded uncompressed.
     */
    bool hasNextTemplate = false;
};

/**
 * Decode the instruction at byte @p offset of @p image.
 *
 * @param templ template announced by the predecessor; std::nullopt
 *              decodes an uncompressed (jump target) instruction.
 */
DecodedInst decodeInst(const std::vector<uint8_t> &image, uint32_t offset,
                       std::optional<uint16_t> templ);

/**
 * Decode a whole program linearly from offset 0 (instruction 0 is
 * always a jump target). Used by tests and the disassembler.
 */
std::vector<VliwInst> decodeProgram(const std::vector<uint8_t> &image);

} // namespace tm3270

#endif // TM3270_ENCODE_DECODER_HH
