/**
 * @file
 * Binary operation formats and the VLIW compression template scheme
 * (paper §2.1, Fig. 1).
 *
 * A VLIW instruction is encoded as:
 *
 *   [nextUncompressed:1] [template:10]? [op encodings...] [pad to byte]
 *
 * The 10-bit template holds five 2-bit compression sub-fields for issue
 * slots 1..5 of the *next* instruction (paper: "an instruction's
 * compression template is available one cycle before the instruction's
 * compressed encoding"). A sub-field selects the operation size:
 *
 *   00 -> 26-bit format   01 -> 34-bit format
 *   10 -> 42-bit format   11 -> issue slot unused
 *
 * Jump-target instructions are not compressed: all five slots use the
 * 42-bit format (unused slots hold 42-bit NOPs) and the *preceding*
 * instruction omits the template field, signalled by its leading
 * nextUncompressed bit. The paper's published size constraints hold:
 * an empty instruction costs 1 + 10 = 11 bits -> 2 bytes, a maximal
 * one 1 + 10 + 5*42 = 221 bits -> 28 bytes.
 *
 * Operation formats (the exact TriMedia field layout is proprietary;
 * this layout is our documented substitution and satisfies every
 * published constraint):
 *
 *   26-bit: [opc:8][dst:6][s1:6][s2:6]
 *           guard is implied r1; registers must be < r64; no
 *           immediate; opcode value < 256.
 *   34-bit: [copc:6][guard:7][dst:7][s1:7][s2:7]
 *           copc indexes the compact-opcode table (the at most 64
 *           register-register opcodes); full guards and registers.
 *   42-bit: [opc:9][guard:7] then, keyed on the opcode's ImmKind:
 *           None:   [dst:7][s1:7][s2:7][pad:5]
 *           S/Uimm: [dst:7][s1:7][imm:12]
 *           Imm16:  [dst:7][imm:16][pad:3]
 *
 * Two-slot operations (paper §2.2.1) encode their first slot with the
 * main opcode carrying (dst1, s1, s2) and place a SUPER_ARGS companion
 * in the next slot carrying (dst2, s3, s4).
 */

#ifndef TM3270_ENCODE_FORMATS_HH
#define TM3270_ENCODE_FORMATS_HH

#include <cstdint>

#include "isa/operation.hh"

namespace tm3270
{

/** Per-slot compression template values. */
enum class SlotFmt : uint8_t
{
    Fmt26 = 0,
    Fmt34 = 1,
    Fmt42 = 2,
    Unused = 3,
};

/** Bit width of an operation encoding in format @p f. */
constexpr unsigned
fmtBits(SlotFmt f)
{
    switch (f) {
      case SlotFmt::Fmt26: return 26;
      case SlotFmt::Fmt34: return 34;
      case SlotFmt::Fmt42: return 42;
      default: return 0;
    }
}

/** Number of opcodes eligible for the compact (34-bit) format. */
unsigned numCompactOpcodes();

/** Compact index for @p op, or -1 when the opcode is not compact. */
int compactIndex(Opcode op);

/** Opcode for compact index @p idx. */
Opcode compactOpcode(unsigned idx);

/** The smallest format that can represent @p op (Unused for NOP). */
SlotFmt selectFormat(const Operation &op);

} // namespace tm3270

#endif // TM3270_ENCODE_FORMATS_HH
