#include "encode/encoder.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/bitstream.hh"
#include "support/logging.hh"

namespace tm3270
{

namespace
{

/** The main-slot view of a (possibly two-slot) operation. */
Operation
mainView(const Operation &op)
{
    Operation m = op;
    m.dst[1] = 0;
    m.src[2] = m.src[3] = 0;
    return m;
}

/** The companion SUPER_ARGS operation for a two-slot operation. */
Operation
companionView(const Operation &op)
{
    Operation c;
    c.opc = Opcode::SUPER_ARGS;
    c.guard = regOne;
    c.dst[0] = op.dst[1];
    c.src[0] = op.src[2];
    c.src[1] = op.src[3];
    return c;
}

/**
 * Expand an instruction into its five encoded slot operations
 * (materializing SUPER_ARGS companions).
 */
std::array<Operation, numSlots>
slotOps(const VliwInst &inst)
{
    std::array<Operation, numSlots> ops;
    for (unsigned s = 0; s < numSlots; ++s) {
        const Operation &op = inst.slot[s];
        if (!op.used())
            continue;
        if (op.info().isTwoSlot) {
            tm_assert(s + 1 < numSlots, "two-slot op in slot 5");
            tm_assert(!inst.slot[s + 1].used(),
                      "two-slot companion slot occupied");
            ops[s] = mainView(op);
            ops[s + 1] = companionView(op);
            ++s;
        } else {
            ops[s] = op;
        }
    }
    return ops;
}

void
encodeOp(BitWriter &w, const Operation &op, SlotFmt fmt)
{
    const OpInfo &oi = op.info();
    switch (fmt) {
      case SlotFmt::Fmt26:
        w.put(static_cast<unsigned>(op.opc), 8);
        w.put(op.dst[0], 6);
        w.put(op.src[0], 6);
        w.put(op.src[1], 6);
        break;
      case SlotFmt::Fmt34: {
        int ci = compactIndex(op.opc);
        tm_assert(ci >= 0, "op not compact-encodable");
        w.put(static_cast<unsigned>(ci), 6);
        w.put(op.guard, 7);
        w.put(op.dst[0], 7);
        w.put(op.src[0], 7);
        w.put(op.src[1], 7);
        break;
      }
      case SlotFmt::Fmt42:
        w.put(static_cast<unsigned>(op.opc), 9);
        w.put(op.guard, 7);
        switch (oi.imm) {
          case ImmKind::None:
            w.put(op.dst[0], 7);
            w.put(op.src[0], 7);
            w.put(op.src[1], 7);
            w.put(0, 5);
            break;
          case ImmKind::Simm12:
          case ImmKind::Uimm12:
            tm_assert(oi.imm == ImmKind::Uimm12
                          ? fitsUnsigned(uint32_t(op.imm), 12)
                          : fitsSigned(op.imm, 12),
                      "immediate %d does not fit 12 bits", op.imm);
            w.put(op.dst[0], 7);
            w.put(op.src[0], 7);
            w.put(uint32_t(op.imm) & 0xfff, 12);
            break;
          case ImmKind::Imm16:
            tm_assert(fitsUnsigned(uint32_t(op.imm) & 0xffffffff, 32),
                      "bad imm");
            w.put(op.dst[0], 7);
            w.put(uint32_t(op.imm) & 0xffff, 16);
            w.put(0, 3);
            break;
        }
        break;
      default:
        panic("encodeOp on unused slot");
    }
}

uint16_t
templateOf(const std::array<SlotFmt, numSlots> &fmts)
{
    uint16_t t = 0;
    for (unsigned s = 0; s < numSlots; ++s)
        t = static_cast<uint16_t>((t << 2) |
                                  static_cast<unsigned>(fmts[s]));
    return t;
}

} // namespace

int
EncodedProgram::indexAt(uint32_t offset) const
{
    auto it = std::lower_bound(offsets.begin(), offsets.end(), offset);
    if (it == offsets.end() || *it != offset)
        return -1;
    return static_cast<int>(it - offsets.begin());
}

EncodedProgram
encodeProgram(const std::vector<VliwInst> &insts,
              const std::vector<bool> &jump_targets)
{
    const size_t n = insts.size();
    tm_assert(jump_targets.size() == n, "jump target vector size mismatch");

    EncodedProgram p;
    p.insts = insts;
    p.uncompressed.assign(n, false);
    p.offsets.resize(n);

    // Pass 1: formats and layout.
    std::vector<std::array<Operation, numSlots>> ops(n);
    std::vector<std::array<SlotFmt, numSlots>> fmts(n);
    for (size_t i = 0; i < n; ++i) {
        p.uncompressed[i] = (i == 0) || jump_targets[i];
        ops[i] = slotOps(insts[i]);
        for (unsigned s = 0; s < numSlots; ++s) {
            fmts[i][s] = p.uncompressed[i] && !ops[i][s].used()
                             ? SlotFmt::Fmt42
                             : selectFormat(ops[i][s]);
            if (p.uncompressed[i] && fmts[i][s] != SlotFmt::Unused)
                fmts[i][s] = SlotFmt::Fmt42;
        }
    }

    uint32_t offset = 0;
    for (size_t i = 0; i < n; ++i) {
        p.offsets[i] = offset;
        bool has_template = (i + 1 < n) && !p.uncompressed[i + 1];
        unsigned bits = 1 + (has_template ? 10 : 0);
        if (p.uncompressed[i]) {
            bits += numSlots * 42;
        } else {
            for (unsigned s = 0; s < numSlots; ++s)
                bits += fmtBits(fmts[i][s]);
        }
        offset += (bits + 7) / 8;
    }

    // Patch branch targets: instruction index -> byte offset.
    for (size_t i = 0; i < n; ++i) {
        for (unsigned s = 0; s < numSlots; ++s) {
            Operation &op = p.insts[i].slot[s];
            if (op.used() && op.info().isBranch &&
                op.info().imm == ImmKind::Imm16) {
                tm_assert(op.imm >= 0 && size_t(op.imm) < n,
                          "branch target index %d out of range", op.imm);
                tm_assert(p.uncompressed[size_t(op.imm)],
                          "branch target %d not marked as jump target",
                          op.imm);
                uint32_t target = p.offsets[size_t(op.imm)];
                tm_assert(target <= 0xffff,
                          "program too large for 16-bit branch targets");
                op.imm = static_cast<int32_t>(target);
            }
        }
        ops[i] = slotOps(p.insts[i]);
    }

    // Pass 2: emit bits.
    BitWriter w;
    for (size_t i = 0; i < n; ++i) {
        tm_assert(w.size() == p.offsets[i], "layout/emit mismatch");
        bool has_template = (i + 1 < n) && !p.uncompressed[i + 1];
        w.put(has_template ? 0 : 1, 1);
        if (has_template)
            w.put(templateOf(fmts[i + 1]), 10);
        for (unsigned s = 0; s < numSlots; ++s) {
            if (fmts[i][s] != SlotFmt::Unused)
                encodeOp(w, ops[i][s], fmts[i][s]);
        }
        w.alignByte();
    }
    p.bytes = w.data();
    return p;
}

EncodedProgram
encodeProgram(const std::vector<VliwInst> &insts)
{
    std::vector<bool> targets(insts.size(), false);
    for (const auto &inst : insts) {
        for (const auto &op : inst.slot) {
            if (op.used() && op.info().isBranch &&
                op.info().imm == ImmKind::Imm16) {
                tm_assert(op.imm >= 0 && size_t(op.imm) < insts.size(),
                          "branch target index %d out of range", op.imm);
                targets[size_t(op.imm)] = true;
            }
        }
    }
    return encodeProgram(insts, targets);
}

} // namespace tm3270
