/**
 * @file
 * H.264/AVC CABAC probability model tables (spec Tables 9-44/9-45).
 *
 * These tables parameterize both the SUPER_CABAC_* operation semantics
 * (paper Fig. 2) and the golden-model arithmetic coder in src/cabac.
 * They live in the ISA library because the TM3270 hardware bakes them
 * into the CABAC functional unit.
 */

#ifndef TM3270_ISA_CABAC_TABLES_HH
#define TM3270_ISA_CABAC_TABLES_HH

#include <cstdint>

namespace tm3270
{

/** Range table for the least probable symbol: [state][(range>>6)&3]. */
extern const uint8_t lpsRangeTable[64][4];

/** Next state after coding the most probable symbol. */
extern const uint8_t mpsNextStateTable[64];

/** Next state after coding the least probable symbol. */
extern const uint8_t lpsNextStateTable[64];

/**
 * Decoded CABAC step outcome, shared between the ISA semantics and the
 * golden model.
 */
struct CabacStep
{
    uint32_t value;     ///< new coding value (10 bits)
    uint32_t range;     ///< new coding range (9 bits)
    uint32_t state;     ///< new context state (6 bits)
    uint32_t mps;       ///< new context MPS (1 bit)
    uint32_t bitPos;    ///< new bit position in stream_data
    uint32_t bit;       ///< decoded binary value
};

/**
 * The biari_decode_symbol function of paper Fig. 2, bit-exact.
 *
 * @param value       coding value (10-bit)
 * @param range       coding range (9-bit)
 * @param state       context state (6-bit)
 * @param mps         context MPS (1-bit)
 * @param stream_data 32 bits of bitstream data (big-endian packed)
 * @param bit_pos     current bit position within stream_data
 *
 * Note: the paper's figure prints the MPS update on the LPS path as
 * "mps = mps ^ (state != 0)"; the H.264 standard (and the reference
 * decoder the figure was taken from) flips MPS only when state == 0.
 * We implement the standard behaviour.
 */
CabacStep biariDecodeSymbol(uint32_t value, uint32_t range,
                            uint32_t state, uint32_t mps,
                            uint32_t stream_data, uint32_t bit_pos);

} // namespace tm3270

#endif // TM3270_ISA_CABAC_TABLES_HH
