/**
 * @file
 * Decoded operation and VLIW instruction representations.
 */

#ifndef TM3270_ISA_OPERATION_HH
#define TM3270_ISA_OPERATION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/op_info.hh"
#include "isa/opcodes.hh"
#include "support/types.hh"

namespace tm3270
{

/** Number of issue slots per VLIW instruction. */
inline constexpr unsigned numSlots = 5;

/**
 * A single decoded (uncompressed) operation.
 *
 * All operations are guarded: the operation takes architectural effect
 * only when the LSB of the guard register is 1. The default guard r1
 * always reads 1 (TriMedia convention).
 *
 * Two-slot operations are represented by a single Operation carrying
 * all four sources and both destinations; the encoder materializes the
 * companion SUPER_ARGS encoding in the neighboring slot, and the
 * decoder folds it back.
 */
struct Operation
{
    Opcode opc = Opcode::NOP;
    RegIndex guard = regOne;
    std::array<RegIndex, 2> dst = {0, 0};
    std::array<RegIndex, 4> src = {0, 0, 0, 0};
    int32_t imm = 0;

    bool used() const { return opc != Opcode::NOP; }
    const OpInfo &info() const { return opInfo(opc); }

    bool
    operator==(const Operation &o) const
    {
        if (opc != o.opc)
            return false;
        if (!used() && !o.used())
            return true;
        return guard == o.guard && dst == o.dst && src == o.src &&
               imm == o.imm;
    }
};

/**
 * A VLIW instruction: up to five operations, one per issue slot.
 * slot[i] is issue slot i+1. A two-slot operation lives in its first
 * slot; its second slot must be left unused (the encoder emits the
 * companion there).
 */
struct VliwInst
{
    std::array<Operation, numSlots> slot;

    /** Number of used operation slots (two-slot ops count once). */
    unsigned
    numOps() const
    {
        unsigned n = 0;
        for (const auto &op : slot)
            n += op.used();
        return n;
    }

    bool
    operator==(const VliwInst &o) const
    {
        return slot == o.slot;
    }
};

/** Render an operation as "(guard) mnem sX.. -> dX.." for diagnostics. */
std::string formatOperation(const Operation &op);

/** Render a VLIW instruction, one line. */
std::string formatInst(const VliwInst &inst);

} // namespace tm3270

#endif // TM3270_ISA_OPERATION_HH
