/**
 * @file
 * Static metadata for every operation: functional-unit class, issue
 * slot mask, latency, operand counts, immediate kind and assorted
 * classification flags. The table drives the encoder/decoder, the TIR
 * scheduler and the core's issue logic.
 */

#ifndef TM3270_ISA_OP_INFO_HH
#define TM3270_ISA_OP_INFO_HH

#include <cstdint>
#include <string_view>

#include "isa/opcodes.hh"

namespace tm3270
{

/**
 * Functional unit classes. The TM3270 has 31 functional units spread
 * over the five issue slots; the paper does not publish the full
 * unit/slot matrix, so we document our (TriMedia-family) layout here:
 *
 *   5x CONST   (slots 1-5)    5x ALU    (slots 1-5)
 *   2x SHIFTER (slots 1,4)    2x MUL    (slots 2,3)
 *   3x DSPALU  (slots 1,2,3)  2x DSPMUL (slots 2,3)
 *   3x BRANCH  (slots 2,3,4)  2x FALU   (slots 1,4)
 *   1x FCOMP   (slot 3)       1x FTOUGH (slot 2, fdiv)
 *   2x ST-TAG  (slots 4,5)    1x LOAD   (slot 5)
 *   1x FRACLOAD(slot 5)       1x CABAC  (slots 2+3, two-slot)
 *   1x DUALIMIX(slots 2+3)
 *
 * Total: 31 units, matching Table 1 of the paper.
 */
enum class FuClass : uint8_t
{
    None,       ///< NOP / SUPER_ARGS
    Const,      ///< immediate generation
    Alu,
    Shifter,
    Mul,
    DspAlu,
    DspMul,
    FAlu,
    FComp,
    FTough,     ///< iterative fdiv
    Branch,
    Load,       ///< data cache load port
    Store,      ///< store (tag access only)
    FracLoad,   ///< collapsed load with interpolation
    SuperLd,    ///< two-slot load
    SuperMix,   ///< two-slot dual filter
    Cabac,      ///< two-slot CABAC unit
};

/** Immediate operand kind, also selects the 42-bit encoding shape. */
enum class ImmKind : uint8_t
{
    None,     ///< register-register operation
    Simm12,   ///< 12-bit signed (displacements, addi)
    Uimm12,   ///< 12-bit unsigned (logical immediates, shift counts)
    Imm16,    ///< 16-bit immediate, no s1 field (imm16/immhi/jumps)
};

/** Per-opcode static properties. */
struct OpInfo
{
    std::string_view mnemonic;
    FuClass fu = FuClass::None;
    /** Issue slot bitmask; bit (s-1) set means issue slot s allowed. */
    uint8_t slotMask = 0;
    /** Result latency in cycles (cycles until a dependent op may read). */
    uint8_t latency = 1;
    uint8_t numSrc = 0;
    uint8_t numDst = 0;
    ImmKind imm = ImmKind::None;
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    /** Occupies two neighboring issue slots (paper §2.2.1). */
    bool isTwoSlot = false;
    /**
     * Bitmask of used src[] positions; 0 means the default mask
     * (1 << numSrc) - 1. SUPER_LD32R keeps its sources in positions
     * 2 and 3: they are encoded in the second operation of the pair
     * (paper Table 2).
     */
    uint8_t srcMask = 0;

    /** Effective source-position mask. */
    uint8_t
    srcPositions() const
    {
        return srcMask ? srcMask : uint8_t((1u << numSrc) - 1);
    }

    /** Does this operation read src position @p i? */
    bool readsSrc(unsigned i) const { return srcPositions() & (1u << i); }
};

/** Metadata for @p op. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for @p op. */
std::string_view opName(Opcode op);

/** Parse a mnemonic; returns NUM_OPCODES when unknown. */
Opcode opFromName(std::string_view name);

/** Slot bitmask helpers. */
inline constexpr uint8_t
slotBit(unsigned slot)
{
    return static_cast<uint8_t>(1u << (slot - 1));
}

/** All five issue slots. */
inline constexpr uint8_t allSlots = 0x1f;

} // namespace tm3270

#endif // TM3270_ISA_OP_INFO_HH
