/**
 * @file
 * Functional semantics of all non-memory operations, plus the data
 * transformations of the memory operations (interpolation filter of
 * LD_FRAC8, big-endian packing of SUPER_LD32R).
 *
 * Timing is modeled elsewhere (core/lsu); these functions are pure.
 */

#ifndef TM3270_ISA_SEMANTICS_HH
#define TM3270_ISA_SEMANTICS_HH

#include <array>

#include "isa/operation.hh"
#include "support/types.hh"

namespace tm3270
{

/** Result of executing one non-memory operation. */
struct ExecResult
{
    std::array<Word, 2> dst = {0, 0};
};

/**
 * Execute a non-memory, non-branch operation.
 *
 * @param op operation (used for opcode and immediate)
 * @param s  source operand values; s[i] corresponds to op.src[i].
 *           For SUPER_CABAC_STR, s[2] is rsrc4 = (state, mps).
 */
ExecResult execPure(const Operation &op, const std::array<Word, 4> &s);

/**
 * LD_FRAC8 filter (paper Table 2): given the five consecutive bytes at
 * the load address and the fractional position frac[3:0], produce the
 * four interpolated bytes, packed with the byte at the lowest address
 * in the most significant position.
 */
Word interpolateFrac8(const std::array<uint8_t, 5> &data, Word frac);

/** Assemble a big-endian 32-bit word from 4 bytes (SUPER_LD32R). */
Word packBigEndian(const uint8_t *bytes);

/** Out-of-line failure path of memAccessSize. */
[[noreturn]] void badMemAccessSize(Opcode opc);

/** Memory access size in bytes for a load/store opcode. Inline: the
 *  LSU consults it on every load and store. */
inline unsigned
memAccessSize(Opcode opc)
{
    switch (opc) {
      case Opcode::LD8S:
      case Opcode::LD8U:
      case Opcode::ST8D:
        return 1;
      case Opcode::LD16S:
      case Opcode::LD16U:
      case Opcode::ST16D:
        return 2;
      case Opcode::LD32D:
      case Opcode::LD32R:
      case Opcode::LD32X:
      case Opcode::ST32D:
      case Opcode::ST32R:
        return 4;
      case Opcode::LD_FRAC8:
        return 5;
      case Opcode::SUPER_LD32R:
        return 8;
      default:
        badMemAccessSize(opc);
    }
}

} // namespace tm3270

#endif // TM3270_ISA_SEMANTICS_HH
