/**
 * @file
 * Functional semantics of all non-memory operations, plus the data
 * transformations of the memory operations (interpolation filter of
 * LD_FRAC8, big-endian packing of SUPER_LD32R).
 *
 * Timing is modeled elsewhere (core/lsu); these functions are pure.
 */

#ifndef TM3270_ISA_SEMANTICS_HH
#define TM3270_ISA_SEMANTICS_HH

#include <array>

#include "isa/operation.hh"
#include "support/types.hh"

namespace tm3270
{

/** Result of executing one non-memory operation. */
struct ExecResult
{
    std::array<Word, 2> dst = {0, 0};
};

/**
 * Execute a non-memory, non-branch operation.
 *
 * @param op operation (used for opcode and immediate)
 * @param s  source operand values; s[i] corresponds to op.src[i].
 *           For SUPER_CABAC_STR, s[2] is rsrc4 = (state, mps).
 */
ExecResult execPure(const Operation &op, const std::array<Word, 4> &s);

/**
 * LD_FRAC8 filter (paper Table 2): given the five consecutive bytes at
 * the load address and the fractional position frac[3:0], produce the
 * four interpolated bytes, packed with the byte at the lowest address
 * in the most significant position.
 */
Word interpolateFrac8(const std::array<uint8_t, 5> &data, Word frac);

/** Assemble a big-endian 32-bit word from 4 bytes (SUPER_LD32R). */
Word packBigEndian(const uint8_t *bytes);

/** Memory access size in bytes for a load/store opcode. */
unsigned memAccessSize(Opcode opc);

} // namespace tm3270

#endif // TM3270_ISA_SEMANTICS_HH
