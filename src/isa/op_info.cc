#include "isa/op_info.hh"

#include <array>
#include <map>

#include "support/logging.hh"

namespace tm3270
{

namespace
{

constexpr uint8_t s15 = allSlots;               // slots 1..5
constexpr uint8_t s14 = slotBit(1) | slotBit(4);
constexpr uint8_t s23 = slotBit(2) | slotBit(3);
constexpr uint8_t s123 = slotBit(1) | slotBit(2) | slotBit(3);
constexpr uint8_t s234 = slotBit(2) | slotBit(3) | slotBit(4);
constexpr uint8_t s45 = slotBit(4) | slotBit(5);
constexpr uint8_t s5 = slotBit(5);
constexpr uint8_t s2 = slotBit(2);
constexpr uint8_t s3 = slotBit(3);
constexpr uint8_t s4 = slotBit(4);

struct Entry
{
    Opcode op;
    OpInfo info;
};

/// Shorthand constructors keep the table readable.
constexpr OpInfo
alu(std::string_view m, uint8_t nsrc = 2)
{
    return {m, FuClass::Alu, s15, 1, nsrc, 1, ImmKind::None,
            false, false, false, false};
}

constexpr OpInfo
aluImm(std::string_view m, ImmKind k)
{
    return {m, FuClass::Alu, s15, 1, 1, 1, k,
            false, false, false, false};
}

constexpr OpInfo
shift(std::string_view m)
{
    return {m, FuClass::Shifter, s14, 1, 2, 1, ImmKind::None,
            false, false, false, false};
}

constexpr OpInfo
shiftImm(std::string_view m)
{
    return {m, FuClass::Shifter, s14, 1, 1, 1, ImmKind::Uimm12,
            false, false, false, false};
}

constexpr OpInfo
dspalu(std::string_view m, uint8_t lat = 2)
{
    return {m, FuClass::DspAlu, s123, lat, 2, 1, ImmKind::None,
            false, false, false, false};
}

constexpr OpInfo
dspmul(std::string_view m, uint8_t lat = 3)
{
    return {m, FuClass::DspMul, s23, lat, 2, 1, ImmKind::None,
            false, false, false, false};
}

constexpr OpInfo
falu(std::string_view m, uint8_t lat = 3)
{
    return {m, FuClass::FAlu, s14, lat, 2, 1, ImmKind::None,
            false, false, false, false};
}

constexpr OpInfo
loadD(std::string_view m, uint8_t lat = 4)
{
    return {m, FuClass::Load, s5, lat, 1, 1, ImmKind::Simm12,
            true, false, false, false};
}

constexpr OpInfo
storeD(std::string_view m)
{
    // Stores carry the value register in the dst field (numDst = 0:
    // no register result is produced).
    return {m, FuClass::Store, s45, 1, 1, 0, ImmKind::Simm12,
            false, true, false, false};
}

const std::array<Entry, numOpcodes> opTable = {{
    {Opcode::NOP, {"nop", FuClass::None, s15, 1, 0, 0, ImmKind::None,
                   false, false, false, false}},

    {Opcode::IADD, alu("iadd")},
    {Opcode::ISUB, alu("isub")},
    {Opcode::IAND, alu("iand")},
    {Opcode::IOR, alu("ior")},
    {Opcode::IXOR, alu("ixor")},
    {Opcode::IEQL, alu("ieql")},
    {Opcode::INEQ, alu("ineq")},
    {Opcode::IGTR, alu("igtr")},
    {Opcode::IGEQ, alu("igeq")},
    {Opcode::ILES, alu("iles")},
    {Opcode::ILEQ, alu("ileq")},
    {Opcode::IGTRU, alu("igtru")},
    {Opcode::ILESU, alu("ilesu")},
    {Opcode::IMIN, alu("imin")},
    {Opcode::IMAX, alu("imax")},
    {Opcode::SEX8, alu("sex8", 1)},
    {Opcode::ZEX8, alu("zex8", 1)},
    {Opcode::SEX16, alu("sex16", 1)},
    {Opcode::ZEX16, alu("zex16", 1)},
    {Opcode::BITAND0, alu("bitand0")},

    {Opcode::ASL, shift("asl")},
    {Opcode::ASR, shift("asr")},
    {Opcode::LSR, shift("lsr")},
    {Opcode::ROL, shift("rol")},

    {Opcode::IADDI, aluImm("iaddi", ImmKind::Simm12)},
    {Opcode::IANDI, aluImm("iandi", ImmKind::Uimm12)},
    {Opcode::IORI, aluImm("iori", ImmKind::Uimm12)},
    {Opcode::ASLI, shiftImm("asli")},
    {Opcode::ASRI, shiftImm("asri")},
    {Opcode::LSRI, shiftImm("lsri")},
    {Opcode::IMM16, {"imm16", FuClass::Const, s15, 1, 0, 1,
                     ImmKind::Imm16, false, false, false, false}},
    {Opcode::IMMHI, {"immhi", FuClass::Const, s15, 1, 0, 1,
                     ImmKind::Imm16, false, false, false, false}},
    {Opcode::IEQLI, aluImm("ieqli", ImmKind::Simm12)},
    {Opcode::IGTRI, aluImm("igtri", ImmKind::Simm12)},
    {Opcode::ILESI, aluImm("ilesi", ImmKind::Simm12)},

    {Opcode::IMUL, {"imul", FuClass::Mul, s23, 3, 2, 1, ImmKind::None,
                    false, false, false, false}},
    {Opcode::IMULM, {"imulm", FuClass::Mul, s23, 3, 2, 1, ImmKind::None,
                     false, false, false, false}},
    {Opcode::UMULM, {"umulm", FuClass::Mul, s23, 3, 2, 1, ImmKind::None,
                     false, false, false, false}},

    {Opcode::FADD, falu("fadd")},
    {Opcode::FSUB, falu("fsub")},
    {Opcode::FMUL, {"fmul", FuClass::FAlu, s14, 3, 2, 1, ImmKind::None,
                    false, false, false, false}},
    {Opcode::FDIV, {"fdiv", FuClass::FTough, s2, 17, 2, 1, ImmKind::None,
                    false, false, false, false}},
    {Opcode::FTOI, falu("ftoi")},
    {Opcode::ITOF, falu("itof")},
    {Opcode::FEQL, {"feql", FuClass::FComp, s3, 1, 2, 1, ImmKind::None,
                    false, false, false, false}},
    {Opcode::FGTR, {"fgtr", FuClass::FComp, s3, 1, 2, 1, ImmKind::None,
                    false, false, false, false}},

    {Opcode::QUADAVG, dspalu("quadavg")},
    {Opcode::QUADADD, dspalu("quadadd")},
    {Opcode::QUADSUB, dspalu("quadsub")},
    {Opcode::QUADUMIN, dspalu("quadumin")},
    {Opcode::QUADUMAX, dspalu("quadumax")},
    {Opcode::UME8UU, dspalu("ume8uu")},
    {Opcode::QUADUMULMSB, dspmul("quadumulmsb")},
    {Opcode::DSPUQUADADDUI, dspalu("dspuquadaddui")},

    {Opcode::MERGELSB, dspalu("mergelsb", 1)},
    {Opcode::MERGEMSB, dspalu("mergemsb", 1)},
    {Opcode::PACK16LSB, dspalu("pack16lsb", 1)},
    {Opcode::PACK16MSB, dspalu("pack16msb", 1)},
    {Opcode::PACKBYTES, dspalu("packbytes", 1)},
    {Opcode::UBYTESEL, dspalu("ubytesel", 1)},
    {Opcode::FUNSHIFT1, dspalu("funshift1", 1)},
    {Opcode::FUNSHIFT2, dspalu("funshift2", 1)},
    {Opcode::FUNSHIFT3, dspalu("funshift3", 1)},

    {Opcode::DSPIDUALADD, dspalu("dspidualadd")},
    {Opcode::DSPIDUALSUB, dspalu("dspidualsub")},
    {Opcode::DSPIDUALMUL, dspmul("dspidualmul")},
    {Opcode::DSPIDUALABS, dspalu("dspidualabs")},
    {Opcode::IFIR16, dspmul("ifir16")},
    {Opcode::IFIR8UI, dspmul("ifir8ui")},
    {Opcode::ICLIPI, dspalu("iclipi")},
    {Opcode::UCLIPI, dspalu("uclipi")},
    {Opcode::IABS, dspalu("iabs")},
    {Opcode::DSPIDUALPACK, dspalu("dspidualpack")},

    {Opcode::LD8S, loadD("ld8s")},
    {Opcode::LD8U, loadD("ld8u")},
    {Opcode::LD16S, loadD("ld16s")},
    {Opcode::LD16U, loadD("ld16u")},
    {Opcode::LD32D, loadD("ld32d")},
    {Opcode::LD32R, {"ld32r", FuClass::Load, s5, 4, 2, 1, ImmKind::None,
                     true, false, false, false}},
    {Opcode::LD32X, {"ld32x", FuClass::Load, s5, 4, 2, 1, ImmKind::None,
                     true, false, false, false}},

    {Opcode::ST8D, storeD("st8d")},
    {Opcode::ST16D, storeD("st16d")},
    {Opcode::ST32D, storeD("st32d")},
    {Opcode::ST32R, {"st32r", FuClass::Store, s45, 1, 2, 0, ImmKind::None,
                     false, true, false, false}},

    {Opcode::PREF, {"pref", FuClass::Store, s45, 1, 1, 0, ImmKind::Simm12,
                    false, false, false, false}},

    {Opcode::JMPT, {"jmpt", FuClass::Branch, s234, 1, 0, 0, ImmKind::Imm16,
                    false, false, true, false}},
    {Opcode::JMPF, {"jmpf", FuClass::Branch, s234, 1, 0, 0, ImmKind::Imm16,
                    false, false, true, false}},
    {Opcode::JMPI, {"jmpi", FuClass::Branch, s234, 1, 0, 0, ImmKind::Imm16,
                    false, false, true, false}},
    {Opcode::JMPR, {"jmpr", FuClass::Branch, s234, 1, 1, 0, ImmKind::None,
                    false, false, true, false}},
    {Opcode::HALT, {"halt", FuClass::Branch, s234, 1, 1, 0, ImmKind::None,
                    false, false, true, false}},

    // Two-slot operations. slotMask identifies the *first* slot of the
    // pair; the companion SUPER_ARGS sits in the next slot.
    {Opcode::SUPER_DUALIMIX,
     {"super_dualimix", FuClass::SuperMix, s2, 4, 4, 2, ImmKind::None,
      false, false, false, true}},
    {Opcode::SUPER_LD32R,
     {"super_ld32r", FuClass::SuperLd, s4, 4, 2, 2, ImmKind::None,
      true, false, false, true, 0b1100}},
    {Opcode::LD_FRAC8,
     {"ld_frac8", FuClass::FracLoad, s5, 6, 2, 1, ImmKind::None,
      true, false, false, false}},
    {Opcode::SUPER_CABAC_CTX,
     {"super_cabac_ctx", FuClass::Cabac, s2, 4, 4, 2, ImmKind::None,
      false, false, false, true}},
    {Opcode::SUPER_CABAC_STR,
     {"super_cabac_str", FuClass::Cabac, s2, 4, 3, 2, ImmKind::None,
      false, false, false, true}},

    {Opcode::SUPER_ARGS,
     {"super_args", FuClass::None, s15, 1, 2, 1, ImmKind::None,
      false, false, false, false}},
}};

struct TableCheck
{
    TableCheck()
    {
        for (unsigned i = 0; i < numOpcodes; ++i) {
            tm_assert(static_cast<unsigned>(opTable[i].op) == i,
                      "op table entry %u out of order", i);
        }
    }
};

const TableCheck tableCheck;

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    tm_assert(static_cast<unsigned>(op) < numOpcodes, "bad opcode");
    return opTable[static_cast<unsigned>(op)].info;
}

std::string_view
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

Opcode
opFromName(std::string_view name)
{
    static const std::map<std::string_view, Opcode> byName = [] {
        std::map<std::string_view, Opcode> m;
        for (const auto &e : opTable)
            m.emplace(e.info.mnemonic, e.op);
        return m;
    }();
    auto it = byName.find(name);
    return it == byName.end() ? Opcode::NUM_OPCODES : it->second;
}

} // namespace tm3270
