#include "isa/semantics.hh"

#include <bit>
#include <cmath>
#include <cstdint>

#include "isa/cabac_tables.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/saturate.hh"

namespace tm3270
{

namespace
{

/** Per-byte unpack helpers; index 0 is the least significant byte. */
inline uint8_t
byteOf(Word v, unsigned i)
{
    return static_cast<uint8_t>(v >> (8 * i));
}

inline Word
packBytes4(uint8_t b3, uint8_t b2, uint8_t b1, uint8_t b0)
{
    return (Word(b3) << 24) | (Word(b2) << 16) | (Word(b1) << 8) | b0;
}

/** Apply @p f per byte lane. */
template <typename F>
inline Word
perByte(Word a, Word b, F f)
{
    Word r = 0;
    for (unsigned i = 0; i < 4; ++i)
        r |= Word(static_cast<uint8_t>(f(byteOf(a, i), byteOf(b, i))))
             << (8 * i);
    return r;
}

/** Apply @p f per 16-bit lane (signed). */
template <typename F>
inline Word
perHalf(Word a, Word b, F f)
{
    auto lo = static_cast<int16_t>(a & 0xffff);
    auto hi = static_cast<int16_t>(a >> 16);
    auto lob = static_cast<int16_t>(b & 0xffff);
    auto hib = static_cast<int16_t>(b >> 16);
    uint16_t rlo = static_cast<uint16_t>(f(lo, lob));
    uint16_t rhi = static_cast<uint16_t>(f(hi, hib));
    return (Word(rhi) << 16) | rlo;
}

inline float
asFloat(Word w)
{
    return std::bit_cast<float>(w);
}

inline Word
asWord(float f)
{
    return std::bit_cast<Word>(f);
}

} // namespace

Word
interpolateFrac8(const std::array<uint8_t, 5> &d, Word frac)
{
    Word f = frac & 0xf;
    auto tap = [f](uint8_t a, uint8_t b) -> uint8_t {
        return static_cast<uint8_t>((a * (16 - f) + b * f + 8) / 16);
    };
    // rdest[31:24] = interp(data0, data1) ... rdest[7:0] = (data3, data4)
    return packBytes4(tap(d[0], d[1]), tap(d[1], d[2]), tap(d[2], d[3]),
                      tap(d[3], d[4]));
}

Word
packBigEndian(const uint8_t *b)
{
    return packBytes4(b[0], b[1], b[2], b[3]);
}

void
badMemAccessSize(Opcode opc)
{
    panic("memAccessSize on non-memory opcode %s",
          std::string(opName(opc)).c_str());
}

ExecResult
execPure(const Operation &op, const std::array<Word, 4> &s)
{
    ExecResult r;
    const Word a = s[0];
    const Word b = s[1];
    const auto sa = static_cast<SWord>(a);
    const auto sb = static_cast<SWord>(b);
    const auto imm = op.imm;

    switch (op.opc) {
      case Opcode::NOP:
      case Opcode::SUPER_ARGS:
        break;

      case Opcode::IADD: r.dst[0] = a + b; break;
      case Opcode::ISUB: r.dst[0] = a - b; break;
      case Opcode::IAND: r.dst[0] = a & b; break;
      case Opcode::IOR: r.dst[0] = a | b; break;
      case Opcode::IXOR: r.dst[0] = a ^ b; break;
      case Opcode::IEQL: r.dst[0] = (a == b); break;
      case Opcode::INEQ: r.dst[0] = (a != b); break;
      case Opcode::IGTR: r.dst[0] = (sa > sb); break;
      case Opcode::IGEQ: r.dst[0] = (sa >= sb); break;
      case Opcode::ILES: r.dst[0] = (sa < sb); break;
      case Opcode::ILEQ: r.dst[0] = (sa <= sb); break;
      case Opcode::IGTRU: r.dst[0] = (a > b); break;
      case Opcode::ILESU: r.dst[0] = (a < b); break;
      case Opcode::IMIN: r.dst[0] = Word(std::min(sa, sb)); break;
      case Opcode::IMAX: r.dst[0] = Word(std::max(sa, sb)); break;
      case Opcode::SEX8:
        r.dst[0] = Word(SWord(static_cast<int8_t>(a)));
        break;
      case Opcode::ZEX8: r.dst[0] = a & 0xff; break;
      case Opcode::SEX16:
        r.dst[0] = Word(SWord(static_cast<int16_t>(a)));
        break;
      case Opcode::ZEX16: r.dst[0] = a & 0xffff; break;
      case Opcode::BITAND0: r.dst[0] = a & ~b; break;

      case Opcode::ASL: r.dst[0] = a << (b & 31); break;
      case Opcode::ASR: r.dst[0] = Word(sa >> (b & 31)); break;
      case Opcode::LSR: r.dst[0] = a >> (b & 31); break;
      case Opcode::ROL:
        r.dst[0] = std::rotl(a, static_cast<int>(b & 31));
        break;

      case Opcode::IADDI: r.dst[0] = a + Word(imm); break;
      case Opcode::IANDI: r.dst[0] = a & Word(imm); break;
      case Opcode::IORI: r.dst[0] = a | Word(imm); break;
      case Opcode::ASLI: r.dst[0] = a << (imm & 31); break;
      case Opcode::ASRI: r.dst[0] = Word(sa >> (imm & 31)); break;
      case Opcode::LSRI: r.dst[0] = a >> (imm & 31); break;
      case Opcode::IMM16: r.dst[0] = Word(SWord(int16_t(imm))); break;
      case Opcode::IMMHI: r.dst[0] = Word(imm & 0xffff) << 16; break;
      case Opcode::IEQLI: r.dst[0] = (sa == imm); break;
      case Opcode::IGTRI: r.dst[0] = (sa > imm); break;
      case Opcode::ILESI: r.dst[0] = (sa < imm); break;

      case Opcode::IMUL: r.dst[0] = Word(sa * sb); break;
      case Opcode::IMULM:
        r.dst[0] = Word((int64_t(sa) * int64_t(sb)) >> 32);
        break;
      case Opcode::UMULM:
        r.dst[0] = Word((uint64_t(a) * uint64_t(b)) >> 32);
        break;

      case Opcode::FADD: r.dst[0] = asWord(asFloat(a) + asFloat(b)); break;
      case Opcode::FSUB: r.dst[0] = asWord(asFloat(a) - asFloat(b)); break;
      case Opcode::FMUL: r.dst[0] = asWord(asFloat(a) * asFloat(b)); break;
      case Opcode::FDIV: r.dst[0] = asWord(asFloat(a) / asFloat(b)); break;
      case Opcode::FTOI:
        r.dst[0] = Word(clipS32(std::llrint(double(asFloat(a)))));
        break;
      case Opcode::ITOF: r.dst[0] = asWord(float(sa)); break;
      case Opcode::FEQL: r.dst[0] = (asFloat(a) == asFloat(b)); break;
      case Opcode::FGTR: r.dst[0] = (asFloat(a) > asFloat(b)); break;

      case Opcode::QUADAVG:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return (x + y + 1) >> 1;
        });
        break;
      case Opcode::QUADADD:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return uint8_t(x + y);
        });
        break;
      case Opcode::QUADSUB:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return uint8_t(x - y);
        });
        break;
      case Opcode::QUADUMIN:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return std::min(x, y);
        });
        break;
      case Opcode::QUADUMAX:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return std::max(x, y);
        });
        break;
      case Opcode::UME8UU: {
        Word sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            int d = int(byteOf(a, i)) - int(byteOf(b, i));
            sum += Word(d < 0 ? -d : d);
        }
        r.dst[0] = sum;
        break;
      }
      case Opcode::QUADUMULMSB:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return uint8_t((unsigned(x) * unsigned(y)) >> 8);
        });
        break;
      case Opcode::DSPUQUADADDUI:
        r.dst[0] = perByte(a, b, [](uint8_t x, uint8_t y) {
            return clipU8(int64_t(x) + int8_t(y));
        });
        break;

      case Opcode::MERGELSB:
        r.dst[0] = packBytes4(byteOf(a, 1), byteOf(b, 1), byteOf(a, 0),
                              byteOf(b, 0));
        break;
      case Opcode::MERGEMSB:
        r.dst[0] = packBytes4(byteOf(a, 3), byteOf(b, 3), byteOf(a, 2),
                              byteOf(b, 2));
        break;
      case Opcode::PACK16LSB:
        r.dst[0] = (a << 16) | (b & 0xffff);
        break;
      case Opcode::PACK16MSB:
        r.dst[0] = (a & 0xffff0000u) | (b >> 16);
        break;
      case Opcode::PACKBYTES:
        r.dst[0] = ((a & 0xff) << 8) | (b & 0xff);
        break;
      case Opcode::UBYTESEL:
        r.dst[0] = byteOf(a, b & 3);
        break;
      case Opcode::FUNSHIFT1: r.dst[0] = (a << 8) | (b >> 24); break;
      case Opcode::FUNSHIFT2: r.dst[0] = (a << 16) | (b >> 16); break;
      case Opcode::FUNSHIFT3: r.dst[0] = (a << 24) | (b >> 8); break;

      case Opcode::DSPIDUALADD:
        r.dst[0] = perHalf(a, b, [](int16_t x, int16_t y) {
            return clipS16(int64_t(x) + y);
        });
        break;
      case Opcode::DSPIDUALSUB:
        r.dst[0] = perHalf(a, b, [](int16_t x, int16_t y) {
            return clipS16(int64_t(x) - y);
        });
        break;
      case Opcode::DSPIDUALMUL:
        r.dst[0] = perHalf(a, b, [](int16_t x, int16_t y) {
            return clipS16(int64_t(x) * y);
        });
        break;
      case Opcode::DSPIDUALABS:
        r.dst[0] = perHalf(a, b, [](int16_t x, int16_t) {
            return clipS16(x < 0 ? -int64_t(x) : int64_t(x));
        });
        break;
      case Opcode::IFIR16: {
        auto ah = int16_t(a >> 16), al = int16_t(a & 0xffff);
        auto bh = int16_t(b >> 16), bl = int16_t(b & 0xffff);
        r.dst[0] = Word(SWord(ah * bh + al * bl));
        break;
      }
      case Opcode::IFIR8UI: {
        SWord sum = 0;
        for (unsigned i = 0; i < 4; ++i)
            sum += SWord(byteOf(a, i)) * int8_t(byteOf(b, i));
        r.dst[0] = Word(sum);
        break;
      }
      case Opcode::ICLIPI:
        r.dst[0] = Word(SWord(clipRange(sa, -(int64_t(sb) + 1), sb)));
        break;
      case Opcode::UCLIPI:
        r.dst[0] = Word(SWord(clipRange(sa, 0, sb)));
        break;
      case Opcode::IABS:
        r.dst[0] = Word(clipS32(sa < 0 ? -int64_t(sa) : int64_t(sa)));
        break;
      case Opcode::DSPIDUALPACK:
        r.dst[0] = (Word(uint16_t(clipS16(sa))) << 16) |
                   uint16_t(clipS16(sb));
        break;

      case Opcode::SUPER_DUALIMIX: {
        // temp = s1.hi * s2.hi + s3.hi * s4.hi, clipped to 32-bit.
        auto hi = [](Word v) { return int64_t(int16_t(v >> 16)); };
        auto lo = [](Word v) { return int64_t(int16_t(v & 0xffff)); };
        r.dst[0] = Word(clipS32(hi(s[0]) * hi(s[1]) + hi(s[2]) * hi(s[3])));
        r.dst[1] = Word(clipS32(lo(s[0]) * lo(s[1]) + lo(s[2]) * lo(s[3])));
        break;
      }

      case Opcode::SUPER_CABAC_CTX: {
        // rsrc1=(value,range) rsrc2=bitpos rsrc3=stream rsrc4=(state,mps)
        CabacStep st = biariDecodeSymbol(dual16Hi(s[0]), dual16Lo(s[0]),
                                         dual16Hi(s[3]), dual16Lo(s[3]),
                                         s[2], s[1]);
        r.dst[0] = dual16(st.value, st.range);
        r.dst[1] = dual16(st.state, st.mps);
        break;
      }
      case Opcode::SUPER_CABAC_STR: {
        // rsrc1=(value,range) rsrc2=bitpos rsrc4=(state,mps); the
        // stream data is not needed to compute bit count and bit.
        CabacStep st = biariDecodeSymbol(dual16Hi(s[0]), dual16Lo(s[0]),
                                         dual16Hi(s[2]), dual16Lo(s[2]),
                                         0, s[1]);
        r.dst[0] = st.bitPos;
        r.dst[1] = st.bit;
        break;
      }

      default:
        panic("execPure called on unsupported opcode %s",
              std::string(opName(op.opc)).c_str());
    }
    return r;
}

} // namespace tm3270
