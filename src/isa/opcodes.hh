/**
 * @file
 * TM3270 operation set.
 *
 * The operation repertoire models the TriMedia family ISA as described
 * in the TM3270 paper (MICRO-38, 2005): guarded RISC-like operations,
 * SIMD operations at 1x32/2x16/4x8 granularity, IEEE-754 floating
 * point, plus the paper's new operations: two-slot super-operations
 * (SUPER_DUALIMIX, SUPER_LD32R), collapsed loads with interpolation
 * (LD_FRAC8) and the CABAC operations (SUPER_CABAC_CTX,
 * SUPER_CABAC_STR).
 */

#ifndef TM3270_ISA_OPCODES_HH
#define TM3270_ISA_OPCODES_HH

#include <cstdint>

namespace tm3270
{

/**
 * Operation codes. The enumerators are also the architectural opcode
 * values used by the binary instruction encoding, so their numeric
 * values are stable ABI: new opcodes must be appended.
 */
enum class Opcode : uint16_t
{
    NOP = 0,

    // Integer ALU (1 cycle, any slot).
    IADD,
    ISUB,
    IAND,
    IOR,
    IXOR,
    IEQL,
    INEQ,
    IGTR,
    IGEQ,
    ILES,
    ILEQ,
    IGTRU,      ///< unsigned greater-than
    ILESU,      ///< unsigned less-than
    IMIN,
    IMAX,
    SEX8,       ///< sign-extend byte
    ZEX8,       ///< zero-extend byte
    SEX16,
    ZEX16,
    BITAND0,    ///< dst = s1 & ~s2 (andn)

    // Shifts (issue slots 1 and 4).
    ASL,        ///< arithmetic/logical shift left
    ASR,        ///< arithmetic shift right
    LSR,        ///< logical shift right
    ROL,        ///< rotate left

    // Immediate forms.
    IADDI,      ///< dst = s1 + simm12
    IANDI,      ///< dst = s1 & uimm12
    IORI,       ///< dst = s1 | uimm12
    ASLI,       ///< dst = s1 << uimm (uimm12, low 5 bits used)
    ASRI,
    LSRI,
    IMM16,      ///< dst = sign-extended imm16
    IMMHI,      ///< dst = imm16 << 16
    IEQLI,      ///< dst = (s1 == simm12)
    IGTRI,      ///< dst = (s1 > simm12)
    ILESI,      ///< dst = (s1 < simm12)

    // Multiply (issue slots 2 and 3, 3 cycles).
    IMUL,       ///< low 32 bits of product
    IMULM,      ///< high 32 bits of signed 64-bit product
    UMULM,      ///< high 32 bits of unsigned 64-bit product

    // IEEE-754 single precision floating point.
    FADD,
    FSUB,
    FMUL,
    FDIV,
    FTOI,       ///< float -> int32 (round to nearest)
    ITOF,       ///< int32 -> float
    FEQL,
    FGTR,

    // SIMD: 4 x 8-bit.
    QUADAVG,    ///< per-byte average with rounding up
    QUADADD,    ///< per-byte wraparound add
    QUADSUB,    ///< per-byte wraparound subtract
    QUADUMIN,   ///< per-byte unsigned min
    QUADUMAX,   ///< per-byte unsigned max
    UME8UU,     ///< sum of absolute byte differences (motion estimation)
    QUADUMULMSB,///< per-byte unsigned multiply, MSBs
    DSPUQUADADDUI, ///< per-byte saturated add: u8 + s8 -> clip to u8

    // Byte shuffling / packing.
    MERGELSB,   ///< interleave low bytes pairwise
    MERGEMSB,   ///< interleave high bytes pairwise
    PACK16LSB,  ///< (s1.lo16 << 16) | s2.lo16
    PACK16MSB,  ///< (s1.hi16 << 16) | s2.hi16
    PACKBYTES,  ///< (s1.lo8 << 8) | s2.lo8, in low half
    UBYTESEL,   ///< select byte s2[1:0] of s1, zero-extend
    FUNSHIFT1,  ///< funnel shift: ((s1:s2) >> 8) low word
    FUNSHIFT2,  ///< funnel shift by 2 bytes
    FUNSHIFT3,  ///< funnel shift by 3 bytes

    // SIMD: 2 x 16-bit DSP.
    DSPIDUALADD,  ///< dual 16-bit saturated add
    DSPIDUALSUB,  ///< dual 16-bit saturated subtract
    DSPIDUALMUL,  ///< dual 16-bit multiply, clipped to 16-bit
    DSPIDUALABS,  ///< dual 16-bit saturated absolute value
    IFIR16,       ///< signed 2x16 dot product -> 32-bit
    IFIR8UI,      ///< dot product: unsigned bytes x signed bytes
    ICLIPI,       ///< clip s1 to [-(s2+1), s2]
    UCLIPI,       ///< clip s1 to [0, s2]
    IABS,         ///< saturated 32-bit absolute value
    DSPIDUALPACK, ///< pack s1, s2 to dual-16 with signed saturation

    // Memory: loads (slot 5 on TM3270; slots 4 and 5 on TM3260).
    LD8S,       ///< load signed byte, [s1 + simm12]
    LD8U,
    LD16S,
    LD16U,
    LD32D,      ///< load word, [s1 + simm12]
    LD32R,      ///< load word, [s1 + s2]
    LD32X,      ///< load word, [s1 + 4*s2]

    // Memory: stores (slots 4 and 5). dst field holds the value reg.
    ST8D,
    ST16D,
    ST32D,      ///< store word, [s1 + simm12] = value
    ST32R,      ///< store word, [s1 + s2] (value in companion field)

    // Software prefetch hint: touch line [s1 + simm12].
    PREF,

    // Control flow (issue slots 2, 3 and 4).
    JMPT,       ///< jump to imm16 when guard LSB is 1
    JMPF,       ///< jump to imm16 when guard LSB is 0
    JMPI,       ///< unconditional jump to imm16
    JMPR,       ///< jump to address in s1 when guard LSB is 1
    HALT,       ///< stop simulation; s1 = exit value

    // Paper §2.2.1: two-slot super-operations (slots 2+3 or 4+5).
    SUPER_DUALIMIX,  ///< pairwise 2-tap filter on 16-bit values
    SUPER_LD32R,     ///< load two consecutive 32-bit words

    // Paper §2.2.2: collapsed load with interpolation (slot 5).
    LD_FRAC8,        ///< load 5 bytes, 2-tap fractional interpolation

    // Paper §2.2.3: CABAC operations (slots 2+3).
    SUPER_CABAC_CTX, ///< new (value, range) and (state, mps)
    SUPER_CABAC_STR, ///< new stream_bit_position and decoded bit

    // Companion pseudo-operation occupying the second slot of a
    // two-slot operation; carries operands s3/s4 and dst2.
    SUPER_ARGS,

    NUM_OPCODES
};

/** Number of defined opcodes. */
inline constexpr unsigned numOpcodes =
    static_cast<unsigned>(Opcode::NUM_OPCODES);

} // namespace tm3270

#endif // TM3270_ISA_OPCODES_HH
