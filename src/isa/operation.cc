#include "isa/operation.hh"

#include <sstream>

namespace tm3270
{

std::string
formatOperation(const Operation &op)
{
    const OpInfo &oi = op.info();
    std::ostringstream os;
    if (op.guard != regOne)
        os << "if r" << unsigned(op.guard) << ' ';
    os << oi.mnemonic;
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i))
            os << " r" << unsigned(op.src[i]);
    }
    if (oi.imm != ImmKind::None)
        os << " #" << op.imm;
    if (oi.numDst > 0 || oi.isStore) {
        os << " ->";
        unsigned ndst = oi.isStore ? 1 : oi.numDst;
        for (unsigned i = 0; i < ndst; ++i)
            os << " r" << unsigned(op.dst[i]);
    }
    return os.str();
}

std::string
formatInst(const VliwInst &inst)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned s = 0; s < numSlots; ++s) {
        if (!inst.slot[s].used())
            continue;
        if (!first)
            os << ", ";
        os << '[' << (s + 1) << "] " << formatOperation(inst.slot[s]);
        first = false;
    }
    if (first)
        os << "(empty)";
    return os.str();
}

} // namespace tm3270
