#include "isa/cabac_tables.hh"

namespace tm3270
{

// H.264/AVC Table 9-44: rangeTabLPS.
const uint8_t lpsRangeTable[64][4] = {
    {128, 176, 208, 240}, {128, 167, 197, 227}, {128, 158, 187, 216},
    {123, 150, 178, 205}, {116, 142, 169, 195}, {111, 135, 160, 185},
    {105, 128, 152, 175}, {100, 122, 144, 166}, {95, 116, 137, 158},
    {90, 110, 130, 150},  {85, 104, 123, 142},  {81, 99, 117, 135},
    {77, 94, 111, 128},   {73, 89, 105, 122},   {69, 85, 100, 116},
    {66, 80, 95, 110},    {62, 76, 90, 104},    {59, 72, 86, 99},
    {56, 69, 81, 94},     {53, 65, 77, 89},     {51, 62, 73, 85},
    {48, 59, 69, 80},     {46, 56, 66, 76},     {43, 53, 63, 72},
    {41, 50, 59, 69},     {39, 48, 56, 65},     {37, 45, 54, 62},
    {35, 43, 51, 59},     {33, 41, 48, 56},     {32, 39, 46, 53},
    {30, 37, 43, 50},     {29, 35, 41, 48},     {27, 33, 39, 45},
    {26, 31, 37, 43},     {24, 30, 35, 41},     {23, 28, 33, 39},
    {22, 27, 32, 37},     {21, 26, 30, 35},     {20, 24, 29, 33},
    {19, 23, 27, 31},     {18, 22, 26, 30},     {17, 21, 25, 28},
    {16, 20, 23, 27},     {15, 19, 22, 25},     {14, 18, 21, 24},
    {14, 17, 20, 23},     {13, 16, 19, 22},     {12, 15, 18, 21},
    {12, 14, 17, 20},     {11, 14, 16, 19},     {11, 13, 15, 18},
    {10, 12, 15, 17},     {10, 12, 14, 16},     {9, 11, 13, 15},
    {9, 11, 12, 14},      {8, 10, 12, 14},      {8, 9, 11, 13},
    {7, 9, 11, 12},       {7, 9, 10, 12},       {7, 8, 10, 11},
    {6, 8, 9, 11},        {6, 7, 9, 10},        {6, 7, 8, 9},
    {2, 2, 2, 2},
};

// H.264/AVC Table 9-45: transIdxMPS.
const uint8_t mpsNextStateTable[64] = {
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
    17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
    33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48,
    49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 62, 63,
};

// H.264/AVC Table 9-45: transIdxLPS.
const uint8_t lpsNextStateTable[64] = {
    0, 0, 1, 2, 2, 4, 4, 5, 6, 7, 8, 9, 9, 11, 11, 12,
    13, 13, 15, 15, 16, 16, 18, 18, 19, 19, 21, 21, 23, 22, 23, 24,
    24, 25, 26, 26, 27, 27, 28, 29, 29, 30, 30, 30, 31, 32, 32, 33,
    33, 33, 34, 34, 35, 35, 35, 36, 36, 36, 37, 37, 37, 38, 38, 63,
};

CabacStep
biariDecodeSymbol(uint32_t value, uint32_t range, uint32_t state,
                  uint32_t mps, uint32_t stream_data, uint32_t bit_pos)
{
    CabacStep r;
    uint32_t stream_aligned = stream_data << bit_pos;
    uint32_t range_lps = lpsRangeTable[state & 63][(range >> 6) & 3];
    uint32_t temp_range = range - range_lps;

    if (value < temp_range) {
        // MPS: most probable symbol.
        r.value = value;
        r.range = temp_range;
        r.bit = mps & 1;
        r.mps = mps & 1;
        r.state = mpsNextStateTable[state & 63];
    } else {
        // LPS: least probable symbol.
        r.value = value - temp_range;
        r.range = range_lps;
        r.bit = (mps & 1) ^ 1;
        r.mps = (state == 0) ? ((mps & 1) ^ 1) : (mps & 1);
        r.state = lpsNextStateTable[state & 63];
    }

    // Renormalization: at most 8 bits can be consumed.
    r.bitPos = bit_pos;
    while (r.range < 256) {
        r.value = ((r.value << 1) | ((stream_aligned >> 31) & 1)) & 0x3ff;
        r.range <<= 1;
        stream_aligned <<= 1;
        r.bitPos += 1;
    }
    return r;
}

} // namespace tm3270
