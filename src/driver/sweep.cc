#include "driver/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "support/logging.hh"
#include "support/prof.hh"
#include "support/report.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"

namespace tm3270::driver
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Harvest every stat group of @p sys into @p jr (map + text dump). */
void
collectStats(System &sys, JobResult &jr)
{
    const StatGroup *groups[] = {
        &sys.processor.stats,
        &sys.processor.lsu().stats,
        &sys.processor.lsu().dcache().stats,
        &sys.processor.icache().stats,
        &sys.processor.biu().stats,
        &sys.memory.stats,
    };
    std::ostringstream os;
    for (const StatGroup *g : groups) {
        g->dump(os);
        for (const auto &[k, v] : g->all())
            jr.stats.emplace(g->name() + "." + k, v);
    }
    jr.statDump = os.str();
}

/**
 * Per-job tracing options, resolved once per sweep from the
 * environment: TM_TRACE names a directory that receives one Chrome
 * trace (<tag>.trace.json) and one interval series (<tag>.intervals.csv)
 * per job; TM_TRACE_RING overrides the ring capacity (events) and
 * TM_TRACE_INTERVAL the sampler period (cycles). Unset TM_TRACE means
 * tracing fully off (null tracer pointers everywhere).
 */
struct TraceOptions
{
    bool enabled = false;
    std::string dir;
    size_t ringCapacity = size_t(1) << 18;
    Cycles samplePeriod = 8192;
};

TraceOptions
resolveTraceOptions()
{
    TraceOptions opt;
    const char *dir = std::getenv("TM_TRACE");
    if (dir == nullptr || *dir == '\0')
        return opt;
    opt.dir = dir;
    if (const char *e = std::getenv("TM_TRACE_RING")) {
        long n = std::strtol(e, nullptr, 10);
        if (n > 0)
            opt.ringCapacity = size_t(n);
        else
            warn("ignoring TM_TRACE_RING='%s' (want a positive integer)",
                 e);
    }
    if (const char *e = std::getenv("TM_TRACE_INTERVAL")) {
        long n = std::strtol(e, nullptr, 10);
        if (n > 0)
            opt.samplePeriod = Cycles(n);
        else
            warn("ignoring TM_TRACE_INTERVAL='%s' (want a positive "
                 "integer)", e);
    }
    std::error_code ec;
    std::filesystem::create_directories(opt.dir, ec);
    if (ec) {
        warn("TM_TRACE: cannot create directory %s: %s — tracing "
             "disabled", opt.dir.c_str(), ec.message().c_str());
        return opt;
    }
    opt.enabled = true;
    return opt;
}

/** Job tags ("mpeg2_me/D") become filenames: keep [A-Za-z0-9._-]. */
std::string
sanitizeTag(const std::string &tag)
{
    std::string out = tag;
    for (char &ch : out) {
        bool keep = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                    ch == '-';
        if (!keep)
            ch = '_';
    }
    return out;
}

/** Execute one job: compile (through the cache), run, verify, harvest
 *  stats. Never throws — every failure becomes {ok=false, error}. */
JobResult
runJob(const SimJob &job, ProgramCache &cache, const TraceOptions &topt)
{
    JobResult jr;
    jr.tag = job.tag;
    Clock::time_point t0 = Clock::now();
    try {
        ProgramCache::ProgramPtr prog = cache.get(job.workload, job.config);
        System sys(job.config);
        // Each job owns its System, so per-job tracers need no locking.
        std::optional<trace::Tracer> tracer;
        std::optional<trace::IntervalSampler> sampler;
        if (topt.enabled) {
            tracer.emplace(topt.ringCapacity);
            sampler.emplace(topt.samplePeriod);
            sys.processor.attachTracer(&*tracer);
            sys.processor.attachSampler(&*sampler);
        }
        workloads::RunOutcome o =
            workloads::runWorkloadOn(sys, job.workload, prog->encoded);
        jr.ok = o.ok;
        jr.error = o.error;
        jr.run = o.run;
        collectStats(sys, jr);
        if (topt.enabled) {
            std::string base = topt.dir + "/" + sanitizeTag(job.tag);
            std::ofstream tf(base + ".trace.json");
            if (tf) {
                tracer->writeChromeJson(tf);
                jr.artifacts.emplace_back("trace", base + ".trace.json");
            } else {
                warn("cannot write %s.trace.json", base.c_str());
            }
            std::ofstream cf(base + ".intervals.csv");
            if (cf) {
                sampler->writeCsv(cf);
                jr.artifacts.emplace_back("intervals",
                                          base + ".intervals.csv");
            } else {
                warn("cannot write %s.intervals.csv", base.c_str());
            }
            jr.traced = true;
            jr.traceEvents = tracer->recorded();
            jr.traceDropped = tracer->dropped();
        }
    } catch (const FatalError &e) {
        jr.ok = false;
        jr.error = e.what();
    } catch (const std::exception &e) {
        jr.ok = false;
        jr.error = e.what();
    }
    jr.wallMs = msSince(t0);
    return jr;
}

} // namespace

SimJob
makeJob(workloads::Workload w, char letter)
{
    MachineConfig cfg = configByLetter(letter);
    return makeJob(std::move(w), letter, std::move(cfg));
}

SimJob
makeJob(workloads::Workload w, char letter, MachineConfig cfg,
        std::string tag)
{
    SimJob j;
    if (tag.empty())
        tag = strfmt("%s/%c", w.name.c_str(), letter);
    j.workload = std::move(w);
    j.configLetter = letter;
    j.config = std::move(cfg);
    j.tag = std::move(tag);
    return j;
}

unsigned
resolveWorkerCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TM_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return unsigned(n);
        warn("ignoring TM_JOBS='%s' (want a positive integer)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepReport
SweepDriver::run(const std::vector<SimJob> &jobs)
{
    SweepReport rep;
    rep.workers = nWorkers;
    rep.results.resize(jobs.size());
    const uint64_t hits0 = cache_.hits();
    const uint64_t misses0 = cache_.misses();

    Clock::time_point t0 = Clock::now();
    const TraceOptions topt = resolveTraceOptions();
    std::atomic<size_t> next{0};
    auto worker = [&] {
        // Workers are fresh threads: opt each into the process-wide
        // profiler so sweep host time is attributed under TM_PROF.
        prof::attach(prof::envProfiler());
        for (size_t i; (i = next.fetch_add(1)) < jobs.size();)
            rep.results[i] = runJob(jobs[i], cache_, topt);
    };
    const size_t pool = std::min<size_t>(nWorkers, jobs.size());
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::jthread> threads;
        threads.reserve(pool);
        for (size_t t = 0; t < pool; ++t)
            threads.emplace_back(worker);
    } // jthreads join here
    rep.wallMs = msSince(t0);

    for (const JobResult &jr : rep.results) {
        rep.jobWallMsSum += jr.wallMs;
        rep.simInstrs += jr.run.instrs;
        rep.simCycles += jr.run.cycles;
        rep.failed += !jr.ok;
    }
    rep.cacheHits = cache_.hits() - hits0;
    rep.cacheMisses = cache_.misses() - misses0;
    return rep;
}

void
writeSweepReport(const SweepReport &rep, const std::string &sweepName,
                 const std::string &path)
{
    using report::Json;
    report::RunReport mr("sweep", sweepName);

    Json &ctx = mr.context();
    ctx["workers"] = Json(rep.workers);
    ctx["jobs"] = Json(uint64_t(rep.results.size()));

    Json &agg = mr.aggregate();
    agg["wall_ms"] = Json(rep.wallMs);
    agg["job_wall_ms_sum"] = Json(rep.jobWallMsSum);
    agg["parallel_speedup"] = Json(rep.speedup());
    agg["items_per_second"] = Json(rep.instrsPerSecond());
    agg["sim_instrs"] = Json(rep.simInstrs);
    agg["sim_cycles"] = Json(rep.simCycles);
    agg["cache_hits"] = Json(rep.cacheHits);
    agg["cache_misses"] = Json(rep.cacheMisses);
    agg["failed_jobs"] = Json(uint64_t(rep.failed));

    for (const JobResult &jr : rep.results) {
        Json j = Json::object();
        j["tag"] = Json(jr.tag);
        j["ok"] = Json(jr.ok);
        j["wall_ms"] = Json(jr.wallMs);
        j["cycles"] = Json(uint64_t(jr.run.cycles));
        j["instrs"] = Json(jr.run.instrs);
        if (!jr.statDump.empty())
            j["stat_digest"] = Json(report::statDigest(jr.statDump));
        if (!jr.error.empty())
            j["error"] = Json(jr.error);
        if (jr.traced) {
            j["trace_events"] = Json(jr.traceEvents);
            j["trace_dropped"] = Json(jr.traceDropped);
        }
        for (const auto &[kind, apath] : jr.artifacts) {
            Json a = Json::object();
            a["kind"] = Json(kind);
            a["path"] = Json(apath);
            j["artifacts"].push(std::move(a));
        }
        mr.addJob(std::move(j));
    }
    mr.setProfile(prof::envProfiler());
    mr.writeFile(path);
}

} // namespace tm3270::driver
