#include "driver/program_cache.hh"

#include "support/logging.hh"

namespace tm3270::driver
{

std::string
programCacheKey(const std::string &workload, const MachineConfig &cfg)
{
    tir::SchedConfig sc = tir::SchedConfig::fromMachine(cfg);
    return strfmt("%s|slots%02x|ld%u|jd%u|lat%u|%s", workload.c_str(),
                  sc.loadSlotMask, sc.maxLoadsPerInst, sc.jumpDelaySlots,
                  sc.loadLatency, sc.allowTm3270Ops ? "tm3270" : "tm3260");
}

ProgramCache::ProgramPtr
ProgramCache::get(const workloads::Workload &w, const MachineConfig &cfg)
{
    const std::string key = programCacheKey(w.name, cfg);
    std::promise<ProgramPtr> prom;
    std::shared_future<ProgramPtr> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(mu);
        auto it = entries.find(key);
        if (it == entries.end()) {
            fut = prom.get_future().share();
            entries.emplace(key, fut);
            owner = true;
        } else {
            fut = it->second;
        }
    }
    if (owner) {
        nMisses.fetch_add(1, std::memory_order_relaxed);
        try {
            prom.set_value(std::make_shared<const tir::CompiledProgram>(
                tir::compile(w.build(), cfg)));
        } catch (...) {
            prom.set_exception(std::current_exception());
        }
    } else {
        nHits.fetch_add(1, std::memory_order_relaxed);
    }
    return fut.get(); // rethrows a cached compile failure
}

} // namespace tm3270::driver
