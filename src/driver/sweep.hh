/**
 * @file
 * Host-parallel simulation sweeps. The paper's evaluation is a matrix
 * of independent (workload x configuration) runs — Figure 7 alone is
 * 11 workloads x 4 configurations — and each simulated run is
 * single-threaded and fully isolated (its own System, memory and stat
 * groups). The SweepDriver shards such a matrix across a pool of
 * std::jthread workers and returns results in deterministic submission
 * order regardless of completion order; a shared ProgramCache compiles
 * each distinct (workload, scheduling-config) cell exactly once.
 *
 * Worker count: explicit constructor argument, else the TM_JOBS
 * environment variable, else std::thread::hardware_concurrency().
 *
 * A job failure (verification mismatch, non-halting program, compile
 * error) is reported as JobResult{ok=false, error} for that job only;
 * the rest of the sweep is unaffected.
 */

#ifndef TM3270_DRIVER_SWEEP_HH
#define TM3270_DRIVER_SWEEP_HH

#include <map>
#include <string>
#include <vector>

#include "driver/program_cache.hh"
#include "workloads/workload.hh"

namespace tm3270::driver
{

/** One cell of a sweep: a workload on a machine configuration. */
struct SimJob
{
    workloads::Workload workload;
    /** Paper configuration letter ('A'..'D'; '-' for a custom tweak). */
    char configLetter = 'D';
    MachineConfig config;
    /** Display label; makeJob() defaults it to "workload/letter". */
    std::string tag;
};

/** Job for @p w on the standard configuration @p letter ('A'..'D'). */
SimJob makeJob(workloads::Workload w, char letter);

/** Job for @p w on an explicit (possibly tweaked) configuration. */
SimJob makeJob(workloads::Workload w, char letter, MachineConfig cfg,
               std::string tag = "");

/** Outcome of one sweep job (structured: no fatal() across threads). */
struct JobResult
{
    std::string tag;
    bool ok = false;
    std::string error;      ///< empty iff ok
    RunResult run;          ///< valid iff the program ran (may be !ok)
    /** Every touched counter of every stat group, "group.counter". */
    std::map<std::string, uint64_t> stats;
    /** Textual dump of all stat groups (cpu, lsu, dcache, icache,
     *  biu, mem) — the determinism-test golden. */
    std::string statDump;
    double wallMs = 0.0;    ///< host wall-clock of this job
    /** Files this job produced under TM_TRACE, as (kind, path) —
     *  e.g. ("trace", ".../mpeg2_me_D.trace.json"); recorded in the
     *  run manifest so history points link to their evidence. */
    std::vector<std::pair<std::string, std::string>> artifacts;
    bool traced = false;        ///< a tracer was attached to this job
    uint64_t traceEvents = 0;   ///< tracer lifetime event count
    uint64_t traceDropped = 0;  ///< events lost to ring overwrite
};

/** Whole-sweep results plus host-throughput accounting. */
struct SweepReport
{
    std::vector<JobResult> results; ///< submission order
    unsigned workers = 1;
    double wallMs = 0.0;       ///< wall-clock of the whole sweep
    double jobWallMsSum = 0.0; ///< sum of per-job wall times (~serial)
    uint64_t cacheHits = 0;    ///< ProgramCache hits during this sweep
    uint64_t cacheMisses = 0;  ///< distinct cells compiled
    uint64_t simInstrs = 0;    ///< simulated VLIW instructions, summed
    uint64_t simCycles = 0;    ///< simulated cycles, summed
    size_t failed = 0;         ///< jobs with ok == false

    /** Pool speedup estimate: serial-equivalent time / sweep time. */
    double
    speedup() const
    {
        return wallMs > 0.0 ? jobWallMsSum / wallMs : 0.0;
    }

    /** Host throughput: simulated VLIW instructions per wall second. */
    double
    instrsPerSecond() const
    {
        return wallMs > 0.0 ? double(simInstrs) / (wallMs / 1e3) : 0.0;
    }
};

/**
 * Resolve a worker count: @p requested if non-zero, else TM_JOBS
 * (positive integer), else hardware_concurrency(), never less than 1.
 */
unsigned resolveWorkerCount(unsigned requested);

/** Thread-pooled sweep executor with a per-driver ProgramCache. */
class SweepDriver
{
  public:
    /** @p workers == 0: use TM_JOBS / hardware_concurrency. */
    explicit SweepDriver(unsigned workers = 0)
        : nWorkers(resolveWorkerCount(workers))
    {}

    /**
     * Run every job and return results in submission order. Blocks
     * until the whole sweep has finished. Reusable: a second run()
     * shares the driver's ProgramCache with the first.
     */
    SweepReport run(const std::vector<SimJob> &jobs);

    unsigned workers() const { return nWorkers; }
    ProgramCache &cache() { return cache_; }

  private:
    unsigned nWorkers;
    ProgramCache cache_;
};

/**
 * Write @p rep as a tm3270.run_manifest.v1 JSON document
 * (support/report.hh) to @p path: schema + host/build context,
 * per-sweep aggregates (wall clock, pool speedup, cache hits,
 * instrs/s), one record per job (with a stat digest and any trace
 * artifacts), the self-profiler totals when TM_PROF is on, and any
 * warnings raised during the sweep. scripts/perf_history.py appends
 * these manifests to bench/history/history.jsonl.
 */
void writeSweepReport(const SweepReport &rep, const std::string &sweepName,
                      const std::string &path);

} // namespace tm3270::driver

#endif // TM3270_DRIVER_SWEEP_HH
