/**
 * @file
 * Thread-safe cache of compiled TIR programs for simulation sweeps,
 * keyed by (workload name, scheduling-relevant configuration fields).
 * tir::compile runs once per distinct key even when many sweep jobs
 * request the same program concurrently; the compiled/encoded program
 * is shared by reference (the processor only ever reads it).
 */

#ifndef TM3270_DRIVER_PROGRAM_CACHE_HH
#define TM3270_DRIVER_PROGRAM_CACHE_HH

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tir/scheduler.hh"
#include "workloads/workload.hh"

namespace tm3270::driver
{

/**
 * Cache key: workload identity plus every MachineConfig field the
 * compiler observes (SchedConfig::fromMachine). Configurations B, C
 * and D share a key — they differ only in frequency and cache
 * geometry, which the scheduler never sees — so a Figure-7 sweep
 * compiles each workload twice (A and B/C/D), not four times.
 */
std::string programCacheKey(const std::string &workload,
                            const MachineConfig &cfg);

/**
 * Compile-once program cache. get() is safe to call from any number
 * of sweep worker threads: the first caller for a key compiles while
 * later callers for the same key block on the shared future. A
 * compile failure (FatalError) is cached too and rethrown to every
 * requester of that key.
 */
class ProgramCache
{
  public:
    using ProgramPtr = std::shared_ptr<const tir::CompiledProgram>;

    /** Fetch (or compile exactly once) the program for @p w on @p cfg. */
    ProgramPtr get(const workloads::Workload &w, const MachineConfig &cfg);

    uint64_t hits() const { return nHits.load(); }
    uint64_t misses() const { return nMisses.load(); }

  private:
    mutable std::mutex mu;
    // tm-lint: allow(D1) mu-guarded key lookup only; never iterated,
    // so hash order cannot influence job results or their ordering.
    std::unordered_map<std::string, std::shared_future<ProgramPtr>> entries;
    std::atomic<uint64_t> nHits{0};
    std::atomic<uint64_t> nMisses{0};
};

} // namespace tm3270::driver

#endif // TM3270_DRIVER_PROGRAM_CACHE_HH
