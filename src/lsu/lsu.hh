/**
 * @file
 * Load/store unit (paper §4): 128 KByte 4-way data cache with 128-byte
 * lines, LRU replacement, copy-back, allocate-on-write-miss with byte
 * validity, penalty-free non-aligned access, a cache write buffer
 * (CWB), refill/copy-back paths through the BIU, and the hardware
 * prefetch engine driven by the region prefetcher.
 *
 * The same unit, configured with TM3260 parameters (16 KByte, 64-byte
 * lines, 8-way, fetch-on-write-miss), models the baseline processor.
 */

#ifndef TM3270_LSU_LSU_HH
#define TM3270_LSU_LSU_HH

#include <deque>
#include <vector>

#include "cache/cache.hh"
#include "isa/semantics.hh"
#include "lsu/mmio.hh"
#include "memory/biu.hh"
#include "prefetch/line_flags.hh"
#include "prefetch/region_prefetcher.hh"
#include "support/stats.hh"

namespace tm3270
{

namespace trace
{
class Tracer;
}

/** Policy parameters of the load/store unit. */
struct LsuConfig
{
    /** true: TM3270 allocate-on-write-miss; false: fetch-on-write. */
    bool allocateOnWriteMiss = true;
    unsigned cwbDepth = 8;           ///< cache write buffer entries
    unsigned prefetchQueueDepth = 8;
    unsigned maxInflightPrefetch = 2;
};

/** Result of a load: stall cycles plus up to two register values. */
struct MemResult
{
    Cycles stall = 0;
    std::array<Word, 2> data = {0, 0};
};

/**
 * The load/store unit. All multi-byte memory operations are
 * big-endian, matching the SUPER_LD32R definition in paper Table 2.
 */
class Lsu
{
  public:
    Lsu(LsuConfig cfg, CacheGeometry dcache_geom, Biu &biu,
        MainMemory &mem, MmioDevice *mmio = nullptr);

    /** Execute a load operation at @p addr; @p aux is the fractional
     *  position for LD_FRAC8. */
    MemResult load(Opcode opc, Addr addr, Word aux, Cycles now);

    /** Execute a store; returns stall cycles. */
    Cycles store(Opcode opc, Addr addr, Word value, Cycles now);

    /** Software prefetch hint (PREF operation). */
    void softwarePrefetch(Addr addr, Cycles now);

    /** Attach the MMIO device (resolves the construction cycle with
     *  the core, which owns both the LSU and the device). */
    void setMmio(MmioDevice *m) { mmio = m; }

    /**
     * Per-instruction housekeeping: prefetch completions and issue.
     * Event-driven: a single compare against the next cycle at which
     * the prefetch machinery can make progress (see pfNextEvent), so
     * an idle LSU pays one branch per instruction.
     */
    void
    tick(Cycles now)
    {
        if (now < pfNextEvent)
            return;
        servicePrefetches(now);
        tryIssuePrefetch(now);
    }

    /** Copy back all dirty lines and invalidate (end of run). */
    void flushCaches();

    Cache &dcache() { return dc; }
    RegionPrefetcher &prefetcher() { return pf; }
    const LsuConfig &config() const { return cfg; }

    /** Attach/detach the cycle-level event tracer (null: off). */
    void setTracer(trace::Tracer *t) { tracer = t; }

    /**
     * Re-intern the per-cause stall-cycle counters into @p g. The
     * processor binds its "cpu.stall" child group here so the LSU's
     * data-side stall causes and the front end's instruction-fetch
     * stalls land in one exhaustive breakdown whose counters sum to
     * the run's stall_cycles total (gated by tests/test_trace.cc).
     * Standalone LSUs keep the default binding to their own
     * "lsu.stall" child group.
     */
    void
    bindStallStats(StatGroup &g)
    {
        hStallDcacheMiss = g.handle("dcache_miss");
        hStallPrefetchWait = g.handle("prefetch_wait");
        hStallStoreFetch = g.handle("store_fetch");
        hStallCopyback = g.handle("copyback");
    }

    StatGroup stats{"lsu"};

  private:
    LsuConfig cfg;
    Cache dc;
    Biu &biu;
    MainMemory &mem;
    MmioDevice *mmio;
    RegionPrefetcher pf;
    trace::Tracer *tracer = nullptr;

    /** Cache write buffer: drain times of pending writes. */
    std::deque<Cycles> cwb;
    Cycles cwbLastDrain = 0;

    /** In-flight hardware prefetches. */
    struct InflightPf
    {
        Addr lineAddr;
        Cycles done;
    };
    std::vector<InflightPf> inflightPf;
    std::deque<Addr> pfQueue;
    LineFlags pfPending;   ///< queued or in flight (one bit per line)
    LineFlags pfInstalled; ///< for usefulness stats (one bit per line)

    /** Reusable eviction buffer: Cache::allocate fills it in place,
     *  so the steady-state miss path performs no heap allocation. */
    Victim victimBuf;

    static constexpr Cycles kNeverCycle = ~Cycles(0);

    /**
     * Event-driven fast path (DESIGN.md §8). Invariant, re-established
     * by pfRecomputeNextEvent() after every mutation of the prefetch
     * queue or in-flight list:
     *
     *  - pfInflightNextDone: earliest completion cycle of an in-flight
     *    prefetch (kNeverCycle when none) — servicePrefetches() is a
     *    provable no-op strictly before it;
     *  - pfNextEvent: earliest cycle at which tick() can do anything:
     *    kNeverCycle when queue and in-flight list are both empty,
     *    pfInflightNextDone while the queue is blocked behind a full
     *    in-flight list, 0 (poll) while queued prefetches are eligible
     *    to issue or drop (bus-arbitration windows).
     *
     * Both are conservative only in the direction of running the slow
     * path, never of skipping work, so stats stay bit-identical.
     */
    Cycles pfInflightNextDone = kNeverCycle;
    Cycles pfNextEvent = kNeverCycle;

    // Interned counters for the per-access hot path.
    StatHandle hLoads = stats.handle("loads");
    StatHandle hStores = stats.handle("stores");
    StatHandle hNonalignedLoads = stats.handle("nonaligned_loads");
    StatHandle hLoadLineHits = stats.handle("load_line_hits");
    StatHandle hLoadLineMisses = stats.handle("load_line_misses");
    StatHandle hLoadValidityMisses = stats.handle("load_validity_misses");
    StatHandle hLoadMissStallCycles =
        stats.handle("load_miss_stall_cycles");
    StatHandle hLoadLineCrossings = stats.handle("load_line_crossings");
    StatHandle hLoadPrefetchWaits = stats.handle("load_prefetch_waits");
    StatHandle hLoadPrefetchWaitCycles =
        stats.handle("load_prefetch_wait_cycles");
    StatHandle hStoreLineHits = stats.handle("store_line_hits");
    StatHandle hStoreLineMisses = stats.handle("store_line_misses");
    StatHandle hStoreAllocations = stats.handle("store_allocations");
    StatHandle hStoreFetchStallCycles =
        stats.handle("store_fetch_stall_cycles");
    StatHandle hStoreLineCrossings = stats.handle("store_line_crossings");
    StatHandle hCwbFullStalls = stats.handle("cwb_full_stalls");
    StatHandle hCwbFullStallCycles =
        stats.handle("cwb_full_stall_cycles");
    StatHandle hPrefetchRequests = stats.handle("prefetch_requests");
    StatHandle hPrefetchIssued = stats.handle("prefetch_issued");
    StatHandle hPrefetchInstalled = stats.handle("prefetch_installed");
    StatHandle hPrefetchUseful = stats.handle("prefetch_useful");

    /** Fallback home of the per-cause stall counters for standalone
     *  LSUs ("lsu.stall.*"); a Processor rebinds the handles into its
     *  own "cpu.stall" group, leaving this one untouched (and so
     *  invisible in dumps). */
    StatGroup stallStatsSelf{"stall"};
    StatHandle hStallDcacheMiss = stallStatsSelf.handle("dcache_miss");
    StatHandle hStallPrefetchWait = stallStatsSelf.handle("prefetch_wait");
    StatHandle hStallStoreFetch = stallStatsSelf.handle("store_fetch");
    StatHandle hStallCopyback = stallStatsSelf.handle("copyback");

    bool isMmio(Addr addr) const;
    void writeVictim(const Victim &v);
    /** ensureLineFor*() leave the line resident and return its way
     *  through @p way_out, so callers need no second tag probe. */
    Cycles ensureLineForLoad(Addr line_addr, unsigned offset, unsigned len,
                             Cycles now, int &way_out);
    Cycles ensureLineForStore(Addr line_addr, Cycles now, int &way_out);
    Cycles accessLoadBytes(Addr addr, unsigned len, uint8_t *out,
                           Cycles now);
    Cycles accessStoreBytes(Addr addr, unsigned len, const uint8_t *data,
                            Cycles now);
    Cycles cwbPush(Cycles now);
    void enqueuePrefetch(Addr line_addr, Cycles now);
    void servicePrefetches(Cycles now);
    void tryIssuePrefetch(Cycles now);
    void pfRecomputeNextEvent();
    int inflightIndex(Addr line_addr) const;
};

} // namespace tm3270

#endif // TM3270_LSU_LSU_HH
