#include "lsu/lsu.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/prof.hh"
#include "trace/trace.hh"

namespace tm3270
{

using trace::Ev;

Lsu::Lsu(LsuConfig cfg_, CacheGeometry dgeom, Biu &biu_, MainMemory &mem_,
         MmioDevice *mmio_)
    : cfg(cfg_), dc(std::move(dgeom)), biu(biu_), mem(mem_), mmio(mmio_),
      pfPending(mem_.size(), dc.lineBytes()),
      pfInstalled(mem_.size(), dc.lineBytes())
{
    stats.addChild(&stallStatsSelf);
}

bool
Lsu::isMmio(Addr addr) const
{
    return mmio && mmio->handles(addr);
}

int
Lsu::inflightIndex(Addr line_addr) const
{
    for (size_t i = 0; i < inflightPf.size(); ++i) {
        if (inflightPf[i].lineAddr == line_addr)
            return static_cast<int>(i);
    }
    return -1;
}

void
Lsu::writeVictim(const Victim &v)
{
    if (!v.valid || !v.dirty)
        return;
    // Copy-back: only the validated bytes reach memory (the SoC bus
    // protocol carries byte-validity indicators, paper §4.1).
    mem.writeMasked(v.lineAddr, v.data.data(), dc.lineBytes(),
                    v.vmask.data());
}

void
Lsu::pfRecomputeNextEvent()
{
    Cycles next = kNeverCycle;
    for (const InflightPf &p : inflightPf)
        next = std::min(next, p.done);
    pfInflightNextDone = next;
    // While queued prefetches could issue (or be dropped as resident)
    // the engine must poll every tick: bus arbitration against demand
    // traffic is not an event the LSU can predict.
    pfNextEvent =
        (!pfQueue.empty() && inflightPf.size() < cfg.maxInflightPrefetch)
            ? 0
            : next;
}

void
Lsu::servicePrefetches(Cycles now)
{
    if (now < pfInflightNextDone)
        return; // provable no-op: nothing in flight completes by now
    TM_PROF_SCOPE(prof::Scope::PrefetchService);
    for (size_t i = 0; i < inflightPf.size();) {
        if (inflightPf[i].done > now) {
            ++i;
            continue;
        }
        Addr la = inflightPf[i].lineAddr;
        if (dc.probe(la) < 0) {
            int way;
            dc.allocate(la, way, victimBuf);
            dc.fillFromMemory(mem, la, way);
            writeVictim(victimBuf);
            if (victimBuf.valid && victimBuf.dirty)
                biu.asyncWrite(victimBuf.lineAddr, dc.lineBytes(), now);
            pfInstalled.set(la);
            hPrefetchInstalled.inc();
            TM_TRACE_EVENT(tracer, Ev::PrefetchInstall,
                           inflightPf[i].done, 0, la);
        }
        pfPending.clear(la);
        inflightPf.erase(inflightPf.begin() + long(i));
    }
    pfRecomputeNextEvent();
}

void
Lsu::tryIssuePrefetch(Cycles now)
{
    if (pfQueue.empty() || inflightPf.size() >= cfg.maxInflightPrefetch)
        return; // provable no-op
    TM_PROF_SCOPE(prof::Scope::PrefetchIssue);
    while (inflightPf.size() < cfg.maxInflightPrefetch && !pfQueue.empty()) {
        Addr la = pfQueue.front();
        if (dc.probe(la) >= 0) {
            // Became resident in the meantime; drop.
            pfQueue.pop_front();
            pfPending.clear(la);
            TM_TRACE_EVENT(tracer, Ev::PrefetchDrop, now, 0, la, 0);
            continue;
        }
        Cycles done = biu.prefetchRead(la, dc.lineBytes(), now);
        if (done == 0)
            break; // bus busy with demand traffic
        pfQueue.pop_front();
        inflightPf.push_back({la, done});
        hPrefetchIssued.inc();
        TM_TRACE_EVENT(tracer, Ev::PrefetchIssue, now,
                       uint32_t(done - now), la);
    }
    pfRecomputeNextEvent();
}

void
Lsu::enqueuePrefetch(Addr line_addr, Cycles now)
{
    if (dc.probe(line_addr) >= 0 || pfPending.test(line_addr)) {
        TM_TRACE_EVENT(tracer, Ev::PrefetchDrop, now, 0, line_addr, 0);
        return;
    }
    if (pfQueue.size() >= cfg.prefetchQueueDepth) {
        TM_TRACE_EVENT(tracer, Ev::PrefetchDrop, now, 0, line_addr, 1);
        return;
    }
    pfQueue.push_back(line_addr);
    pfPending.set(line_addr);
    hPrefetchRequests.inc();
    TM_TRACE_EVENT(tracer, Ev::PrefetchRequest, now, 0, line_addr);
    pfRecomputeNextEvent();
}

Cycles
Lsu::cwbPush(Cycles now)
{
    // Drain completed entries.
    while (!cwb.empty() && cwb.front() <= now)
        cwb.pop_front();

    Cycles stall = 0;
    if (cwb.size() >= cfg.cwbDepth) {
        // Wait for the oldest pending write to drain into the array.
        stall = cwb.front() - now;
        cwb.pop_front();
        hCwbFullStalls.inc();
        hCwbFullStallCycles.inc(stall);
        hStallCopyback.inc(stall);
        TM_TRACE_EVENT(tracer, Ev::StallCopyback, now, uint32_t(stall));
    }
    Cycles drain = std::max(now + stall, cwbLastDrain + 1);
    cwbLastDrain = drain;
    cwb.push_back(drain);
    return stall;
}

Cycles
Lsu::ensureLineForLoad(Addr line_addr, unsigned offset, unsigned len,
                       Cycles now, int &way_out)
{
    servicePrefetches(now);

    int way = dc.probe(line_addr);
    if (way >= 0 && dc.bytesValid(line_addr, way, offset, len)) {
        dc.touch(line_addr, way);
        hLoadLineHits.inc();
        if (pfInstalled.testClear(line_addr)) {
            hPrefetchUseful.inc();
            TM_TRACE_EVENT(tracer, Ev::PrefetchHit, now, 0, line_addr);
        }
        way_out = way;
        return 0;
    }

    // In-flight prefetch to this line: wait for it, then install.
    int ifl = inflightIndex(line_addr);
    if (ifl >= 0) {
        Cycles done = inflightPf[size_t(ifl)].done;
        Cycles stall = done > now ? done - now : 0;
        servicePrefetches(done);
        hLoadPrefetchWaits.inc();
        hLoadPrefetchWaitCycles.inc(stall);
        hStallPrefetchWait.inc(stall);
        TM_TRACE_EVENT(tracer, Ev::StallPrefetchWait, now,
                       uint32_t(stall), line_addr);
        int w = dc.probe(line_addr);
        tm_assert(w >= 0, "prefetched line not installed");
        dc.touch(line_addr, w);
        way_out = w;
        return stall;
    }

    TM_PROF_SCOPE(prof::Scope::LsuRefill);
    hLoadLineMisses.inc();
    TM_TRACE_EVENT(tracer,
                   way >= 0 ? Ev::DcacheValidityMiss : Ev::DcacheLoadMiss,
                   now, 0, line_addr);
    Cycles done = biu.demandRead(line_addr, dc.lineBytes(), now);
    if (way >= 0) {
        // Allocated-but-partially-invalid line: refill merge.
        hLoadValidityMisses.inc();
        dc.fillFromMemory(mem, line_addr, way);
        dc.touch(line_addr, way);
    } else {
        dc.allocate(line_addr, way, victimBuf);
        writeVictim(victimBuf);
        dc.fillFromMemory(mem, line_addr, way);
        if (victimBuf.valid && victimBuf.dirty)
            biu.asyncWrite(victimBuf.lineAddr, dc.lineBytes(), done);
    }
    Cycles stall = done - now;
    hLoadMissStallCycles.inc(stall);
    hStallDcacheMiss.inc(stall);
    TM_TRACE_EVENT(tracer, Ev::StallDcacheMiss, now, uint32_t(stall),
                   line_addr);
    way_out = way;
    return stall;
}

Cycles
Lsu::ensureLineForStore(Addr line_addr, Cycles now, int &way_out)
{
    servicePrefetches(now);

    int way = dc.probe(line_addr);
    if (way >= 0) {
        dc.touch(line_addr, way);
        hStoreLineHits.inc();
        way_out = way;
        return 0;
    }

    int ifl = inflightIndex(line_addr);
    if (ifl >= 0) {
        Cycles done = inflightPf[size_t(ifl)].done;
        Cycles stall = done > now ? done - now : 0;
        servicePrefetches(done);
        hStallPrefetchWait.inc(stall);
        TM_TRACE_EVENT(tracer, Ev::StallPrefetchWait, now,
                       uint32_t(stall), line_addr);
        int w = dc.probe(line_addr);
        tm_assert(w >= 0, "prefetched line not installed");
        dc.touch(line_addr, w);
        way_out = w;
        return stall;
    }

    TM_PROF_SCOPE(prof::Scope::LsuRefill);
    hStoreLineMisses.inc();
    TM_TRACE_EVENT(tracer, Ev::DcacheStoreMiss, now, 0, line_addr);
    Cycles stall = 0;
    dc.allocate(line_addr, way, victimBuf);
    writeVictim(victimBuf);
    if (cfg.allocateOnWriteMiss) {
        // Allocate-on-write-miss: no fetch; the line starts with all
        // bytes invalid and the byte-validity mask tracks the stores.
        if (victimBuf.valid && victimBuf.dirty)
            biu.asyncWrite(victimBuf.lineAddr, dc.lineBytes(), now);
        hStoreAllocations.inc();
    } else {
        // Fetch-on-write-miss (TM3260): the line is fetched from
        // memory before the store merges into it.
        Cycles done = biu.demandRead(line_addr, dc.lineBytes(), now);
        dc.fillFromMemory(mem, line_addr, way);
        if (victimBuf.valid && victimBuf.dirty)
            biu.asyncWrite(victimBuf.lineAddr, dc.lineBytes(), done);
        stall = done - now;
        hStoreFetchStallCycles.inc(stall);
        hStallStoreFetch.inc(stall);
        TM_TRACE_EVENT(tracer, Ev::StallStoreFetch, now, uint32_t(stall),
                       line_addr);
    }
    way_out = way;
    return stall;
}

Cycles
Lsu::accessLoadBytes(Addr addr, unsigned len, uint8_t *out, Cycles now)
{
    Cycles stall = 0;
    Addr la = dc.lineAddrOf(addr);
    Addr la_end = dc.lineAddrOf(addr + len - 1);
    if (la != la_end)
        hLoadLineCrossings.inc();

    unsigned done = 0;
    Addr cur = addr;
    while (done < len) {
        Addr line = dc.lineAddrOf(cur);
        unsigned off = cur - line;
        unsigned chunk = std::min(len - done, dc.lineBytes() - off);
        int way;
        stall += ensureLineForLoad(line, off, chunk, now + stall, way);
        dc.readBytes(line, way, off, chunk, out + done);
        done += chunk;
        cur += chunk;
    }
    return stall;
}

Cycles
Lsu::accessStoreBytes(Addr addr, unsigned len, const uint8_t *data,
                      Cycles now)
{
    Cycles stall = 0;
    Addr la = dc.lineAddrOf(addr);
    Addr la_end = dc.lineAddrOf(addr + len - 1);
    if (la != la_end)
        hStoreLineCrossings.inc();

    unsigned done = 0;
    Addr cur = addr;
    while (done < len) {
        Addr line = dc.lineAddrOf(cur);
        unsigned off = cur - line;
        unsigned chunk = std::min(len - done, dc.lineBytes() - off);
        int way;
        stall += ensureLineForStore(line, now + stall, way);
        dc.writeBytes(line, way, off, chunk, data + done);
        done += chunk;
        cur += chunk;
    }
    return stall;
}

MemResult
Lsu::load(Opcode opc, Addr addr, Word aux, Cycles now)
{
    MemResult r;
    hLoads.inc();
    if (addr & (memAccessSize(opc) >= 4 ? 3 : memAccessSize(opc) - 1))
        hNonalignedLoads.inc();

    if (isMmio(addr)) {
        tm_assert(opc == Opcode::LD32D || opc == Opcode::LD32R ||
                      opc == Opcode::LD32X,
                  "MMIO access must be a 32-bit load");
        r.data[0] = mmio->read(addr);
        return r;
    }

    uint8_t buf[8];
    unsigned len = memAccessSize(opc);
    r.stall = accessLoadBytes(addr, len, buf, now);

    switch (opc) {
      case Opcode::LD8U:
        r.data[0] = buf[0];
        break;
      case Opcode::LD8S:
        r.data[0] = Word(SWord(int8_t(buf[0])));
        break;
      case Opcode::LD16U:
        r.data[0] = (Word(buf[0]) << 8) | buf[1];
        break;
      case Opcode::LD16S:
        r.data[0] = Word(SWord(int16_t((buf[0] << 8) | buf[1])));
        break;
      case Opcode::LD32D:
      case Opcode::LD32R:
      case Opcode::LD32X:
        r.data[0] = packBigEndian(buf);
        break;
      case Opcode::SUPER_LD32R:
        r.data[0] = packBigEndian(buf);
        r.data[1] = packBigEndian(buf + 4);
        break;
      case Opcode::LD_FRAC8: {
        std::array<uint8_t, 5> d;
        std::copy_n(buf, 5, d.begin());
        r.data[0] = interpolateFrac8(d, aux);
        break;
      }
      default:
        panic("Lsu::load on non-load opcode");
    }

    // Hardware region prefetch trigger (paper §2.3).
    if (auto target = pf.onLoad(addr)) {
        Addr la_t = dc.lineAddrOf(*target);
        if (inflightIndex(la_t) < 0)
            enqueuePrefetch(la_t, now + r.stall);
    }
    tryIssuePrefetch(now + r.stall);
    return r;
}

Cycles
Lsu::store(Opcode opc, Addr addr, Word value, Cycles now)
{
    hStores.inc();

    if (isMmio(addr)) {
        tm_assert(opc == Opcode::ST32D || opc == Opcode::ST32R,
                  "MMIO access must be a 32-bit store");
        mmio->write(addr, value);
        return 0;
    }

    uint8_t buf[4];
    unsigned len = memAccessSize(opc);
    switch (len) {
      case 1:
        buf[0] = uint8_t(value);
        break;
      case 2:
        buf[0] = uint8_t(value >> 8);
        buf[1] = uint8_t(value);
        break;
      case 4:
        buf[0] = uint8_t(value >> 24);
        buf[1] = uint8_t(value >> 16);
        buf[2] = uint8_t(value >> 8);
        buf[3] = uint8_t(value);
        break;
      default:
        panic("bad store size");
    }

    Cycles stall = accessStoreBytes(addr, len, buf, now);
    stall += cwbPush(now + stall);
    return stall;
}

void
Lsu::softwarePrefetch(Addr addr, Cycles now)
{
    enqueuePrefetch(dc.lineAddrOf(addr), now);
    tryIssuePrefetch(now);
}

void
Lsu::flushCaches()
{
    dc.flush(mem);
    cwb.clear();
    cwbLastDrain = 0;
    inflightPf.clear();
    pfQueue.clear();
    pfPending.reset();
    pfInstalled.reset();
    pfInflightNextDone = kNeverCycle;
    pfNextEvent = kNeverCycle;
}

} // namespace tm3270
