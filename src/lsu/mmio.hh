/**
 * @file
 * Interface for memory-mapped IO devices. MMIO accesses bypass the
 * data cache. The core registers a device implementing the prefetch
 * region registers, cycle counter and debug output.
 */

#ifndef TM3270_LSU_MMIO_HH
#define TM3270_LSU_MMIO_HH

#include "support/types.hh"

namespace tm3270
{

/** A word-addressed memory-mapped device. */
class MmioDevice
{
  public:
    virtual ~MmioDevice() = default;

    /** True when this device decodes @p addr. */
    virtual bool handles(Addr addr) const = 0;

    /** 32-bit MMIO read. */
    virtual Word read(Addr addr) = 0;

    /** 32-bit MMIO write. */
    virtual void write(Addr addr, Word value) = 0;
};

} // namespace tm3270

#endif // TM3270_LSU_MMIO_HH
