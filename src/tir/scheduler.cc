#include "tir/scheduler.hh"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <set>

#include "support/logging.hh"
#include "support/prof.hh"

namespace tm3270::tir
{

SchedConfig
SchedConfig::fromMachine(const MachineConfig &m)
{
    SchedConfig c;
    c.loadSlotMask = m.loadSlotMask;
    c.maxLoadsPerInst = m.maxLoadsPerInst;
    c.jumpDelaySlots = m.jumpDelaySlots;
    c.loadLatency = m.loadLatency;
    c.allowTm3270Ops = m.name != "TM3260";
    return c;
}

size_t
CompiledProgram::numOps() const
{
    size_t n = 0;
    for (const auto &inst : insts) {
        for (const auto &op : inst.slot) {
            if (op.used())
                n += op.info().isTwoSlot ? 2 : 1;
        }
    }
    return n;
}

namespace
{

constexpr int16_t unassigned = -1;

bool
isTm3270Only(Opcode opc)
{
    switch (opc) {
      case Opcode::SUPER_DUALIMIX:
      case Opcode::SUPER_LD32R:
      case Opcode::LD_FRAC8:
      case Opcode::SUPER_CABAC_CTX:
      case Opcode::SUPER_CABAC_STR:
        return true;
      default:
        return false;
    }
}

/** Virtual registers read by @p op (guard, sources, store value). */
void
forEachRead(const TirOp &op, const std::function<void(VReg)> &fn)
{
    const OpInfo &oi = opInfo(op.opc);
    fn(op.guard);
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i))
            fn(op.src[i]);
    }
    if (oi.isStore)
        fn(op.dst[0]);
}

/** Virtual registers defined by @p op. */
void
forEachDef(const TirOp &op, const std::function<void(VReg)> &fn)
{
    const OpInfo &oi = opInfo(op.opc);
    if (oi.isStore)
        return;
    for (unsigned i = 0; i < oi.numDst; ++i)
        fn(op.dst[i]);
}

/** The whole-program compiler. */
class Compiler
{
  public:
    Compiler(const TirProgram &prog, const SchedConfig &cfg)
        : p(prog), cfg(cfg)
    {}

    CompiledProgram run();

  private:
    const TirProgram &p;
    const SchedConfig &cfg;

    // vreg classification and global allocation
    std::vector<bool> isGlobal;
    std::vector<int16_t> archOf; ///< for globals and pinned
    std::vector<bool> archUsedByGlobal;

    // result
    std::vector<VliwInst> insts;
    std::vector<uint32_t> blockStart;
    std::vector<std::pair<size_t, int>> branchFixups; ///< (inst, block)

    unsigned effLatency(const TirOp &op) const;
    void classify();
    void allocateGlobals();
    void scheduleBlock(const TirBlock &blk);
    void scheduleBlockAttempt(const TirBlock &blk, size_t window);
    RegIndex mapArch(VReg v,
                     const std::map<VReg, RegIndex> &local_map) const;
    Operation lowerOp(const TirOp &op,
                      const std::map<VReg, RegIndex> &local_map) const;
};

unsigned
Compiler::effLatency(const TirOp &op) const
{
    const OpInfo &oi = opInfo(op.opc);
    if (op.opc == Opcode::LD_FRAC8)
        return cfg.loadLatency + 2;
    if (oi.isLoad)
        return cfg.loadLatency;
    return oi.latency;
}

void
Compiler::classify()
{
    const uint32_t n = p.numVRegs;
    std::vector<int> def_block(n, -2), use_block(n, -2);
    auto note = [](std::vector<int> &v, VReg r, int b) {
        if (v[r] == -2)
            v[r] = b;
        else if (v[r] != b)
            v[r] = -3;
    };

    for (size_t b = 0; b < p.blocks.size(); ++b) {
        const TirBlock &blk = p.blocks[b];
        auto scan = [&](const TirOp &op) {
            forEachRead(op, [&](VReg r) { note(use_block, r, int(b)); });
            forEachDef(op, [&](VReg r) { note(def_block, r, int(b)); });
        };
        for (const auto &op : blk.ops)
            scan(op);
        if (blk.hasTerminator)
            scan(blk.terminator);
    }

    // A variable confined to one block whose first access (in program
    // order) is an *unguarded* definition is re-initialized on every
    // execution of the block: it carries no value across executions
    // and can be allocated like a block-local (multi-def) temporary.
    std::vector<bool> localizable(n, false);
    for (const TirBlock &blk : p.blocks) {
        std::vector<uint8_t> seen(n, 0); // 1 = def first, 2 = use first
        auto see_use = [&](VReg r) {
            if (!seen[r])
                seen[r] = 2;
        };
        auto scan = [&](const TirOp &op) {
            const OpInfo &oi = opInfo(op.opc);
            see_use(op.guard);
            for (unsigned i = 0; i < 4; ++i) {
                if (oi.readsSrc(i))
                    see_use(op.src[i]);
            }
            if (oi.isStore) {
                see_use(op.dst[0]);
            } else {
                for (unsigned i = 0; i < oi.numDst; ++i) {
                    if (!seen[op.dst[i]])
                        seen[op.dst[i]] =
                            op.guard == vone ? 1 : 2;
                }
            }
        };
        for (const auto &op : blk.ops)
            scan(op);
        if (blk.hasTerminator)
            scan(blk.terminator);
        for (uint32_t v = 2; v < n; ++v) {
            if (seen[v] == 1)
                localizable[v] = true;
        }
    }

    isGlobal.assign(n, false);
    for (uint32_t v = 2; v < n; ++v) {
        bool cross = def_block[v] == -3 || use_block[v] == -3 ||
                     (use_block[v] >= 0 && def_block[v] >= 0 &&
                      use_block[v] != def_block[v]);
        bool local_var =
            p.isVar[v] && !cross && p.pin[v] < 0 && localizable[v];
        isGlobal[v] = (p.isVar[v] || p.pin[v] >= 0 || cross) &&
                      !local_var;
        if (!isGlobal[v] && !p.isVar[v] && use_block[v] >= 0 &&
            def_block[v] == -2) {
            fatal("vreg %u used but never defined", v);
        }
    }
}

void
Compiler::allocateGlobals()
{
    archOf.assign(p.numVRegs, unassigned);
    archUsedByGlobal.assign(numRegs, false);
    archUsedByGlobal[regZero] = true;
    archUsedByGlobal[regOne] = true;
    archOf[vzero] = regZero;
    archOf[vone] = regOne;

    // Pinned registers first.
    for (uint32_t v = 2; v < p.numVRegs; ++v) {
        if (p.pin[v] >= 0) {
            tm_assert(!archUsedByGlobal[size_t(p.pin[v])],
                      "two vregs pinned to r%d", int(p.pin[v]));
            archOf[v] = p.pin[v];
            archUsedByGlobal[size_t(p.pin[v])] = true;
        }
    }
    // Remaining globals bottom-up.
    RegIndex next = 2;
    for (uint32_t v = 2; v < p.numVRegs; ++v) {
        if (!isGlobal[v] || archOf[v] != unassigned)
            continue;
        while (next < numRegs && archUsedByGlobal[next])
            ++next;
        if (next >= numRegs)
            fatal("out of registers for global values");
        archOf[v] = static_cast<int16_t>(next);
        archUsedByGlobal[next] = true;
    }
}

RegIndex
Compiler::mapArch(VReg v, const std::map<VReg, RegIndex> &local_map) const
{
    if (archOf[v] != unassigned)
        return static_cast<RegIndex>(archOf[v]);
    auto it = local_map.find(v);
    tm_assert(it != local_map.end(), "vreg %u has no register", v);
    return it->second;
}

Operation
Compiler::lowerOp(const TirOp &top,
                  const std::map<VReg, RegIndex> &local_map) const
{
    const OpInfo &oi = opInfo(top.opc);
    Operation op;
    op.opc = top.opc;
    op.guard = mapArch(top.guard, local_map);
    op.imm = top.imm;
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i))
            op.src[i] = mapArch(top.src[i], local_map);
    }
    if (oi.isStore) {
        op.dst[0] = mapArch(top.dst[0], local_map);
    } else {
        for (unsigned i = 0; i < oi.numDst; ++i)
            op.dst[i] = mapArch(top.dst[i], local_map);
    }
    return op;
}

void
Compiler::scheduleBlock(const TirBlock &blk)
{
    // Try an unconstrained list schedule first; when the block-local
    // register allocator runs out of registers (the scheduler hoisted
    // too many long-lived temporaries), fall back to progressively
    // narrower reordering windows, ending at pure in-order issue.
    const size_t windows[] = {SIZE_MAX, 32, 8, 1};
    for (size_t i = 0; i < std::size(windows); ++i) {
        try {
            scheduleBlockAttempt(blk, windows[i]);
            return;
        } catch (const FatalError &) {
            if (i + 1 == std::size(windows))
                throw;
        }
    }
}

void
Compiler::scheduleBlockAttempt(const TirBlock &blk, size_t window)
{
    const size_t n = blk.ops.size();

    struct Edge
    {
        int to;
        int lat;
    };
    struct Node
    {
        std::vector<Edge> succs;
        int npreds = 0;
        int64_t est = 0;
        int64_t prio = 0;
        int tick = -1;
        int slot = -1; ///< 0-based first slot
    };
    std::vector<Node> nodes(n);

    auto addEdge = [&](int from, int to, int lat) {
        if (from == to)
            return;
        nodes[size_t(from)].succs.push_back({to, lat});
        ++nodes[size_t(to)].npreds;
    };

    // Dependence edges.
    std::map<VReg, int> last_def;
    std::map<VReg, std::vector<int>> readers;
    int last_store = -1;
    std::vector<int> loads_since_store;

    for (size_t i = 0; i < n; ++i) {
        const TirOp &op = blk.ops[i];
        const OpInfo &oi = opInfo(op.opc);
        if (!cfg.allowTm3270Ops && isTm3270Only(op.opc)) {
            fatal("operation %s is not available on this target",
                  std::string(oi.mnemonic).c_str());
        }

        forEachRead(op, [&](VReg r) {
            auto it = last_def.find(r);
            if (it != last_def.end()) {
                addEdge(it->second, int(i),
                        int(effLatency(blk.ops[size_t(it->second)])));
            }
            readers[r].push_back(int(i));
        });
        forEachDef(op, [&](VReg r) {
            auto it = last_def.find(r);
            if (it != last_def.end()) {
                int prev_lat = int(effLatency(blk.ops[size_t(it->second)]));
                int waw = std::max(1, prev_lat - int(effLatency(op)));
                addEdge(it->second, int(i), waw);
            }
            for (int rd : readers[r]) {
                if (rd != int(i))
                    addEdge(rd, int(i), 0); // WAR: same tick allowed
            }
            readers[r].clear();
            last_def[r] = int(i);
        });

        if (oi.isLoad) {
            if (last_store >= 0)
                addEdge(last_store, int(i), 1);
            loads_since_store.push_back(int(i));
        } else if (oi.isStore) {
            if (last_store >= 0)
                addEdge(last_store, int(i), 1);
            for (int l : loads_since_store)
                addEdge(l, int(i), 1);
            loads_since_store.clear();
            last_store = int(i);
        }
    }

    // Critical-path priorities (edges go forward in program order).
    for (size_t i = n; i-- > 0;) {
        int64_t pr = int64_t(effLatency(blk.ops[i]));
        for (const Edge &e : nodes[i].succs)
            pr = std::max(pr, e.lat + nodes[size_t(e.to)].prio);
        nodes[i].prio = pr;
    }

    // List scheduling.
    struct TickRes
    {
        bool slotBusy[numSlots] = {false, false, false, false, false};
        unsigned loads = 0;
    };
    std::vector<TickRes> res;
    auto resAt = [&](size_t t) -> TickRes & {
        if (t >= res.size())
            res.resize(t + 1);
        return res[t];
    };

    auto allowedFirstSlots = [&](const TirOp &op) -> uint8_t {
        const OpInfo &oi = opInfo(op.opc);
        if (oi.isTwoSlot)
            return oi.slotMask; // first slot of the pair (2 or 4)
        if (op.opc == Opcode::LD_FRAC8)
            return oi.slotMask; // slot 5
        if (oi.isLoad)
            return cfg.loadSlotMask;
        return oi.slotMask;
    };

    auto tryPlace = [&](size_t i, size_t t) -> bool {
        const TirOp &op = blk.ops[i];
        const OpInfo &oi = opInfo(op.opc);
        TickRes &r = resAt(t);
        if (oi.isLoad && r.loads >= cfg.maxLoadsPerInst)
            return false;
        uint8_t mask = allowedFirstSlots(op);
        for (unsigned s = 0; s < numSlots; ++s) {
            if (!(mask & slotBit(s + 1)) || r.slotBusy[s])
                continue;
            if (oi.isTwoSlot) {
                if (s + 1 >= numSlots || r.slotBusy[s + 1])
                    continue;
                r.slotBusy[s + 1] = true;
            }
            r.slotBusy[s] = true;
            if (oi.isLoad)
                ++r.loads;
            nodes[i].tick = int(t);
            nodes[i].slot = int(s);
            return true;
        }
        return false;
    };

    std::vector<int> preds_left(n);
    for (size_t i = 0; i < n; ++i)
        preds_left[i] = nodes[i].npreds;

    size_t unscheduled = n;
    for (size_t t = 0; unscheduled > 0; ++t) {
        tm_assert(t < 100000 + 40 * n, "scheduler failed to converge");
        // Candidates: ready operations whose earliest tick has come,
        // restricted to a reordering window above the lowest
        // unscheduled op (bounds register pressure on retries).
        size_t min_unsched = n;
        for (size_t i = 0; i < n; ++i) {
            if (nodes[i].tick < 0) {
                min_unsched = i;
                break;
            }
        }
        std::vector<size_t> cand;
        for (size_t i = 0; i < n; ++i) {
            if (window != SIZE_MAX && i > min_unsched + window)
                break;
            if (nodes[i].tick < 0 && preds_left[i] == 0 &&
                nodes[i].est <= int64_t(t)) {
                cand.push_back(i);
            }
        }
        std::sort(cand.begin(), cand.end(), [&](size_t a, size_t b) {
            unsigned sa = std::popcount(allowedFirstSlots(blk.ops[a]));
            unsigned sb = std::popcount(allowedFirstSlots(blk.ops[b]));
            if (sa != sb)
                return sa < sb; // most slot-constrained first
            if (nodes[a].prio != nodes[b].prio)
                return nodes[a].prio > nodes[b].prio;
            return a < b;
        });
        for (size_t i : cand) {
            if (!tryPlace(i, t))
                continue;
            --unscheduled;
            for (const Edge &e : nodes[i].succs) {
                nodes[size_t(e.to)].est =
                    std::max(nodes[size_t(e.to)].est,
                             int64_t(t) + e.lat);
                --preds_left[size_t(e.to)];
            }
        }
    }

    // Block length: every result commits by the end of its block.
    size_t len_ops = 0;
    for (size_t i = 0; i < n; ++i) {
        len_ops = std::max(len_ops, size_t(nodes[i].tick) + 1);
        bool has_def = false;
        forEachDef(blk.ops[i], [&](VReg) { has_def = true; });
        if (has_def) {
            len_ops = std::max(len_ops, size_t(nodes[i].tick) +
                                            effLatency(blk.ops[i]));
        }
    }

    // Terminator placement.
    size_t block_len = len_ops;
    int term_tick = -1, term_slot = -1;
    if (blk.hasTerminator) {
        const TirOp &term = blk.terminator;
        unsigned delay = term.opc == Opcode::HALT ? 0 : cfg.jumpDelaySlots;
        int64_t est = 0;
        forEachRead(term, [&](VReg r) {
            auto it = last_def.find(r);
            if (it != last_def.end()) {
                est = std::max(est,
                               int64_t(nodes[size_t(it->second)].tick) +
                                   effLatency(blk.ops[size_t(it->second)]));
            }
        });
        size_t tb = size_t(std::max<int64_t>(
            est, int64_t(len_ops) - int64_t(delay)));
        // Find a free branch slot (issue slots 2, 3 or 4).
        for (;; ++tb) {
            TickRes &r = resAt(tb);
            bool placed = false;
            for (unsigned s = 1; s <= 3 && !placed; ++s) {
                if (!r.slotBusy[s]) {
                    r.slotBusy[s] = true;
                    term_tick = int(tb);
                    term_slot = int(s);
                    placed = true;
                }
            }
            if (placed)
                break;
        }
        block_len = size_t(term_tick) + delay + 1;
        tm_assert(block_len >= len_ops, "branch placement shrank block");
    }

    // ---- Local register allocation -------------------------------------
    struct Interval
    {
        VReg v;
        int def;
        int end;
    };
    std::vector<Interval> ivals;
    std::map<VReg, size_t> ival_of;

    auto noteUse = [&](VReg r, int t) {
        if (archOf[r] != unassigned)
            return;
        auto it = ival_of.find(r);
        tm_assert(it != ival_of.end(), "local vreg %u used before def", r);
        ivals[it->second].end = std::max(ivals[it->second].end, t);
    };
    for (size_t i = 0; i < n; ++i) {
        forEachDef(blk.ops[i], [&](VReg r) {
            if (archOf[r] != unassigned)
                return;
            int def = nodes[i].tick;
            int end = def + int(effLatency(blk.ops[i]));
            auto it = ival_of.find(r);
            if (it == ival_of.end()) {
                ival_of[r] = ivals.size();
                ivals.push_back({r, def, end});
            } else {
                // Localized multi-def variable: one merged interval.
                Interval &iv = ivals[it->second];
                iv.def = std::min(iv.def, def);
                iv.end = std::max(iv.end, end);
            }
        });
    }
    for (size_t i = 0; i < n; ++i) {
        forEachRead(blk.ops[i], [&](VReg r) { noteUse(r, nodes[i].tick); });
    }
    if (blk.hasTerminator) {
        forEachRead(blk.terminator,
                    [&](VReg r) { noteUse(r, term_tick); });
    }

    std::sort(ivals.begin(), ivals.end(), [](const auto &a, const auto &b) {
        if (a.def != b.def)
            return a.def < b.def;
        return a.v < b.v;
    });

    std::set<RegIndex> free_pool;
    for (unsigned r = 2; r < numRegs; ++r) {
        if (!archUsedByGlobal[r])
            free_pool.insert(static_cast<RegIndex>(r));
    }
    std::map<VReg, RegIndex> local_map;
    std::multimap<int, RegIndex> active; ///< end tick -> reg
    for (const Interval &iv : ivals) {
        // Release registers whose interval ended at or before this def.
        for (auto it = active.begin();
             it != active.end() && it->first <= iv.def;) {
            free_pool.insert(it->second);
            it = active.erase(it);
        }
        if (free_pool.empty())
            fatal("out of registers for block-local values");
        RegIndex r = *free_pool.begin();
        free_pool.erase(free_pool.begin());
        local_map[iv.v] = r;
        active.emplace(iv.end, r);
    }

    // ---- Materialize instructions ---------------------------------------
    size_t base = insts.size();
    insts.resize(base + block_len);
    for (size_t i = 0; i < n; ++i) {
        Operation op = lowerOp(blk.ops[i], local_map);
        insts[base + size_t(nodes[i].tick)].slot[size_t(nodes[i].slot)] =
            op;
    }
    if (blk.hasTerminator) {
        Operation op = lowerOp(blk.terminator, local_map);
        if (blk.terminator.targetBlock >= 0) {
            branchFixups.emplace_back(
                (base + size_t(term_tick)) * numSlots + size_t(term_slot),
                blk.terminator.targetBlock);
            // The immediate is patched after all blocks are laid out;
            // store the target block id for now.
            op.imm = blk.terminator.targetBlock;
        }
        insts[base + size_t(term_tick)].slot[size_t(term_slot)] = op;
    }
}

CompiledProgram
Compiler::run()
{
    classify();
    allocateGlobals();

    blockStart.clear();
    for (const TirBlock &blk : p.blocks) {
        blockStart.push_back(static_cast<uint32_t>(insts.size()));
        scheduleBlock(blk);
    }
    blockStart.push_back(static_cast<uint32_t>(insts.size()));

    // Resolve branch targets to instruction indices.
    CompiledProgram cp;
    cp.jumpTargets.assign(insts.size(), false);
    for (auto &[flat, block] : branchFixups) {
        size_t inst_idx = flat / numSlots;
        size_t slot = flat % numSlots;
        tm_assert(size_t(block) < p.blocks.size() + 0, "bad target block");
        uint32_t target = blockStart[size_t(block)];
        tm_assert(target < insts.size(),
                  "branch to block %d falls off the program end", block);
        insts[inst_idx].slot[slot].imm = int32_t(target);
        cp.jumpTargets[target] = true;
    }

    cp.insts = std::move(insts);
    cp.encoded = encodeProgram(cp.insts, cp.jumpTargets);
    return cp;
}

} // namespace

CompiledProgram
compile(const TirProgram &prog, const SchedConfig &cfg)
{
    TM_PROF_SCOPE(prof::Scope::Compile);
    Compiler c(prog, cfg);
    return c.run();
}

CompiledProgram
compile(const TirProgram &prog, const MachineConfig &m)
{
    return compile(prog, SchedConfig::fromMachine(m));
}

} // namespace tm3270::tir
