#include "tir/builder.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace tm3270::tir
{

Builder::Builder()
{
    prog.blocks.emplace_back();
    prog.isVar = {false, false};
    prog.pin = {0, 1}; // vzero -> r0, vone -> r1
    useCount = {0, 0};
    aliasTo = {vzero, vzero};
    aliasDead = {false, false};
}

VReg
Builder::resolve(VReg r) const
{
    if (aliasTo[r] == vzero || r < 2)
        return r;
    tm_assert(!aliasDead[r],
              "vreg %u was coalesced into a variable that has since "
              "been reassigned", r);
    return aliasTo[r];
}

void
Builder::killAliasesOf(VReg var)
{
    if (!prog.isVar[var])
        return;
    for (VReg v = 2; v < prog.numVRegs; ++v) {
        if (aliasTo[v] == var)
            aliasDead[v] = true;
    }
}

VReg
Builder::fresh(bool is_var, int16_t pin)
{
    VReg v = prog.numVRegs++;
    prog.isVar.push_back(is_var);
    prog.pin.push_back(pin);
    useCount.push_back(0);
    aliasTo.push_back(vzero);
    aliasDead.push_back(false);
    return v;
}

VReg
Builder::temp()
{
    return fresh(false, -1);
}

VReg
Builder::var()
{
    return fresh(true, -1);
}

VReg
Builder::pinned(RegIndex r)
{
    tm_assert(r >= 2 && r < numRegs, "cannot pin r%u", unsigned(r));
    return fresh(true, static_cast<int16_t>(r));
}

int
Builder::newBlock()
{
    prog.blocks.emplace_back();
    return static_cast<int>(prog.blocks.size()) - 1;
}

void
Builder::setBlock(int b)
{
    tm_assert(b >= 0 && size_t(b) < prog.blocks.size(), "bad block id");
    curBlock = b;
}

void
Builder::noteUses(const TirOp &op)
{
    const OpInfo &oi = opInfo(op.opc);
    ++useCount[op.guard];
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i))
            ++useCount[op.src[i]];
    }
    if (oi.isStore)
        ++useCount[op.dst[0]];
}

TirOp &
Builder::push(TirOp op)
{
    TirBlock &b = prog.blocks[size_t(curBlock)];
    tm_assert(!b.hasTerminator,
              "emitting into a terminated block (block %d)", curBlock);
    // Redirect reads of coalesced-away temporaries to their variable.
    const OpInfo &oi = opInfo(op.opc);
    op.guard = resolve(op.guard);
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i))
            op.src[i] = resolve(op.src[i]);
    }
    if (oi.isStore) {
        op.dst[0] = resolve(op.dst[0]);
    } else {
        for (unsigned i = 0; i < oi.numDst; ++i)
            killAliasesOf(op.dst[i]);
    }
    noteUses(op);
    b.ops.push_back(op);
    return b.ops.back();
}

VReg
Builder::emit(Opcode opc, VReg s1, VReg s2, int32_t imm, VReg guard)
{
    const OpInfo &oi = opInfo(opc);
    tm_assert(!oi.isStore && !oi.isBranch && oi.numDst >= 1,
              "emit() needs a value-producing op, got %s",
              std::string(oi.mnemonic).c_str());
    TirOp op;
    op.opc = opc;
    op.guard = guard;
    op.src[0] = s1;
    op.src[1] = s2;
    op.imm = imm;
    op.dst[0] = temp();
    push(op);
    return op.dst[0];
}

std::pair<VReg, VReg>
Builder::emit2(Opcode opc, VReg s1, VReg s2, VReg s3, VReg s4, VReg guard)
{
    const OpInfo &oi = opInfo(opc);
    tm_assert(oi.numDst == 2, "emit2() needs a two-destination op");
    TirOp op;
    op.opc = opc;
    op.guard = guard;
    op.src = {s1, s2, s3, s4};
    op.dst[0] = temp();
    op.dst[1] = temp();
    push(op);
    return {op.dst[0], op.dst[1]};
}

std::pair<VReg, VReg>
Builder::superLd32r(VReg base, VReg off)
{
    // Sources live in positions 2/3 (encoded in the second operation
    // of the pair, paper Table 2).
    TirOp op;
    op.opc = Opcode::SUPER_LD32R;
    op.src[2] = base;
    op.src[3] = off;
    op.dst[0] = temp();
    op.dst[1] = temp();
    push(op);
    return {op.dst[0], op.dst[1]};
}

void
Builder::emitVoid(Opcode opc, VReg value, VReg s1, VReg s2, int32_t imm,
                  VReg guard)
{
    const OpInfo &oi = opInfo(opc);
    tm_assert(oi.isStore || opc == Opcode::PREF,
              "emitVoid() is for stores and prefetch hints");
    TirOp op;
    op.opc = opc;
    op.guard = guard;
    op.src[0] = s1;
    op.src[1] = s2;
    op.imm = imm;
    op.dst[0] = value; // stores carry the value in the dst field
    push(op);
}

VReg
Builder::imm32(int32_t v)
{
    if (fitsSigned(v, 16))
        return emit(Opcode::IMM16, vzero, vzero, v & 0xffff);
    if ((v & 0xffff) == 0)
        return emit(Opcode::IMMHI, vzero, vzero,
                    (v >> 16) & 0xffff);
    VReg hi = emit(Opcode::IMM16, vzero, vzero, (v >> 16) & 0xffff);
    VReg lo = emit(Opcode::IMM16, vzero, vzero, v & 0xffff);
    return pack16lsb(hi, lo);
}

void
Builder::terminate(TirOp op)
{
    TirBlock &b = prog.blocks[size_t(curBlock)];
    tm_assert(!b.hasTerminator, "block %d already terminated", curBlock);
    op.guard = resolve(op.guard);
    op.src[0] = resolve(op.src[0]);
    noteUses(op);
    b.terminator = op;
    b.hasTerminator = true;
}

void
Builder::jmpi(int block)
{
    TirOp op;
    op.opc = Opcode::JMPI;
    op.targetBlock = block;
    terminate(op);
}

void
Builder::jmpt(VReg guard, int block)
{
    TirOp op;
    op.opc = Opcode::JMPT;
    op.guard = guard;
    op.targetBlock = block;
    terminate(op);
}

void
Builder::jmpf(VReg guard, int block)
{
    TirOp op;
    op.opc = Opcode::JMPF;
    op.guard = guard;
    op.targetBlock = block;
    terminate(op);
}

void
Builder::halt(VReg value)
{
    TirOp op;
    op.opc = Opcode::HALT;
    op.src[0] = resolve(value);
    ++useCount[op.src[0]];
    TirBlock &b = prog.blocks[size_t(curBlock)];
    tm_assert(!b.hasTerminator, "block %d already terminated", curBlock);
    ++useCount[op.guard];
    b.terminator = op;
    b.hasTerminator = true;
}

void
Builder::assign(VReg v, VReg val, VReg guard)
{
    tm_assert(prog.isVar[v], "assign() target must be a variable");

    // Coalesce: retarget the defining op when val is an unused SSA
    // temporary defined in the current block (and unguarded, so the
    // retarget cannot change which register receives the result).
    // Later uses of the temporary transparently forward to the
    // variable (until it is reassigned) via the alias table.
    val = resolve(val);
    if (!prog.isVar[val] && useCount[val] == 0 && guard == vone) {
        TirBlock &b = prog.blocks[size_t(curBlock)];
        // Walk back to the defining op. Retargeting hoists the
        // variable's definition to that position, so the coalesce is
        // only legal when no op in between reads or writes v.
        bool v_touched = false;
        for (auto it = b.ops.rbegin(); it != b.ops.rend(); ++it) {
            const OpInfo &oi = opInfo(it->opc);
            if (!oi.isStore) {
                for (unsigned d = 0; d < oi.numDst; ++d) {
                    if (it->dst[d] == val && it->guard == vone &&
                        !v_touched) {
                        killAliasesOf(v);
                        it->dst[d] = v;
                        aliasTo[val] = v;
                        aliasDead[val] = false;
                        return;
                    }
                }
            }
            // Does this op touch v (read through guard/sources/store
            // value, or define it)?
            if (it->guard == v)
                v_touched = true;
            for (unsigned i = 0; i < 4; ++i) {
                if (oi.readsSrc(i) && it->src[i] == v)
                    v_touched = true;
            }
            if (oi.isStore) {
                if (it->dst[0] == v)
                    v_touched = true;
            } else {
                for (unsigned d = 0; d < oi.numDst; ++d) {
                    if (it->dst[d] == v)
                        v_touched = true;
                }
            }
        }
    }
    killAliasesOf(v);
    TirOp op;
    op.opc = Opcode::IADD;
    op.guard = guard;
    op.src[0] = val;
    op.src[1] = vzero;
    op.dst[0] = v;
    push(op);
}

TirProgram
Builder::take()
{
    return std::move(prog);
}

} // namespace tm3270::tir
