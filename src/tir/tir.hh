/**
 * @file
 * TriMedia IR (TIR): the intermediate representation consumed by the
 * list scheduler. The production TriMedia C compiler/scheduler is
 * proprietary; TIR plus the scheduler in scheduler.hh is our
 * substitution: workload kernels are written against the Builder API,
 * scheduled under the target's slot/latency/delay-slot constraints,
 * register-allocated onto r2..r127 and lowered to encoded VLIW
 * programs.
 *
 * Virtual registers come in two flavors:
 *  - SSA temporaries: defined exactly once, used only within (and
 *    after) their defining block;
 *  - variables (Builder::var): multiply-assignable, allocated a
 *    dedicated architectural register for the whole program; used for
 *    loop-carried values and cross-block communication.
 */

#ifndef TM3270_TIR_TIR_HH
#define TM3270_TIR_TIR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/operation.hh"

namespace tm3270::tir
{

/** Virtual register id. vzero = 0 and vone = 1 map to r0/r1. */
using VReg = uint32_t;

inline constexpr VReg vzero = 0;
inline constexpr VReg vone = 1;

/** One IR operation on virtual registers. */
struct TirOp
{
    Opcode opc = Opcode::NOP;
    VReg guard = vone;
    std::array<VReg, 2> dst = {vzero, vzero};
    std::array<VReg, 4> src = {vzero, vzero, vzero, vzero};
    int32_t imm = 0;
    int targetBlock = -1; ///< branch target (block id)
};

/** A basic block: straight-line ops plus an optional terminator. */
struct TirBlock
{
    std::vector<TirOp> ops;
    bool hasTerminator = false;
    TirOp terminator; ///< JMPT/JMPF/JMPI/JMPR/HALT
};

/** A whole IR program. */
struct TirProgram
{
    std::vector<TirBlock> blocks;
    uint32_t numVRegs = 2;
    /** Variable vregs (multi-def, globally allocated). */
    std::vector<bool> isVar;
    /** Pinned architectural register per vreg, or -1. */
    std::vector<int16_t> pin;
};

} // namespace tm3270::tir

#endif // TM3270_TIR_TIR_HH
