/**
 * @file
 * List scheduler, register allocator and lowering from TIR to encoded
 * VLIW programs.
 *
 * The scheduler enforces the target's constraints:
 *  - per-operation issue-slot masks (ALU everywhere, shifter in 1/4,
 *    DSP-multiply in 2/3, branch in 2/3/4, ...);
 *  - load slots and loads-per-instruction (TM3270: one load in slot 5;
 *    TM3260: two loads in slots 4/5) — paper Table 6;
 *  - two-slot operations occupy two neighboring slots (paper §2.2.1);
 *  - operation latencies (dependent operations issue >= latency
 *    cycles later; the pipeline is exposed, there are no interlocks);
 *  - jump delay slots: a branch is followed by exactly N delay
 *    instructions that architecturally execute (5 on the TM3270, 3 on
 *    the TM3260); the scheduler fills them with independent work when
 *    available;
 *  - all results commit by the end of their block, so cross-block
 *    values are always ready.
 *
 * Register allocation: variables and cross-block values receive
 * dedicated architectural registers from r2 upward; block-local SSA
 * temporaries are linear-scan allocated from the remaining pool. No
 * spilling is implemented — the 128-entry register file is the point
 * (paper §1); running out of registers is a fatal error.
 */

#ifndef TM3270_TIR_SCHEDULER_HH
#define TM3270_TIR_SCHEDULER_HH

#include <vector>

#include "core/config.hh"
#include "encode/encoder.hh"
#include "tir/tir.hh"

namespace tm3270::tir
{

/** Scheduling constraints derived from a machine configuration. */
struct SchedConfig
{
    uint8_t loadSlotMask = 0x10;
    unsigned maxLoadsPerInst = 1;
    unsigned jumpDelaySlots = 5;
    unsigned loadLatency = 4;
    /** TM3270-only operations (SUPER_*, LD_FRAC8) allowed? */
    bool allowTm3270Ops = true;

    static SchedConfig fromMachine(const MachineConfig &m);
};

/** The compiled program: scheduled instructions plus the binary. */
struct CompiledProgram
{
    std::vector<VliwInst> insts;
    std::vector<bool> jumpTargets;
    EncodedProgram encoded;

    size_t numInsts() const { return insts.size(); }

    /** Static operation count (two-slot operations count as 2). */
    size_t numOps() const;
};

/** Schedule, allocate registers, lower and encode @p prog. */
CompiledProgram compile(const TirProgram &prog, const SchedConfig &cfg);

/** Convenience: compile for a machine configuration. */
CompiledProgram compile(const TirProgram &prog, const MachineConfig &m);

} // namespace tm3270::tir

#endif // TM3270_TIR_SCHEDULER_HH
