/**
 * @file
 * Fluent construction API for TIR programs. Workload kernels are
 * written against this interface; see src/workloads for examples.
 */

#ifndef TM3270_TIR_BUILDER_HH
#define TM3270_TIR_BUILDER_HH

#include <utility>

#include "tir/tir.hh"

namespace tm3270::tir
{

/** Builds a TirProgram block by block. */
class Builder
{
  public:
    Builder();

    /** The always-0 / always-1 virtual registers. */
    VReg zero() const { return vzero; }
    VReg one() const { return vone; }

    /** Fresh SSA temporary. */
    VReg temp();

    /** Fresh variable: multiply-assignable, gets a dedicated register. */
    VReg var();

    /** Variable pinned to architectural register @p r (ABI: kernel
     *  arguments and results). */
    VReg pinned(RegIndex r);

    /** Create a new block (laid out in creation order); returns id. */
    int newBlock();

    /** Switch the emission point. */
    void setBlock(int b);
    int currentBlock() const { return curBlock; }

    // --- generic emitters ------------------------------------------------

    /** Emit an op with one destination; returns a fresh temporary. */
    VReg emit(Opcode opc, VReg s1 = vzero, VReg s2 = vzero,
              int32_t imm = 0, VReg guard = vone);

    /** Emit a two-destination op (two-slot operations). */
    std::pair<VReg, VReg> emit2(Opcode opc, VReg s1, VReg s2, VReg s3,
                                VReg s4, VReg guard = vone);

    /** Emit an op with no register result (stores, pref). */
    void emitVoid(Opcode opc, VReg value, VReg s1, VReg s2 = vzero,
                  int32_t imm = 0, VReg guard = vone);

    // --- common operations ------------------------------------------------

    VReg iadd(VReg a, VReg b) { return emit(Opcode::IADD, a, b); }
    VReg isub(VReg a, VReg b) { return emit(Opcode::ISUB, a, b); }
    VReg iand(VReg a, VReg b) { return emit(Opcode::IAND, a, b); }
    VReg ior(VReg a, VReg b) { return emit(Opcode::IOR, a, b); }
    VReg ixor(VReg a, VReg b) { return emit(Opcode::IXOR, a, b); }
    VReg imin(VReg a, VReg b) { return emit(Opcode::IMIN, a, b); }
    VReg imax(VReg a, VReg b) { return emit(Opcode::IMAX, a, b); }
    VReg imul(VReg a, VReg b) { return emit(Opcode::IMUL, a, b); }
    VReg ieql(VReg a, VReg b) { return emit(Opcode::IEQL, a, b); }
    VReg ineq(VReg a, VReg b) { return emit(Opcode::INEQ, a, b); }
    VReg igtr(VReg a, VReg b) { return emit(Opcode::IGTR, a, b); }
    VReg iles(VReg a, VReg b) { return emit(Opcode::ILES, a, b); }
    VReg igeq(VReg a, VReg b) { return emit(Opcode::IGEQ, a, b); }
    VReg ileq(VReg a, VReg b) { return emit(Opcode::ILEQ, a, b); }
    VReg ilesu(VReg a, VReg b) { return emit(Opcode::ILESU, a, b); }
    VReg asl(VReg a, VReg b) { return emit(Opcode::ASL, a, b); }
    VReg asr(VReg a, VReg b) { return emit(Opcode::ASR, a, b); }
    VReg lsr(VReg a, VReg b) { return emit(Opcode::LSR, a, b); }
    VReg iaddi(VReg a, int32_t i) { return emit(Opcode::IADDI, a, vzero, i); }
    VReg iandi(VReg a, int32_t i) { return emit(Opcode::IANDI, a, vzero, i); }
    VReg iori(VReg a, int32_t i) { return emit(Opcode::IORI, a, vzero, i); }
    VReg asli(VReg a, int32_t i) { return emit(Opcode::ASLI, a, vzero, i); }
    VReg asri(VReg a, int32_t i) { return emit(Opcode::ASRI, a, vzero, i); }
    VReg lsri(VReg a, int32_t i) { return emit(Opcode::LSRI, a, vzero, i); }
    VReg ieqli(VReg a, int32_t i) { return emit(Opcode::IEQLI, a, vzero, i); }
    VReg igtri(VReg a, int32_t i) { return emit(Opcode::IGTRI, a, vzero, i); }
    VReg ilesi(VReg a, int32_t i) { return emit(Opcode::ILESI, a, vzero, i); }
    VReg sex8(VReg a) { return emit(Opcode::SEX8, a); }
    VReg zex8(VReg a) { return emit(Opcode::ZEX8, a); }
    VReg sex16(VReg a) { return emit(Opcode::SEX16, a); }
    VReg zex16(VReg a) { return emit(Opcode::ZEX16, a); }
    VReg quadavg(VReg a, VReg b) { return emit(Opcode::QUADAVG, a, b); }
    VReg ume8uu(VReg a, VReg b) { return emit(Opcode::UME8UU, a, b); }
    VReg quadumin(VReg a, VReg b) { return emit(Opcode::QUADUMIN, a, b); }
    VReg quadumax(VReg a, VReg b) { return emit(Opcode::QUADUMAX, a, b); }
    VReg mergelsb(VReg a, VReg b) { return emit(Opcode::MERGELSB, a, b); }
    VReg mergemsb(VReg a, VReg b) { return emit(Opcode::MERGEMSB, a, b); }
    VReg pack16lsb(VReg a, VReg b) { return emit(Opcode::PACK16LSB, a, b); }
    VReg pack16msb(VReg a, VReg b) { return emit(Opcode::PACK16MSB, a, b); }
    VReg funshift1(VReg a, VReg b) { return emit(Opcode::FUNSHIFT1, a, b); }
    VReg funshift2(VReg a, VReg b) { return emit(Opcode::FUNSHIFT2, a, b); }
    VReg funshift3(VReg a, VReg b) { return emit(Opcode::FUNSHIFT3, a, b); }
    VReg ifir16(VReg a, VReg b) { return emit(Opcode::IFIR16, a, b); }
    VReg ifir8ui(VReg a, VReg b) { return emit(Opcode::IFIR8UI, a, b); }
    VReg dspidualadd(VReg a, VReg b)
    {
        return emit(Opcode::DSPIDUALADD, a, b);
    }
    VReg dspidualmul(VReg a, VReg b)
    {
        return emit(Opcode::DSPIDUALMUL, a, b);
    }
    VReg uclipi(VReg a, VReg b) { return emit(Opcode::UCLIPI, a, b); }
    VReg dspidualpack(VReg a, VReg b)
    {
        return emit(Opcode::DSPIDUALPACK, a, b);
    }
    VReg ubytesel(VReg a, VReg b) { return emit(Opcode::UBYTESEL, a, b); }

    /** Materialize a 32-bit constant (1..3 operations). */
    VReg imm32(int32_t v);

    // Loads.
    VReg ld8u(VReg base, int32_t off = 0, VReg guard = vone)
    {
        return emit(Opcode::LD8U, base, vzero, off, guard);
    }
    VReg ld8s(VReg base, int32_t off = 0)
    {
        return emit(Opcode::LD8S, base, vzero, off);
    }
    VReg ld16u(VReg base, int32_t off = 0)
    {
        return emit(Opcode::LD16U, base, vzero, off);
    }
    VReg ld16s(VReg base, int32_t off = 0)
    {
        return emit(Opcode::LD16S, base, vzero, off);
    }
    VReg ld32d(VReg base, int32_t off = 0, VReg guard = vone)
    {
        return emit(Opcode::LD32D, base, vzero, off, guard);
    }
    VReg ld32r(VReg base, VReg off) { return emit(Opcode::LD32R, base, off); }
    VReg ldFrac8(VReg addr, VReg frac)
    {
        return emit(Opcode::LD_FRAC8, addr, frac);
    }

    /** Two-slot load of two consecutive words (big-endian). */
    std::pair<VReg, VReg> superLd32r(VReg base, VReg off);

    /** Two-slot pairwise 16-bit 2-tap filter. */
    std::pair<VReg, VReg>
    superDualimix(VReg a, VReg b, VReg c, VReg d)
    {
        return emit2(Opcode::SUPER_DUALIMIX, a, b, c, d);
    }

    /** CABAC context step: returns ((value,range), (state,mps)). */
    std::pair<VReg, VReg>
    superCabacCtx(VReg vr, VReg pos, VReg stream, VReg sm)
    {
        return emit2(Opcode::SUPER_CABAC_CTX, vr, pos, stream, sm);
    }

    /** CABAC stream step: returns (bit position, decoded bit). */
    std::pair<VReg, VReg>
    superCabacStr(VReg vr, VReg pos, VReg sm)
    {
        return emit2(Opcode::SUPER_CABAC_STR, vr, pos, sm, vzero);
    }

    // Stores (value, base, displacement).
    void st8d(VReg v, VReg base, int32_t off = 0, VReg guard = vone)
    {
        emitVoid(Opcode::ST8D, v, base, vzero, off, guard);
    }
    void st16d(VReg v, VReg base, int32_t off = 0)
    {
        emitVoid(Opcode::ST16D, v, base, vzero, off);
    }
    void st32d(VReg v, VReg base, int32_t off = 0, VReg guard = vone)
    {
        emitVoid(Opcode::ST32D, v, base, vzero, off, guard);
    }
    void st32r(VReg v, VReg base, VReg off)
    {
        emitVoid(Opcode::ST32R, v, base, off);
    }
    void pref(VReg base, int32_t off = 0)
    {
        emitVoid(Opcode::PREF, vzero, base, vzero, off);
    }

    // Control flow (block terminators).
    void jmpi(int block);
    void jmpt(VReg guard, int block);
    void jmpf(VReg guard, int block);
    void halt(VReg value = vzero);

    /**
     * Assign @p val to variable @p v. When @p val is an unused SSA
     * temporary defined in the current block, the defining operation
     * is retargeted (no move is emitted); otherwise a move op is
     * emitted.
     */
    void assign(VReg v, VReg val, VReg guard = vone);

    /** Finish and take the program. */
    TirProgram take();

    const TirProgram &program() const { return prog; }

  private:
    TirProgram prog;
    int curBlock = 0;
    std::vector<uint32_t> useCount;
    /** Coalesced-away temporaries forward to their variable until the
     *  variable is reassigned (then further uses are an error). */
    std::vector<VReg> aliasTo;
    std::vector<bool> aliasDead;

    VReg resolve(VReg r) const;
    void killAliasesOf(VReg var);

    TirOp &push(TirOp op);
    void noteUses(const TirOp &op);
    void terminate(TirOp op);
    VReg fresh(bool is_var, int16_t pin);
};

} // namespace tm3270::tir

#endif // TM3270_TIR_BUILDER_HH
