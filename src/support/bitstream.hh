/**
 * @file
 * MSB-first bit-level reader/writer used by the VLIW instruction
 * encoder/decoder and by the CABAC bitstream machinery.
 */

#ifndef TM3270_SUPPORT_BITSTREAM_HH
#define TM3270_SUPPORT_BITSTREAM_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace tm3270
{

/** Append bits MSB-first to a growing byte vector. */
class BitWriter
{
  public:
    /**
     * Append the low @p len bits of @p value, most significant bit
     * first.
     */
    void
    put(uint64_t value, unsigned len)
    {
        tm_assert(len <= 64, "bit write too wide");
        for (unsigned i = len; i-- > 0;)
            putBit((value >> i) & 1);
    }

    /** Append a single bit. */
    void
    putBit(unsigned bit)
    {
        if (bitPos == 0)
            bytes.push_back(0);
        if (bit)
            bytes.back() |= static_cast<uint8_t>(0x80u >> bitPos);
        bitPos = (bitPos + 1) & 7;
    }

    /** Pad with zero bits to the next byte boundary. */
    void
    alignByte()
    {
        bitPos = 0;
    }

    /** Number of whole bytes written so far (including padding). */
    size_t size() const { return bytes.size(); }

    /** Total number of bits written (excluding alignment padding). */
    size_t
    bitSize() const
    {
        return bytes.size() * 8 - (bitPos ? (8 - bitPos) : 0);
    }

    /** The accumulated bytes. */
    const std::vector<uint8_t> &data() const { return bytes; }

  private:
    std::vector<uint8_t> bytes;
    unsigned bitPos = 0;
};

/** Read bits MSB-first from a byte buffer. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size_bytes)
        : buf(data), sizeBits(size_bytes * 8)
    {}

    explicit BitReader(const std::vector<uint8_t> &data)
        : BitReader(data.data(), data.size())
    {}

    /** Read @p len bits MSB-first. */
    uint64_t
    get(unsigned len)
    {
        tm_assert(len <= 64, "bit read too wide");
        uint64_t v = 0;
        for (unsigned i = 0; i < len; ++i)
            v = (v << 1) | getBit();
        return v;
    }

    /** Read a single bit. */
    unsigned
    getBit()
    {
        if (pos >= sizeBits)
            fatal("bitstream underflow at bit %zu", pos);
        unsigned bit = (buf[pos >> 3] >> (7 - (pos & 7))) & 1;
        ++pos;
        return bit;
    }

    /** Skip forward to the next byte boundary. */
    void
    alignByte()
    {
        pos = (pos + 7) & ~static_cast<size_t>(7);
    }

    /** Reposition to an absolute bit offset. */
    void
    seekBits(size_t bit_offset)
    {
        tm_assert(bit_offset <= sizeBits, "seek past end");
        pos = bit_offset;
    }

    /** Current absolute bit position. */
    size_t bitPos() const { return pos; }

    /** Bits remaining. */
    size_t remaining() const { return sizeBits - pos; }

  private:
    const uint8_t *buf;
    size_t sizeBits;
    size_t pos = 0;
};

} // namespace tm3270

#endif // TM3270_SUPPORT_BITSTREAM_HH
