/**
 * @file
 * Bit-manipulation helpers shared by the encoder, caches and ISA
 * semantics.
 */

#ifndef TM3270_SUPPORT_BITOPS_HH
#define TM3270_SUPPORT_BITOPS_HH

#include <bit>
#include <cstdint>

#include "support/types.hh"

namespace tm3270
{

/** True if @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

/** Insert the low @p len bits of @p field into @p v at position lo. */
constexpr uint64_t
insertBits(uint64_t v, unsigned lo, unsigned len, uint64_t field)
{
    uint64_t mask = ((len >= 64) ? ~0ULL : ((1ULL << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low @p len bits of @p v. */
constexpr int64_t
sext(uint64_t v, unsigned len)
{
    uint64_t m = 1ULL << (len - 1);
    uint64_t x = v & ((m << 1) - 1);
    return static_cast<int64_t>((x ^ m) - m);
}

/** True if the signed value fits in @p len bits (two's complement). */
constexpr bool
fitsSigned(int64_t v, unsigned len)
{
    int64_t lo = -(1LL << (len - 1));
    int64_t hi = (1LL << (len - 1)) - 1;
    return v >= lo && v <= hi;
}

/** True if the unsigned value fits in @p len bits. */
constexpr bool
fitsUnsigned(uint64_t v, unsigned len)
{
    return len >= 64 || v < (1ULL << len);
}

/** Align @p a down to a multiple of @p unit (power of two). */
constexpr Addr
alignDown(Addr a, unsigned unit)
{
    return a & ~static_cast<Addr>(unit - 1);
}

/** Align @p a up to a multiple of @p unit (power of two). */
constexpr Addr
alignUp(Addr a, unsigned unit)
{
    return (a + unit - 1) & ~static_cast<Addr>(unit - 1);
}

/** Pack two 16-bit halves into a DUAL16 word: (a << 16) | (b & 0xffff). */
constexpr Word
dual16(Word a, Word b)
{
    return (a << 16) | (b & 0xffff);
}

/** High 16-bit half of a DUAL16 word. */
constexpr Word
dual16Hi(Word v)
{
    return v >> 16;
}

/** Low 16-bit half of a DUAL16 word. */
constexpr Word
dual16Lo(Word v)
{
    return v & 0xffff;
}

} // namespace tm3270

#endif // TM3270_SUPPORT_BITOPS_HH
