#include "support/report.hh"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/prof.hh"

#ifndef TM_GIT_REV
#define TM_GIT_REV "unknown"
#endif

namespace tm3270::report
{

// --------------------------------------------------------------------
// Json
// --------------------------------------------------------------------

namespace
{

const std::string kEmptyString;
const Json kNullJson;

void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                os << strfmt("\\u%04x", ch);
            else
                os << ch;
        }
    }
    os << '"';
}

void
writeDouble(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; 0 keeps the document parseable and the
        // anomaly is visible as an impossible metric value.
        os << 0;
        return;
    }
    char buf[32];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, d);
    (void)ec; // 32 bytes always suffice for shortest round-trip
    std::string_view sv(buf, size_t(p - buf));
    os << sv;
    // Keep the value recognizably floating-point after re-parse.
    if (sv.find_first_of(".eE") == std::string_view::npos)
        os << ".0";
}

} // namespace

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    tm_assert(type_ == Type::Object, "Json[key] on a non-object");
    for (auto &kv : obj_) {
        if (kv.first == key)
            return kv.second;
    }
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json *
Json::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : obj_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    tm_assert(type_ == Type::Array, "Json::push on a non-array");
    arr_.push_back(std::move(v));
}

bool
Json::asBool(bool dflt) const
{
    return type_ == Type::Bool ? b_ : dflt;
}

uint64_t
Json::asUint(uint64_t dflt) const
{
    switch (type_) {
      case Type::Uint: return u_;
      case Type::Int: return i_ >= 0 ? uint64_t(i_) : dflt;
      case Type::Double: return d_ >= 0 ? uint64_t(d_) : dflt;
      default: return dflt;
    }
}

int64_t
Json::asInt(int64_t dflt) const
{
    switch (type_) {
      case Type::Uint: return int64_t(u_);
      case Type::Int: return i_;
      case Type::Double: return int64_t(d_);
      default: return dflt;
    }
}

double
Json::asDouble(double dflt) const
{
    switch (type_) {
      case Type::Uint: return double(u_);
      case Type::Int: return double(i_);
      case Type::Double: return d_;
      default: return dflt;
    }
}

const std::string &
Json::asString() const
{
    return type_ == Type::String ? s_ : kEmptyString;
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        return kNullJson;
    return arr_[i];
}

const std::pair<std::string, Json> &
Json::member(size_t i) const
{
    tm_assert(type_ == Type::Object && i < obj_.size(),
              "Json::member out of range");
    return obj_[i];
}

void
Json::writeIndented(std::ostream &os, int indent) const
{
    auto pad = [&os](int n) {
        for (int k = 0; k < n; ++k)
            os << ' ';
    };
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (b_ ? "true" : "false");
        break;
      case Type::Uint:
        os << u_;
        break;
      case Type::Int:
        os << i_;
        break;
      case Type::Double:
        writeDouble(os, d_);
        break;
      case Type::String:
        writeEscaped(os, s_);
        break;
      case Type::Array: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        bool scalars = true;
        for (const Json &e : arr_) {
            if (e.type_ == Type::Array || e.type_ == Type::Object)
                scalars = false;
        }
        if (scalars && arr_.size() <= 8) {
            os << '[';
            for (size_t i = 0; i < arr_.size(); ++i) {
                if (i)
                    os << ", ";
                arr_[i].writeIndented(os, 0);
            }
            os << ']';
            break;
        }
        os << "[\n";
        for (size_t i = 0; i < arr_.size(); ++i) {
            pad(indent + 2);
            arr_[i].writeIndented(os, indent + 2);
            os << (i + 1 < arr_.size() ? ",\n" : "\n");
        }
        pad(indent);
        os << ']';
        break;
      }
      case Type::Object: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (size_t i = 0; i < obj_.size(); ++i) {
            pad(indent + 2);
            writeEscaped(os, obj_[i].first);
            os << ": ";
            obj_[i].second.writeIndented(os, indent + 2);
            os << (i + 1 < obj_.size() ? ",\n" : "\n");
        }
        pad(indent);
        os << '}';
        break;
      }
    }
}

void
Json::write(std::ostream &os) const
{
    writeIndented(os, 0);
    os << '\n';
}

std::string
Json::str() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

// --------------------------------------------------------------------
// Json parser (recursive descent; enough JSON for manifests and the
// google-benchmark files the perf tooling also reads)
// --------------------------------------------------------------------

namespace
{

struct Parser
{
    std::string_view t;
    size_t p = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        size_t line = 1;
        for (size_t k = 0; k < p && k < t.size(); ++k)
            line += t[k] == '\n';
        err = strfmt("line %zu: %s", line, what.c_str());
        return false;
    }

    void
    ws()
    {
        while (p < t.size() && (t[p] == ' ' || t[p] == '\t' ||
                                t[p] == '\n' || t[p] == '\r'))
            ++p;
    }

    bool
    lit(std::string_view word)
    {
        if (t.substr(p, word.size()) != word)
            return false;
        p += word.size();
        return true;
    }

    bool
    str(std::string &out)
    {
        if (p >= t.size() || t[p] != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < t.size() && t[p] != '"') {
            char ch = t[p++];
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (p >= t.size())
                return fail("dangling escape");
            char e = t[p++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (p + 4 > t.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = t[p++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Manifests are ASCII; encode BMP code points as
                // UTF-8 so foreign inputs survive a round trip.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (p >= t.size())
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    number(Json &out)
    {
        size_t start = p;
        if (p < t.size() && (t[p] == '-' || t[p] == '+'))
            ++p;
        bool floating = false;
        while (p < t.size() &&
               (std::isdigit(static_cast<unsigned char>(t[p])) ||
                t[p] == '.' || t[p] == 'e' || t[p] == 'E' ||
                t[p] == '+' || t[p] == '-')) {
            if (t[p] == '.' || t[p] == 'e' || t[p] == 'E')
                floating = true;
            ++p;
        }
        std::string text(t.substr(start, p - start));
        if (text.empty() || text == "-" || text == "+")
            return fail("expected number");
        if (floating) {
            out = Json(std::strtod(text.c_str(), nullptr));
        } else if (text[0] == '-') {
            out = Json(int64_t(std::strtoll(text.c_str(), nullptr, 10)));
        } else {
            out = Json(uint64_t(std::strtoull(text.c_str(), nullptr, 10)));
        }
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        ws();
        if (p >= t.size())
            return fail("unexpected end of input");
        char ch = t[p];
        if (ch == '{') {
            ++p;
            out = Json::object();
            ws();
            if (p < t.size() && t[p] == '}') {
                ++p;
                return true;
            }
            while (true) {
                ws();
                std::string key;
                if (!str(key))
                    return false;
                ws();
                if (p >= t.size() || t[p] != ':')
                    return fail("expected ':'");
                ++p;
                Json v;
                if (!value(v, depth + 1))
                    return false;
                out[key] = std::move(v);
                ws();
                if (p < t.size() && t[p] == ',') {
                    ++p;
                    continue;
                }
                if (p < t.size() && t[p] == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (ch == '[') {
            ++p;
            out = Json::array();
            ws();
            if (p < t.size() && t[p] == ']') {
                ++p;
                return true;
            }
            while (true) {
                Json v;
                if (!value(v, depth + 1))
                    return false;
                out.push(std::move(v));
                ws();
                if (p < t.size() && t[p] == ',') {
                    ++p;
                    continue;
                }
                if (p < t.size() && t[p] == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (ch == '"') {
            std::string s;
            if (!str(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (lit("true")) {
            out = Json(true);
            return true;
        }
        if (lit("false")) {
            out = Json(false);
            return true;
        }
        if (lit("null")) {
            out = Json();
            return true;
        }
        return number(out);
    }
};

} // namespace

bool
Json::parse(std::string_view text, Json &out, std::string &err)
{
    Parser ps;
    ps.t = text;
    if (!ps.value(out, 0)) {
        err = ps.err;
        return false;
    }
    ps.ws();
    if (ps.p != text.size()) {
        err = strfmt("trailing garbage at offset %zu", ps.p);
        return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Digest + context
// --------------------------------------------------------------------

uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
statDigest(std::string_view dump)
{
    return strfmt("fnv1a:%016llx",
                  static_cast<unsigned long long>(fnv1a(dump)));
}

Json
hostContext()
{
    Json ctx = Json::object();
    ctx["git_rev"] = Json(TM_GIT_REV);
#ifdef __VERSION__
    ctx["compiler"] = Json(std::string("gcc-compatible ") + __VERSION__);
#else
    ctx["compiler"] = Json("unknown");
#endif
#ifdef NDEBUG
    ctx["build_type"] = Json("release");
#else
    ctx["build_type"] = Json("debug");
#endif
    ctx["num_cpus"] = Json(unsigned(std::thread::hardware_concurrency()));
    if (const char *e = std::getenv("TM_JOBS"))
        ctx["tm_jobs"] = Json(e);
    // tm-lint: allow(D1) wall-clock timestamp is manifest metadata
    // describing the host run, never simulation output; simulated time
    // comes from the cycle counter only.
    using WallClock = std::chrono::system_clock;
    ctx["created_unix_ms"] = Json(uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            WallClock::now().time_since_epoch())
            .count()));
    return ctx;
}

Json
profileJson(const prof::Profiler &p)
{
    Json out = Json::object();
    out["root_ms"] = Json(double(p.rootNs()) / 1e6);
    Json scopes = Json::array();
    for (size_t i = 0; i < size_t(prof::Scope::NumScopes); ++i) {
        prof::Profiler::Totals t = p.totals(prof::Scope(i));
        if (t.calls == 0)
            continue;
        Json s = Json::object();
        s["name"] = Json(prof::scopeName(prof::Scope(i)));
        s["total_ms"] = Json(double(t.ns) / 1e6);
        s["self_ms"] = Json(double(t.selfNs()) / 1e6);
        s["calls"] = Json(t.calls);
        scopes.push(std::move(s));
    }
    out["scopes"] = std::move(scopes);
    return out;
}

// --------------------------------------------------------------------
// RunReport
// --------------------------------------------------------------------

RunReport::RunReport(std::string kind, std::string name)
{
    doc_["schema"] = Json(kManifestSchema);
    doc_["kind"] = Json(std::move(kind));
    doc_["name"] = Json(std::move(name));
    doc_["context"] = hostContext();
    // Section placeholders fix the output order; write() elides the
    // ones that stay empty.
    doc_["aggregate"] = Json::object();
    doc_["benchmarks"] = Json::array();
    doc_["jobs"] = Json::array();
    doc_["artifacts"] = Json::array();
    doc_["profile"] = Json::object();
    doc_["warnings"] = Json::array();
}

Json &
RunReport::context()
{
    return doc_["context"];
}

Json &
RunReport::aggregate()
{
    return doc_["aggregate"];
}

void
RunReport::addBenchmark(Json v)
{
    doc_["benchmarks"].push(std::move(v));
}

void
RunReport::addJob(Json v)
{
    doc_["jobs"].push(std::move(v));
}

void
RunReport::addArtifact(const std::string &kind, const std::string &path)
{
    Json a = Json::object();
    a["kind"] = Json(kind);
    a["path"] = Json(path);
    doc_["artifacts"].push(std::move(a));
}

void
RunReport::addWarning(const std::string &msg)
{
    doc_["warnings"].push(Json(msg));
}

void
RunReport::setProfile(const prof::Profiler *p)
{
    if (p == nullptr)
        return;
    doc_["profile"] = profileJson(*p);
}

void
RunReport::write(std::ostream &os) const
{
    Json out = Json::object();
    for (size_t i = 0; i < doc_.size(); ++i) {
        const auto &[key, val] = doc_.member(i);
        bool container = val.type() == Json::Type::Array ||
                         val.type() == Json::Type::Object;
        if (container && val.size() == 0)
            continue; // unused section
        out[key] = val;
    }
    out.write(os);
}

bool
RunReport::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write run manifest to %s", path.c_str());
        return false;
    }
    write(os);
    return bool(os);
}

// --------------------------------------------------------------------
// WarnCapture
// --------------------------------------------------------------------

WarnCapture::WarnCapture(RunReport &rep) : rep_(rep)
{
    prev_ = setWarnSink([this](const std::string &msg) {
        // Called under the logging mutex: captured_ needs no lock of
        // its own, and forwarding preserves whole-line ordering.
        captured_.push_back(msg);
        if (prev_)
            prev_(msg);
        else
            std::fprintf(stderr, "warn: %s\n", msg.c_str());
    });
}

WarnCapture::~WarnCapture()
{
    setWarnSink(std::move(prev_));
    for (const std::string &msg : captured_)
        rep_.addWarning(msg);
}

} // namespace tm3270::report
