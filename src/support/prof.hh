/**
 * @file
 * Host-side self-profiler (DESIGN.md §11): scoped wall-clock timers
 * that attribute where the *simulator's* host time goes — compile,
 * predecode, the core run loop, demand refills, the prefetch engine,
 * trace serialization — as opposed to src/trace, which observes the
 * *simulated machine*.
 *
 * Zero cost when off, by the same discipline as TM_TRACE_EVENT: every
 * site goes through the TM_PROF_SCOPE macro, which reads one
 * thread-local `Profiler *` (null by default) and takes a never-taken
 * [[unlikely]] branch. No clock is read, no state is touched, and —
 * the D2-analogous rule P1, enforced by scripts/tm_lint.py — the
 * macro's argument must be side-effect-free, so compiling the probes
 * in cannot perturb simulation results (golden-stats bit-identity and
 * the simrate gate both run with the probes compiled in but off).
 *
 * When on (TM_PROF=1 in the environment, or an explicitly attached
 * Profiler), each scope records inclusive wall time, call count and
 * time spent in nested scopes, so both total and self time per scope
 * are available. Accumulation uses relaxed atomics: one Profiler can
 * be shared by every sweep worker thread; the enter/exit bookkeeping
 * itself is chained through thread-local state and never contends.
 *
 * The profiler only ever *reads* clocks and writes its own counters:
 * it is observation-only by construction. Scope placement keeps even
 * the profiling-ON overhead off the per-instruction path — scopes sit
 * on once-per-run, once-per-static-instruction and per-miss
 * boundaries, never inside the issue loop.
 */

#ifndef TM3270_SUPPORT_PROF_HH
#define TM3270_SUPPORT_PROF_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>

namespace tm3270::prof
{

/** Instrumented host-time scopes. Display names, and the nominal
 *  nesting used by the hierarchical dump, live in prof.cc. */
enum class Scope : uint8_t
{
    Compile,        ///< tir::compile (schedule + encode)
    Stage,          ///< workload input staging into simulated memory
    CoreRun,        ///< Processor::run loop; self time = core step
    Predecode,      ///< decode + predecode of a static instruction
    LsuRefill,      ///< demand-miss refill (load or store side)
    PrefetchService,///< prefetch completions installing lines
    PrefetchIssue,  ///< prefetch queue -> bus issue
    Verify,         ///< workload output verification vs host reference
    TraceSerialize, ///< Chrome-trace JSON / interval CSV writers
    NumScopes
};

/** Fully-qualified display name ("lsu.refill") of a scope. */
const char *scopeName(Scope s);

/**
 * Accumulates per-scope host time. Thread-safe: add() uses relaxed
 * atomic increments, so one instance may be installed on any number
 * of threads at once (sweep workers share the driver's profiler).
 */
class Profiler
{
  public:
    struct Totals
    {
        uint64_t ns = 0;      ///< inclusive wall time
        uint64_t childNs = 0; ///< time inside nested scopes
        uint64_t calls = 0;

        uint64_t selfNs() const { return ns > childNs ? ns - childNs : 0; }
    };

    /** Fold one completed scope interval in (called by ScopeTimer). */
    void
    add(Scope s, uint64_t ns, uint64_t child_ns, bool top_level) noexcept
    {
        Cell &c = cells[size_t(s)];
        c.ns.fetch_add(ns, std::memory_order_relaxed);
        c.childNs.fetch_add(child_ns, std::memory_order_relaxed);
        c.calls.fetch_add(1, std::memory_order_relaxed);
        if (top_level)
            rootNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    Totals
    totals(Scope s) const
    {
        const Cell &c = cells[size_t(s)];
        return {c.ns.load(std::memory_order_relaxed),
                c.childNs.load(std::memory_order_relaxed),
                c.calls.load(std::memory_order_relaxed)};
    }

    /** Wall time covered by top-level scopes (no enclosing scope on
     *  the recording thread): the "accounted for" numerator of the
     *  coverage check in examples/trace_capture. */
    uint64_t
    rootNs() const
    {
        return rootNs_.load(std::memory_order_relaxed);
    }

    /** Forget all accumulated time. */
    void
    reset()
    {
        for (Cell &c : cells) {
            c.ns.store(0, std::memory_order_relaxed);
            c.childNs.store(0, std::memory_order_relaxed);
            c.calls.store(0, std::memory_order_relaxed);
        }
        rootNs_.store(0, std::memory_order_relaxed);
    }

    /**
     * Human-readable hierarchical dump: one line per exercised scope,
     * indented by its nominal nesting, with total/self milliseconds,
     * call counts and the share of top-level time.
     */
    void writeText(std::ostream &os) const;

  private:
    struct Cell
    {
        std::atomic<uint64_t> ns{0};
        std::atomic<uint64_t> childNs{0};
        std::atomic<uint64_t> calls{0};
    };
    std::array<Cell, size_t(Scope::NumScopes)> cells;
    std::atomic<uint64_t> rootNs_{0};
};

/**
 * The calling thread's active profiler (null: profiling off). Every
 * TM_PROF_SCOPE site reads this; it is thread-local so sweep workers
 * opt in individually and the off-path never needs synchronization.
 */
Profiler *current();

/** Install @p p as the calling thread's profiler; returns the
 *  previous one (restore it to nest instrumented phases). */
Profiler *attach(Profiler *p);

/**
 * The process-wide environment-driven profiler: a singleton Profiler
 * when TM_PROF is set to anything but "" / "0", else null. Harness
 * entry points (benches, examples, sweep workers) attach it so
 * `TM_PROF=1 ./any_harness` just works; library code never calls this.
 */
Profiler *envProfiler();

/**
 * RAII scope timer. Constructed cheap: one thread-local read and a
 * never-taken branch when profiling is off; clocks are only read in
 * the out-of-line begin()/end() paths.
 */
class ScopeTimer
{
  public:
    explicit ScopeTimer(Scope s)
    {
        if (current() != nullptr) [[unlikely]]
            begin(s);
    }

    ~ScopeTimer()
    {
        if (prof != nullptr) [[unlikely]]
            end();
    }

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

  private:
    void begin(Scope s);
    void end();

    Profiler *prof = nullptr;   ///< null: this scope recorded nothing
    ScopeTimer *parent = nullptr;
    uint64_t startNs = 0;
    uint64_t childNs = 0;       ///< filled in by nested scopes' end()
    Scope scope = Scope::NumScopes;
};

#define TM_PROF_CAT2(a, b) a##b
#define TM_PROF_CAT(a, b) TM_PROF_CAT2(a, b)

/**
 * Instrumentation-site macro: time the rest of the enclosing block
 * under @p scope_id iff a profiler is attached to this thread. The
 * argument must be side-effect-free (lint rule P1): it may be
 * evaluated zero times per conceptual "event" as far as simulation
 * semantics are concerned, and the probe must never feed back into
 * simulated state.
 */
#define TM_PROF_SCOPE(scope_id)                                             \
    ::tm3270::prof::ScopeTimer TM_PROF_CAT(tm_prof_scope_,                  \
                                           __LINE__)((scope_id))

} // namespace tm3270::prof

#endif // TM3270_SUPPORT_PROF_HH
