/**
 * @file
 * Run manifests (DESIGN.md §11): one schema-versioned JSON document
 * per harness run, so every bench, sweep and example leaves the same
 * machine-readable evidence behind — who built it (git revision,
 * compiler, build type), where it ran (CPU count, worker pool, CPU
 * frequency-scaling state), what it did (workloads, configs, per-job
 * wall times, simrate), what it produced (stat digest, trace/interval
 * artifact paths, self-profiler totals) and what looked suspicious
 * (captured warn() messages).
 *
 * scripts/perf_history.py appends manifests to
 * bench/history/history.jsonl and runs regression detection over
 * them; scripts/check_simrate.py gates on the "benchmarks" section.
 * The schema is deliberately a superset of what those consumers need:
 * a manifest answers "what exactly was this number measured on?"
 * months later, when the build directory is long gone.
 *
 * The Json value type here is ordered (object keys keep insertion
 * order) and writes deterministically, so two identical runs produce
 * byte-identical manifests modulo the timestamp and wall times —
 * which is what makes the stat digest a meaningful fingerprint.
 */

#ifndef TM3270_SUPPORT_REPORT_HH
#define TM3270_SUPPORT_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace tm3270::prof
{
class Profiler;
}

namespace tm3270::report
{

/** Manifest schema identifier; bump on incompatible layout changes. */
inline constexpr const char *kManifestSchema = "tm3270.run_manifest.v1";

/**
 * A JSON value with *ordered* object keys (insertion order, the way
 * the document was built) — manifests are meant to be read by humans
 * in `jq`-less terminals too, so "schema" stays on top. Supports the
 * full JSON data model; numbers keep their integer-ness (uint64 /
 * int64) when they have one, so stat counters round-trip exactly.
 */
class Json
{
  public:
    enum class Type : uint8_t
    {
        Null,
        Bool,
        Uint,   ///< non-negative integer literal
        Int,    ///< negative integer literal
        Double,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(bool v) : type_(Type::Bool), b_(v) {}
    Json(uint64_t v) : type_(Type::Uint), u_(v) {}
    Json(int64_t v)
        : type_(v < 0 ? Type::Int : Type::Uint), i_(v)
    {
        if (v >= 0)
            u_ = uint64_t(v);
    }
    Json(int v) : Json(int64_t(v)) {}
    Json(unsigned v) : Json(uint64_t(v)) {}
    Json(double v) : type_(Type::Double), d_(v) {}
    Json(std::string v) : type_(Type::String), s_(std::move(v)) {}
    Json(const char *v) : type_(Type::String), s_(v) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Object access: insert-or-get, preserving insertion order.
     *  Converts a Null value into an Object on first use. */
    Json &operator[](const std::string &key);

    /** Object lookup; null when absent or not an object. */
    const Json *find(std::string_view key) const;

    /** Array append. Converts a Null value into an Array on first
     *  use. */
    void push(Json v);

    // Scalar accessors (loose: return a fallback on type mismatch, so
    // consumers of foreign manifests degrade instead of crashing).
    bool asBool(bool dflt = false) const;
    uint64_t asUint(uint64_t dflt = 0) const;
    int64_t asInt(int64_t dflt = 0) const;
    double asDouble(double dflt = 0.0) const; ///< coerces integers
    const std::string &asString() const; ///< empty on mismatch

    size_t size() const; ///< elements (array) or members (object)
    const Json &at(size_t i) const;           ///< array element
    const std::pair<std::string, Json> &member(size_t i) const;

    /** Serialize with 2-space indentation and a trailing newline at
     *  top level. Deterministic: depends only on the value. */
    void write(std::ostream &os) const;
    std::string str() const;

    /** Parse @p text; false (with @p err set) on malformed input. */
    static bool parse(std::string_view text, Json &out, std::string &err);

  private:
    void writeIndented(std::ostream &os, int indent) const;

    Type type_ = Type::Null;
    bool b_ = false;
    uint64_t u_ = 0;
    int64_t i_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** FNV-1a 64-bit hash (stable across platforms and runs). */
uint64_t fnv1a(std::string_view s);

/** Fingerprint of a full stat dump: "fnv1a:<16 hex digits>". Two
 *  bit-identical dumps — the golden-stats invariant — digest
 *  identically, so manifests can prove stat stability without
 *  embedding the multi-KB dump itself. */
std::string statDigest(std::string_view dump);

/**
 * Host/build context shared by every manifest: git revision (baked in
 * at configure time), compiler version, build type, CPU count, the
 * TM_JOBS override if any, and a wall-clock timestamp. Callers add
 * run-specific keys (worker count, CPU scaling state) on top.
 */
Json hostContext();

/**
 * Builder for one run manifest. Fixes the section order (schema,
 * kind, name, context, aggregate, benchmarks/jobs, artifacts,
 * profile, warnings) so every manifest reads the same way.
 */
class RunReport
{
  public:
    /** @p kind is the manifest flavor ("sweep", "simrate",
     *  "example"); @p name identifies the harness ("figure7"). */
    RunReport(std::string kind, std::string name);

    /** The context object (pre-filled by hostContext()); add
     *  run-specific keys through this. */
    Json &context();

    /** Whole-run aggregate metrics (wall clock, simrate, ...). */
    Json &aggregate();

    /** Append one benchmark record (simrate-style manifests). Keys
     *  "name" / "items_per_second" / "run_type" keep
     *  scripts/check_simrate.py working on manifests. */
    void addBenchmark(Json v);

    /** Append one job record (sweep-style manifests). */
    void addJob(Json v);

    /** Register a produced file (kind: "trace", "intervals", ...). */
    void addArtifact(const std::string &kind, const std::string &path);

    /** Append one warning message. */
    void addWarning(const std::string &msg);

    /** Fold the self-profiler's totals into the manifest (call once,
     *  after the measured work). No-op when @p p is null. */
    void setProfile(const prof::Profiler *p);

    /** The manifest document (for tests and custom consumers). */
    const Json &doc() const { return doc_; }

    /** Write the manifest; empty sections are omitted. */
    void write(std::ostream &os) const;

    /** Write to @p path; warn() and return false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    Json doc_;
};

/**
 * RAII warn() capture: while alive, every warning is forwarded to the
 * previously installed sink (or stderr) AND recorded; the destructor
 * restores the previous sink and appends the captured messages to the
 * report's "warnings" section. Nesting works (inner captures see and
 * forward to outer ones). Not for use across sweep worker threads'
 * lifetimes — construct before the pool starts, destroy after it
 * joins, and the mutex inside warn() serializes the rest.
 */
class WarnCapture
{
  public:
    explicit WarnCapture(RunReport &rep);
    ~WarnCapture();

    WarnCapture(const WarnCapture &) = delete;
    WarnCapture &operator=(const WarnCapture &) = delete;

  private:
    RunReport &rep_;
    WarnSink prev_;
    std::vector<std::string> captured_;
};

/** Convert the Profiler's totals into the manifest "profile" object
 *  (also used by examples that print and embed the same data). */
Json profileJson(const prof::Profiler &p);

} // namespace tm3270::report

#endif // TM3270_SUPPORT_REPORT_HH
