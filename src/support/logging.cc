#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace tm3270
{

namespace
{

/** Guards warnSink and serializes every sink invocation. */
// tm-lint: allow(T1) the lock itself; every access below is a
// lock_guard acquisition, never a data read or write.
std::mutex warnMutex;

/** Empty: the default stderr sink is active. */
// tm-lint: allow(T1) only read or swapped under warnMutex, so sweep
// workers see whole sink installations, never a torn std::function.
WarnSink warnSink;

} // namespace

WarnSink
setWarnSink(WarnSink sink)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    WarnSink prev = std::move(warnSink);
    warnSink = std::move(sink);
    return prev;
}

static std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(s);
}

void
panicAssertFail(const char *cond, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed: %s\n", cond,
                 s.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(warnMutex);
    if (warnSink)
        warnSink(s);
    else
        std::fprintf(stderr, "warn: %s\n", s.c_str());
}

} // namespace tm3270
