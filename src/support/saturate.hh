/**
 * @file
 * Saturating (clipping) arithmetic helpers for the SIMD and DSP
 * operations of the TriMedia ISA.
 */

#ifndef TM3270_SUPPORT_SATURATE_HH
#define TM3270_SUPPORT_SATURATE_HH

#include <algorithm>
#include <cstdint>

namespace tm3270
{

/** Clip @p v to the signed 32-bit range. */
constexpr int32_t
clipS32(int64_t v)
{
    return static_cast<int32_t>(
        std::min<int64_t>(std::max<int64_t>(v, INT32_MIN), INT32_MAX));
}

/** Clip @p v to the signed 16-bit range. */
constexpr int16_t
clipS16(int64_t v)
{
    return static_cast<int16_t>(
        std::min<int64_t>(std::max<int64_t>(v, INT16_MIN), INT16_MAX));
}

/** Clip @p v to the unsigned 8-bit range. */
constexpr uint8_t
clipU8(int64_t v)
{
    return static_cast<uint8_t>(std::min<int64_t>(std::max<int64_t>(v, 0),
                                                  255));
}

/** Clip @p v to the unsigned 16-bit range. */
constexpr uint16_t
clipU16(int64_t v)
{
    return static_cast<uint16_t>(
        std::min<int64_t>(std::max<int64_t>(v, 0), 65535));
}

/** Clip @p v to [0, bound] (TriMedia uclipi semantics). */
constexpr int64_t
clipRange(int64_t v, int64_t lo, int64_t hi)
{
    return std::min(std::max(v, lo), hi);
}

} // namespace tm3270

#endif // TM3270_SUPPORT_SATURATE_HH
