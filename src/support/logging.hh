/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — a model bug: a condition that must never occur regardless of
 *            user input. Aborts.
 * fatal()  — a user error (bad configuration, malformed program). Throws
 *            FatalError so embedding code and tests can recover.
 * warn()   — something suspicious that does not stop simulation.
 *            Delivered through a pluggable, mutex-guarded sink so
 *            warnings from parallel sweep workers never interleave
 *            mid-line; the default sink writes "warn: ...\n" to
 *            stderr, one whole line per call.
 */

#ifndef TM3270_SUPPORT_LOGGING_HH
#define TM3270_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace tm3270
{

/** Exception thrown by fatal(): a user-level, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error: throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal warning through the installed warn sink. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Receives one fully-formatted warning message (no trailing \n). */
using WarnSink = std::function<void(const std::string &)>;

/**
 * Install @p sink as the warn() destination and return the previous
 * sink (an empty function means the stderr default was active; pass
 * it — or an empty WarnSink — back to restore). The swap and every
 * sink invocation are serialized on one mutex, so concurrent warn()
 * calls from sweep worker threads deliver whole messages in some
 * order instead of interleaving on stderr.
 */
WarnSink setWarnSink(WarnSink sink);

/** Implementation detail of tm_assert. */
[[noreturn]] void panicAssertFail(const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** panic() if the condition does not hold. */
#define tm_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond))                                                        \
            ::tm3270::panicAssertFail(#cond, __VA_ARGS__);                  \
    } while (0)

} // namespace tm3270

#endif // TM3270_SUPPORT_LOGGING_HH
