/**
 * @file
 * Fundamental scalar types used throughout the TM3270 model.
 */

#ifndef TM3270_SUPPORT_TYPES_HH
#define TM3270_SUPPORT_TYPES_HH

#include <cstdint>

namespace tm3270
{

/** 32-bit virtual/physical address (the TM3270 has a 32-bit address space). */
using Addr = uint32_t;

/** Machine word: the unified register file holds 32-bit words. */
using Word = uint32_t;

/** Signed view of a machine word. */
using SWord = int32_t;

/** Cycle count. Simulations can run long; use 64 bits. */
using Cycles = uint64_t;

/** Architectural register index (r0 .. r127). */
using RegIndex = uint8_t;

/** Number of architectural registers in the unified register file. */
inline constexpr unsigned numRegs = 128;

/** Register r0 always reads 0 (TriMedia convention). */
inline constexpr RegIndex regZero = 0;

/** Register r1 always reads 1 (TriMedia convention; default guard). */
inline constexpr RegIndex regOne = 1;

} // namespace tm3270

#endif // TM3270_SUPPORT_TYPES_HH
