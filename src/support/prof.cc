#include "support/prof.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace tm3270::prof
{

namespace
{

/** Display metadata: name plus the nominal parent used for dump
 *  indentation. The *measured* child attribution is dynamic (whatever
 *  scopes actually nested at run time); this table only shapes the
 *  text report, matching the dominant nesting in practice. */
struct ScopeInfo
{
    const char *name;
    int parent; ///< index into the Scope enum; -1 = top level
};

constexpr int kNoParent = -1;

constexpr ScopeInfo kScopes[size_t(Scope::NumScopes)] = {
    // clang-format off
    {"compile",          kNoParent},
    {"workload.stage",   kNoParent},
    {"core.run",         kNoParent},
    {"predecode",        int(Scope::CoreRun)},
    {"lsu.refill",       int(Scope::CoreRun)},
    {"prefetch.service", int(Scope::CoreRun)},
    {"prefetch.issue",   int(Scope::CoreRun)},
    {"workload.verify",  kNoParent},
    {"trace.serialize",  kNoParent},
    // clang-format on
};

/** The innermost open scope of this thread (intrusive stack through
 *  ScopeTimer::parent). Thread-local, so scope nesting never crosses
 *  threads and the bookkeeping is race-free by construction. */
static thread_local ScopeTimer *tTop = nullptr;

/** The calling thread's attached profiler (null: profiling off). */
static thread_local Profiler *tProfiler = nullptr;

uint64_t
nowNs()
{
    using namespace std::chrono;
    return uint64_t(
        duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char *
scopeName(Scope s)
{
    tm_assert(s < Scope::NumScopes, "bad prof scope %u", unsigned(s));
    return kScopes[size_t(s)].name;
}

Profiler *
current()
{
    return tProfiler;
}

Profiler *
attach(Profiler *p)
{
    Profiler *old = tProfiler;
    tProfiler = p;
    return old;
}

Profiler *
envProfiler()
{
    // tm-lint: allow(T1) write-once under the magic-static guard, then
    // read-only; the Profiler it points to is internally thread-safe.
    static Profiler *g = []() -> Profiler * {
        const char *e = std::getenv("TM_PROF");
        if (e == nullptr || *e == '\0' || std::strcmp(e, "0") == 0)
            return nullptr;
        return new Profiler;
    }();
    return g;
}

void
ScopeTimer::begin(Scope s)
{
    prof = tProfiler;
    scope = s;
    parent = tTop;
    tTop = this;
    startNs = nowNs();
}

void
ScopeTimer::end()
{
    uint64_t elapsed = nowNs() - startNs;
    tTop = parent;
    if (parent != nullptr)
        parent->childNs += elapsed;
    prof->add(scope, elapsed, childNs, parent == nullptr);
}

void
Profiler::writeText(std::ostream &os) const
{
    const uint64_t root = rootNs();
    os << "host-time profile (TM_PROF):\n";
    if (root == 0) {
        os << "  (no scopes recorded)\n";
        return;
    }

    // Emit in enum order, children directly under their nominal
    // parent, skipping scopes that never ran.
    auto emit = [&](auto &&self, int parent, int depth) -> void {
        for (size_t i = 0; i < size_t(Scope::NumScopes); ++i) {
            if (kScopes[i].parent != parent)
                continue;
            Totals t = totals(Scope(i));
            if (t.calls == 0) {
                self(self, int(i), depth + 1);
                continue;
            }
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "  %*s%-*s %9.3f ms total  %9.3f ms self  "
                          "%10llu calls  %5.1f%%\n",
                          depth * 2, "", 18 - depth * 2, kScopes[i].name,
                          double(t.ns) / 1e6, double(t.selfNs()) / 1e6,
                          static_cast<unsigned long long>(t.calls),
                          100.0 * double(t.ns) / double(root));
            os << buf;
            self(self, int(i), depth + 1);
        }
    };
    emit(emit, kNoParent, 0);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "  top-level scope total: %.3f ms\n", double(root) / 1e6);
    os << buf;
}

} // namespace tm3270::prof
