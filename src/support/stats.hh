/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package. Units register scalar counters in a StatGroup; harnesses
 * read or dump them after simulation.
 */

#ifndef TM3270_SUPPORT_STATS_HH
#define TM3270_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace tm3270
{

/** A hierarchical group of named 64-bit counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    /** Increment counter @p name by @p n (creating it at 0 if new). */
    void
    inc(const std::string &name, uint64_t n = 1)
    {
        counters[name] += n;
    }

    /** Set counter @p name to an absolute value. */
    void
    set(const std::string &name, uint64_t v)
    {
        counters[name] = v;
    }

    /** Read a counter; returns 0 when it has never been touched. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Reset every counter to zero. */
    void
    reset()
    {
        for (auto &kv : counters)
            kv.second = 0;
    }

    /** Group name used as a dump prefix. */
    const std::string &name() const { return groupName; }

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters; }

    /** Write "group.counter value" lines to @p os. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[k, v] : counters)
            os << groupName << '.' << k << ' ' << v << '\n';
    }

  private:
    std::string groupName;
    std::map<std::string, uint64_t> counters;
};

} // namespace tm3270

#endif // TM3270_SUPPORT_STATS_HH
