/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package. Units register scalar counters in a StatGroup; harnesses
 * read or dump them after simulation.
 *
 * Two access paths share one storage:
 *
 *  - the string API (inc/set/get by name) for harnesses and cold code;
 *  - interned StatHandles for hot code: a handle is resolved once (at
 *    unit construction or predecode time) and increments through a
 *    stable pointer, with no per-event map lookup.
 *
 * A counter becomes visible in dump()/all() only once it has been
 * touched through either path, so pre-interning a handle does not
 * change dump output relative to purely string-keyed use.
 */

#ifndef TM3270_SUPPORT_STATS_HH
#define TM3270_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tm3270
{

namespace stats_detail
{
/** Storage of one counter; lives in a node-based map, so its address
 *  is stable for the lifetime of the owning StatGroup. */
struct Counter
{
    uint64_t value = 0;
    bool touched = false; ///< ever incremented/set; gates dump output
};
} // namespace stats_detail

/**
 * Interned reference to one counter of a StatGroup. Obtained once via
 * StatGroup::handle(); increments are a direct memory write. Remains
 * valid across StatGroup::reset() for the lifetime of the group.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    /** Resolved to a counter? (default-constructed handles are not). */
    bool valid() const { return c != nullptr; }

    void
    inc(uint64_t n = 1) const
    {
        c->value += n;
        c->touched = true;
    }

    void
    set(uint64_t v) const
    {
        c->value = v;
        c->touched = true;
    }

    uint64_t get() const { return c->value; }

  private:
    friend class StatGroup;
    explicit StatHandle(stats_detail::Counter *c_) : c(c_) {}
    stats_detail::Counter *c = nullptr;
};

/**
 * A hierarchical group of named 64-bit counters. Child groups can be
 * registered with addChild(); dump()/all() then emit the whole
 * subtree in one pass, child counters prefixed with the child group
 * name ("cpu.stall.icache" instead of a flat "cpu.stall_icache").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    /**
     * Intern @p name and return a stable handle to its counter. The
     * counter stays invisible to dump()/all() until first touched.
     */
    StatHandle handle(const std::string &name)
    {
        return StatHandle(&counters[name]);
    }

    /** Increment counter @p name by @p n (creating it at 0 if new). */
    void
    inc(const std::string &name, uint64_t n = 1)
    {
        auto &c = counters[name];
        c.value += n;
        c.touched = true;
    }

    /** Set counter @p name to an absolute value. */
    void
    set(const std::string &name, uint64_t v)
    {
        auto &c = counters[name];
        c.value = v;
        c.touched = true;
    }

    /** Read a counter; returns 0 when it has never been touched. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value;
    }

    /** Reset every counter (children included) to zero (touched
     *  counters stay visible). */
    void
    reset()
    {
        for (auto &kv : counters)
            kv.second.value = 0;
        for (StatGroup *child : children)
            child->reset();
    }

    /**
     * Register @p child as a sub-group: dump()/all() of this group
     * then include the child's touched counters, name-prefixed. The
     * child must outlive this group; ownership is not transferred.
     */
    void addChild(StatGroup *child) { children.push_back(child); }

    /** Group name used as a dump prefix. */
    const std::string &name() const { return groupName; }

    /**
     * All touched counters of this group and its children, sorted by
     * name within each group. Own counters keep their bare name;
     * child counters are prefixed "child.counter".
     */
    std::map<std::string, uint64_t>
    all() const
    {
        std::map<std::string, uint64_t> out;
        collectInto(out, "");
        return out;
    }

    /**
     * Write "group.counter value" lines to @p os: own counters first
     * (sorted by name), then each child subtree in registration order
     * as "group.child.counter value".
     */
    void
    dump(std::ostream &os) const
    {
        dumpPrefixed(os, groupName);
    }

    /**
     * Every counter name interned or touched in this group and its
     * children, fully prefixed like dump() output ("cpu.stall.icache"),
     * regardless of touched state. The runtime twin of lint rule S1
     * (tests/test_stat_registry.cc) walks this to prove registry-wide
     * name uniqueness and exactly-once dump coverage.
     */
    std::vector<std::string>
    registered() const
    {
        std::vector<std::string> out;
        registeredInto(out, groupName);
        return out;
    }

    /**
     * Mark every counter of this group and its children as touched
     * (values unchanged), so a subsequent dump() shows the complete
     * registry. Test support for the stat-registry gate; simulation
     * code must never call this — it would add never-incremented
     * counters to golden dumps.
     */
    void
    touchAll()
    {
        for (auto &kv : counters)
            kv.second.touched = true;
        for (StatGroup *child : children)
            child->touchAll();
    }

  private:
    void
    dumpPrefixed(std::ostream &os, const std::string &prefix) const
    {
        for (const auto &[k, c] : counters) {
            if (c.touched)
                os << prefix << '.' << k << ' ' << c.value << '\n';
        }
        for (const StatGroup *child : children)
            child->dumpPrefixed(os, prefix + '.' + child->groupName);
    }

    void
    registeredInto(std::vector<std::string> &out,
                   const std::string &prefix) const
    {
        for (const auto &kv : counters)
            out.push_back(prefix + '.' + kv.first);
        for (const StatGroup *child : children)
            child->registeredInto(out, prefix + '.' + child->groupName);
    }

    void
    collectInto(std::map<std::string, uint64_t> &out,
                const std::string &prefix) const
    {
        for (const auto &[k, c] : counters) {
            if (c.touched)
                out.emplace(prefix + k, c.value);
        }
        for (const StatGroup *child : children)
            child->collectInto(out, prefix + child->groupName + '.');
    }

    std::string groupName;
    std::map<std::string, stats_detail::Counter> counters;
    std::vector<StatGroup *> children;
};

} // namespace tm3270

#endif // TM3270_SUPPORT_STATS_HH
