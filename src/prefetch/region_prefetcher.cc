#include "prefetch/region_prefetcher.hh"

#include "support/logging.hh"

namespace tm3270
{

void
RegionPrefetcher::setRegion(unsigned n, Addr start, Addr end,
                            int32_t stride)
{
    tm_assert(n < numRegions, "prefetch region index out of range");
    regions[n] = Region{start, end, stride};
    enabledCount = 0;
    for (const auto &r : regions)
        enabledCount += r.enabled();
}

void
RegionPrefetcher::reset()
{
    for (auto &r : regions)
        r = Region{};
    enabledCount = 0;
}

const RegionPrefetcher::Region &
RegionPrefetcher::region(unsigned n) const
{
    tm_assert(n < numRegions, "prefetch region index out of range");
    return regions[n];
}

std::optional<Addr>
RegionPrefetcher::lookup(Addr addr) const
{
    for (const auto &r : regions) {
        if (!r.enabled() || !r.contains(addr))
            continue;
        int64_t target = int64_t(addr) + r.stride;
        if (target < 0)
            return std::nullopt;
        Addr t = static_cast<Addr>(target);
        if (!r.contains(t))
            return std::nullopt;
        return t;
    }
    return std::nullopt;
}

} // namespace tm3270
