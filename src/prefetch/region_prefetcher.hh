/**
 * @file
 * Memory-region based prefetch policy (paper §2.3).
 *
 * Software defines up to four memory regions, each with a start
 * address, end address and stride:
 *
 *   PFn_START_ADDR, PFn_END_ADDR, PFn_STRIDE      (n = 0..3)
 *
 * When the hardware detects a load from an address A inside region n,
 * a prefetch request for A + PFn_STRIDE is generated, provided the
 * prefetch address is itself inside the region. Dedup against the
 * cache and in-flight refills is done by the prefetch engine in the
 * load/store unit; this class is pure policy.
 */

#ifndef TM3270_PREFETCH_REGION_PREFETCHER_HH
#define TM3270_PREFETCH_REGION_PREFETCHER_HH

#include <array>
#include <optional>

#include "support/types.hh"

namespace tm3270
{

/** The four software-programmed prefetch regions. */
class RegionPrefetcher
{
  public:
    static constexpr unsigned numRegions = 4;

    /** One prefetch region; disabled while start >= end or stride 0. */
    struct Region
    {
        Addr start = 0;
        Addr end = 0;
        int32_t stride = 0;

        bool
        enabled() const
        {
            return start < end && stride != 0;
        }

        bool
        contains(Addr a) const
        {
            return a >= start && a < end;
        }
    };

    /** Program region @p n. */
    void setRegion(unsigned n, Addr start, Addr end, int32_t stride);

    /** Disable every region. */
    void reset();

    const Region &region(unsigned n) const;

    /**
     * Region lookup for a demand load at @p addr: returns the address
     * to prefetch (addr + stride of the matching region) or nullopt.
     * The first matching region wins. Called on every load, so the
     * nothing-programmed common case is a single compare.
     */
    std::optional<Addr>
    onLoad(Addr addr) const
    {
        if (enabledCount == 0)
            return std::nullopt;
        return lookup(addr);
    }

  private:
    std::optional<Addr> lookup(Addr addr) const;

    std::array<Region, numRegions> regions;
    unsigned enabledCount = 0; ///< number of enabled() regions
};

} // namespace tm3270

#endif // TM3270_PREFETCH_REGION_PREFETCHER_HH
