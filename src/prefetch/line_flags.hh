/**
 * @file
 * Per-cache-line flag bitmap over the physical address space, used by
 * the prefetch engine in the load/store unit to answer "is a prefetch
 * of this line pending?" and "was this line installed by a prefetch?"
 * in O(1) with one bit of state per line, instead of hashing the line
 * address into an unordered_set on every query.
 *
 * One bit per line of main memory: 32 MByte of simulated DRAM with
 * 128-byte lines is a 32 KByte bitmap, set-processor-resident on the
 * host. Semantically this is exactly a set of line addresses; the
 * membership operations mirror unordered_set::count/insert/erase so
 * the replacement is stat-bit-identical.
 */

#ifndef TM3270_PREFETCH_LINE_FLAGS_HH
#define TM3270_PREFETCH_LINE_FLAGS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace tm3270
{

/** A flag bit per cache line of main memory. */
class LineFlags
{
  public:
    LineFlags(size_t mem_bytes, unsigned line_bytes)
        : lineShift(log2i(line_bytes)),
          numLines(mem_bytes >> lineShift),
          words((numLines + 63) / 64, 0)
    {
        tm_assert(isPow2(line_bytes), "line size must be a power of two");
    }

    /** Is the flag set for the line containing @p line_addr? */
    bool
    test(Addr line_addr) const
    {
        size_t i = index(line_addr);
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(Addr line_addr)
    {
        size_t i = index(line_addr);
        words[i >> 6] |= uint64_t(1) << (i & 63);
    }

    void
    clear(Addr line_addr)
    {
        size_t i = index(line_addr);
        words[i >> 6] &= ~(uint64_t(1) << (i & 63));
    }

    /** Clear and return the previous value (unordered_set::erase). */
    bool
    testClear(Addr line_addr)
    {
        size_t i = index(line_addr);
        uint64_t bit = uint64_t(1) << (i & 63);
        bool was = words[i >> 6] & bit;
        words[i >> 6] &= ~bit;
        return was;
    }

    /** Clear every flag. */
    void
    reset()
    {
        std::fill(words.begin(), words.end(), 0);
    }

  private:
    size_t
    index(Addr line_addr) const
    {
        size_t i = size_t(line_addr) >> lineShift;
        tm_assert(i < numLines,
                  "line flag address out of range: 0x%08x", line_addr);
        return i;
    }

    unsigned lineShift;
    size_t numLines;
    std::vector<uint64_t> words;
};

} // namespace tm3270

#endif // TM3270_PREFETCH_LINE_FLAGS_HH
