/**
 * @file
 * H.264-style CABAC golden model: the binary arithmetic encoder, a
 * host-side decoder built directly on the biari_decode_symbol function
 * of paper Fig. 2, and a synthetic field-bitstream generator used to
 * reproduce Table 3.
 */

#ifndef TM3270_CABAC_CABAC_HH
#define TM3270_CABAC_CABAC_HH

#include <cstdint>
#include <vector>

#include "isa/cabac_tables.hh"
#include "support/bitstream.hh"

namespace tm3270
{

/** One probability-model context: 6-bit state plus MPS bit. */
struct CabacContext
{
    uint8_t state = 0;
    uint8_t mps = 0;
};

/** H.264 binary arithmetic encoder (regular bins). */
class CabacEncoder
{
  public:
    CabacEncoder();

    /** Encode one bin with context @p ctx (updating it). */
    void encodeBit(CabacContext &ctx, unsigned bit);

    /** Flush; returns the byte stream (padded with guard bytes so a
     *  decoder can always read a full 32-bit window). */
    std::vector<uint8_t> finish();

    /** Bits produced so far (approximate until finish()). */
    size_t bitsProduced() const { return out.bitSize() + outstanding; }

  private:
    uint32_t low = 0;
    uint32_t range = 510;
    uint64_t outstanding = 0;
    bool firstBit = true; ///< H.264: the first output bit is discarded
    BitWriter out;

    void putBitFollow(unsigned b);
    void putOne(unsigned b);
};

/**
 * Host-side CABAC decoder built on the paper's biari_decode_symbol
 * (Fig. 2). Maintains the 32-bit stream_data window and bit position
 * exactly as the TM3270 operations see them.
 */
class CabacDecoder
{
  public:
    explicit CabacDecoder(const std::vector<uint8_t> &stream);

    /** Decode one bin with context @p ctx (updating it). */
    unsigned decodeBit(CabacContext &ctx);

    /** Total bits consumed from the stream. */
    size_t bitsConsumed() const { return pos - 9; }

  private:
    const std::vector<uint8_t> &buf;
    size_t pos = 0;   ///< absolute bit position of the next stream bit
    uint32_t value = 0;
    uint32_t range = 510;

    uint32_t window(size_t byte_index) const;
};

/** A synthetic CABAC-coded "field" bitstream plus its ground truth. */
struct SyntheticField
{
    std::vector<uint8_t> stream;       ///< encoded bytes (padded)
    std::vector<uint8_t> ctxSequence;  ///< context index per bin
    std::vector<uint8_t> bins;         ///< encoded bin values
    std::vector<CabacContext> initCtx; ///< initial context states
    size_t streamBits = 0;             ///< encoded payload bits
};

/**
 * Generate a synthetic field bitstream of roughly @p target_bits coded
 * bits using @p num_ctx contexts whose sources are Bernoulli with
 * P(MPS) = @p p_mps. Higher p_mps compresses better: more bins per
 * stream bit (B-fields), lower p_mps resembles I-fields.
 */
SyntheticField generateField(size_t target_bits, unsigned num_ctx,
                             double p_mps, uint64_t seed);

} // namespace tm3270

#endif // TM3270_CABAC_CABAC_HH
