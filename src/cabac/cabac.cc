#include "cabac/cabac.hh"

#include <random>

#include "support/logging.hh"

namespace tm3270
{

CabacEncoder::CabacEncoder() = default;

void
CabacEncoder::putOne(unsigned b)
{
    // H.264 PutBit: the very first bit is a sentinel from the 10-bit
    // low register and is not transmitted (firstBitFlag).
    if (firstBit)
        firstBit = false;
    else
        out.putBit(b);
}

void
CabacEncoder::putBitFollow(unsigned b)
{
    putOne(b);
    while (outstanding > 0) {
        putOne(b ^ 1);
        --outstanding;
    }
}

void
CabacEncoder::encodeBit(CabacContext &ctx, unsigned bit)
{
    uint32_t rlps = lpsRangeTable[ctx.state][(range >> 6) & 3];
    range -= rlps;
    if ((bit & 1) == ctx.mps) {
        ctx.state = mpsNextStateTable[ctx.state];
    } else {
        low += range;
        range = rlps;
        if (ctx.state == 0)
            ctx.mps ^= 1;
        ctx.state = lpsNextStateTable[ctx.state];
    }
    while (range < 256) {
        if (low >= 512) {
            putBitFollow(1);
            low -= 512;
        } else if (low < 256) {
            putBitFollow(0);
        } else {
            ++outstanding;
            low -= 256;
        }
        low <<= 1;
        range <<= 1;
    }
}

std::vector<uint8_t>
CabacEncoder::finish()
{
    // Emit the 10 bits of low; any stream completing this prefix
    // decodes identically because low lies inside [low, low + range).
    for (unsigned i = 10; i-- > 0;)
        putBitFollow((low >> i) & 1);
    out.alignByte();
    std::vector<uint8_t> bytes = out.data();
    // Guard bytes: the decoder reads 32-bit windows.
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0);
    return bytes;
}

CabacDecoder::CabacDecoder(const std::vector<uint8_t> &stream) : buf(stream)
{
    tm_assert(buf.size() >= 8, "stream too short");
    // Initialization: value = first 9 stream bits (H.264 §9.3.1.2).
    BitReader r(buf);
    value = static_cast<uint32_t>(r.get(9));
    pos = 9;
}

uint32_t
CabacDecoder::window(size_t byte_index) const
{
    auto at = [&](size_t i) -> uint32_t {
        return i < buf.size() ? buf[i] : 0;
    };
    return (at(byte_index) << 24) | (at(byte_index + 1) << 16) |
           (at(byte_index + 2) << 8) | at(byte_index + 3);
}

unsigned
CabacDecoder::decodeBit(CabacContext &ctx)
{
    uint32_t stream_data = window(pos / 8);
    uint32_t bit_pos = pos % 8;
    CabacStep st = biariDecodeSymbol(value, range, ctx.state, ctx.mps,
                                     stream_data, bit_pos);
    value = st.value;
    range = st.range;
    ctx.state = static_cast<uint8_t>(st.state);
    ctx.mps = static_cast<uint8_t>(st.mps);
    pos += st.bitPos - bit_pos;
    return st.bit;
}

SyntheticField
generateField(size_t target_bits, unsigned num_ctx, double p_mps,
              uint64_t seed)
{
    tm_assert(num_ctx > 0 && num_ctx <= 256, "bad context count");
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<unsigned> ctx_dist(0, num_ctx - 1);
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    std::uniform_int_distribution<unsigned> state_dist(0, 40);

    SyntheticField f;
    f.initCtx.resize(num_ctx);
    for (auto &c : f.initCtx) {
        c.state = static_cast<uint8_t>(state_dist(rng));
        c.mps = static_cast<uint8_t>(rng() & 1);
    }

    std::vector<CabacContext> ctx = f.initCtx;
    CabacEncoder enc;
    while (enc.bitsProduced() + 16 < target_bits) {
        unsigned ci = ctx_dist(rng);
        unsigned bit = unif(rng) < p_mps ? ctx[ci].mps : (ctx[ci].mps ^ 1);
        enc.encodeBit(ctx[ci], bit);
        f.ctxSequence.push_back(static_cast<uint8_t>(ci));
        f.bins.push_back(static_cast<uint8_t>(bit));
    }
    f.stream = enc.finish();
    f.streamBits = (f.stream.size() - 8) * 8;
    return f;
}

} // namespace tm3270
