#include "power/power_model.hh"

#include "support/logging.hh"

namespace tm3270
{

namespace
{

struct ModuleInfo
{
    const char *name;
    double areaMm2;
    double paperMwPerMhz;
};

constexpr ModuleInfo moduleTable[numModules] = {
    {"IFU", 1.46, 0.272},     {"Decode", 0.05, 0.022},
    {"Regfile", 0.97, 0.170}, {"Execute", 1.53, 0.255},
    {"LS", 3.60, 0.266},      {"BIU", 0.24, 0.002},
    {"MMIO", 0.23, 0.012},
};

} // namespace

const char *
moduleName(Module m)
{
    return moduleTable[static_cast<unsigned>(m)].name;
}

double
moduleAreaMm2(Module m)
{
    return moduleTable[static_cast<unsigned>(m)].areaMm2;
}

double
totalAreaMm2()
{
    double t = 0;
    for (unsigned i = 0; i < numModules; ++i)
        t += moduleTable[i].areaMm2;
    return t;
}

double
paperPowerMwPerMhz(Module m)
{
    return moduleTable[static_cast<unsigned>(m)].paperMwPerMhz;
}

ActivitySample
ActivitySample::fromRun(const System &sys, const RunResult &r)
{
    const Processor &cpu = sys.processor;
    const auto &cs = cpu.stats;
    double cycles = std::max<double>(1.0, double(r.cycles));

    ActivitySample a;
    a.issueRate = double(r.instrs) / cycles;
    a.ifu = double(cs.get("icache_accesses")) / cycles;
    a.decode = double(r.ops) / cycles;
    a.regfile = (double(cs.get("regfile_reads")) +
                 2.0 * double(cs.get("regfile_writes"))) /
                cycles;
    double fu_ops = 0;
    for (const char *k :
         {"fu_alu", "fu_shifter", "fu_mul", "fu_dspalu", "fu_dspmul",
          "fu_falu", "fu_fcomp", "fu_ftough", "fu_const", "fu_supermix",
          "fu_cabac"}) {
        fu_ops += double(cs.get(k));
    }
    // Multiplies and two-slot units switch more logic.
    fu_ops += 1.5 * double(cs.get("fu_mul") + cs.get("fu_dspmul") +
                           cs.get("fu_supermix") + cs.get("fu_cabac"));
    a.execute = fu_ops / cycles;

    const auto &ls = const_cast<Processor &>(cpu).lsu().stats;
    a.ls = (double(ls.get("loads")) + double(ls.get("stores"))) / cycles;

    const auto &biu = const_cast<Processor &>(cpu).biu().stats;
    a.biu = (double(biu.get("demand_reads")) + double(biu.get("writes")) +
             double(biu.get("prefetch_reads"))) /
            cycles;
    a.mmio = 1.0; // always-clocked peripheral block

    a.opi = r.opi();
    a.cpi = r.cpi();
    return a;
}

double
PowerModel::activityOf(Module m, const ActivitySample &act)
{
    switch (m) {
      case Module::IFU: return act.ifu;
      case Module::Decode: return act.decode;
      case Module::Regfile: return act.regfile;
      case Module::Execute: return act.execute;
      case Module::LS: return act.ls;
      case Module::BIU: return act.biu;
      case Module::MMIO: return act.mmio;
      default: panic("bad module");
    }
}

PowerModel::PowerModel()
{
    // Reference activities of the MP3 decoder proxy (OPI 4.5, CPI 1.0)
    // used as default calibration; bench_table4_area_power
    // re-calibrates against the measured proxy run.
    ActivitySample mp3;
    mp3.issueRate = 1.0;
    mp3.ifu = 0.8;
    mp3.decode = 4.5;
    mp3.regfile = 12.0;
    mp3.execute = 4.0;
    mp3.ls = 1.2;
    mp3.biu = 0.005;
    mp3.mmio = 1.0;
    calibrate(mp3);
}

void
PowerModel::calibrate(const ActivitySample &mp3, double g_frac)
{
    for (unsigned i = 0; i < numModules; ++i) {
        auto m = static_cast<Module>(i);
        double target = moduleTable[i].paperMwPerMhz;
        double rate = (m == Module::BIU || m == Module::MMIO)
                          ? 1.0
                          : mp3.issueRate;
        double activity = activityOf(m, mp3);
        g[i] = g_frac * target / std::max(rate, 1e-9);
        a[i] = activity > 1e-9 ? (1.0 - g_frac) * target / activity : 0.0;
    }
}

double
PowerModel::moduleMwPerMhz(Module m, const ActivitySample &act,
                           double voltage) const
{
    unsigned i = static_cast<unsigned>(m);
    double rate = (m == Module::BIU || m == Module::MMIO)
                      ? 1.0
                      : act.issueRate;
    double p = g[i] * rate + a[i] * activityOf(m, act);
    double vs = (voltage / 1.2) * (voltage / 1.2);
    return p * vs;
}

double
PowerModel::totalMwPerMhz(const ActivitySample &act, double voltage) const
{
    double t = 0;
    for (unsigned i = 0; i < numModules; ++i)
        t += moduleMwPerMhz(static_cast<Module>(i), act, voltage);
    return t;
}

} // namespace tm3270
