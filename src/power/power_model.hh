/**
 * @file
 * Area and power model (paper §5, Table 4).
 *
 * The paper reports per-module area (mm² in 90 nm) and per-module
 * power in mW/MHz at 1.2 V measured with gate-level simulation of an
 * MP3 decoder (OPI ≈ 4.5, CPI ≈ 1.0). It further reports that power
 * tracks OPI and CPI rather than the specific application (heavily
 * clock-gated design: ~70 functional clock domains; stalled cycles are
 * gated) and scales with CV²f.
 *
 * Our substitution for the gate-level flow is an activity-based
 * analytic model: each module's power is
 *
 *     P_m [mW/MHz] = (V / 1.2V)^2 * (G_m * issue_rate + A_m * act_m)
 *
 * where act_m is the module's architectural activity per cycle
 * (measured by the simulator), issue_rate = instrs/cycles models the
 * gated clock (a stalled processor clocks almost nothing), G_m is the
 * residual clock power of the enabled domains and A_m the per-event
 * switching energy. The BIU is in its own clock domain and keyed to
 * bus activity instead.
 *
 * The A/G coefficients are calibrated once against Table 4 using the
 * MP3 decoder proxy workload (bench_table4_area_power); applied to
 * other workloads the model then reproduces the paper's claimed
 * OPI/CPI dependence.
 */

#ifndef TM3270_POWER_POWER_MODEL_HH
#define TM3270_POWER_POWER_MODEL_HH

#include <array>
#include <string>

#include "core/processor.hh"
#include "core/system.hh"

namespace tm3270
{

/** The floorplan modules of paper Fig. 6 / Table 4. */
enum class Module : unsigned
{
    IFU,
    Decode,
    Regfile,
    Execute,
    LS,
    BIU,
    MMIO,
    NumModules
};

inline constexpr unsigned numModules =
    static_cast<unsigned>(Module::NumModules);

const char *moduleName(Module m);

/** Module areas in mm² (90 nm, Table 4). */
double moduleAreaMm2(Module m);

/** Total processor area (8.08 mm²). */
double totalAreaMm2();

/** Paper Table 4 power reference values (mW/MHz at 1.2 V). */
double paperPowerMwPerMhz(Module m);

/** Architectural activity per cycle, extracted from a finished run. */
struct ActivitySample
{
    double issueRate = 0;   ///< instrs / cycles (1 - stall fraction)
    double ifu = 0;         ///< fetch chunk accesses / cycle
    double decode = 0;      ///< operations decoded / cycle
    double regfile = 0;     ///< register file port events / cycle
    double execute = 0;     ///< FU activations / cycle (weighted)
    double ls = 0;          ///< data cache accesses / cycle
    double biu = 0;         ///< bus transactions / cycle
    double mmio = 0;        ///< MMIO accesses / cycle (+idle clock)

    double opi = 0;
    double cpi = 0;

    /** Extract activities from a system after a run. */
    static ActivitySample fromRun(const System &sys, const RunResult &r);
};

/** Calibratable per-module power model. */
class PowerModel
{
  public:
    /** Default coefficients (pre-calibrated to the MP3 proxy). */
    PowerModel();

    /**
     * Re-calibrate so that @p mp3 reproduces Table 4 exactly. The
     * gated-residual fraction @p g_frac of each module's Table 4
     * budget is assigned to G_m, the rest to A_m.
     */
    void calibrate(const ActivitySample &mp3, double g_frac = 0.3);

    /** Module power in mW/MHz at supply @p voltage for @p act. */
    double moduleMwPerMhz(Module m, const ActivitySample &act,
                          double voltage = 1.2) const;

    /** Total mW/MHz at @p voltage. */
    double totalMwPerMhz(const ActivitySample &act,
                         double voltage = 1.2) const;

    /** Power in mW at @p freq_mhz and @p voltage. */
    double
    powerMw(const ActivitySample &act, double freq_mhz,
            double voltage = 1.2) const
    {
        return totalMwPerMhz(act, voltage) * freq_mhz;
    }

  private:
    std::array<double, numModules> g{}; ///< residual clock, mW/MHz
    std::array<double, numModules> a{}; ///< per-activity, mW/MHz

    static double activityOf(Module m, const ActivitySample &act);
};

} // namespace tm3270

#endif // TM3270_POWER_POWER_MODEL_HH
