#include "cache/cache.hh"

#include <algorithm>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace tm3270
{

Cache::Cache(CacheGeometry g)
    : stats(g.name), geom(std::move(g))
{
    tm_assert(isPow2(geom.lineBytes) && isPow2(geom.assoc) &&
                  isPow2(geom.sizeBytes),
              "cache geometry must be powers of two");
    numSets = geom.numSets();
    tm_assert(numSets > 0 && isPow2(numSets), "bad number of sets");
    setShift = log2i(geom.lineBytes);
    lines.resize(size_t(numSets) * geom.assoc);
    if (geom.hasData) {
        for (auto &l : lines) {
            l.data.resize(geom.lineBytes);
            l.vmask.resize(geom.lineBytes, false);
        }
    }
}

unsigned
Cache::setOf(Addr line_addr) const
{
    return (line_addr >> setShift) & (numSets - 1);
}

Cache::Line &
Cache::lineAt(Addr line_addr, int way)
{
    return lines[size_t(setOf(line_addr)) * geom.assoc + unsigned(way)];
}

const Cache::Line &
Cache::lineAt(Addr line_addr, int way) const
{
    return lines[size_t(setOf(line_addr)) * geom.assoc + unsigned(way)];
}

int
Cache::probe(Addr line_addr) const
{
    unsigned set = setOf(line_addr);
    for (unsigned w = 0; w < geom.assoc; ++w) {
        const Line &l = lines[size_t(set) * geom.assoc + w];
        if (l.valid && l.lineAddr == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

void
Cache::touch(Addr line_addr, int way)
{
    lineAt(line_addr, way).lastUse = ++useTick;
}

bool
Cache::bytesValid(Addr line_addr, int way, unsigned offset,
                  unsigned len) const
{
    const Line &l = lineAt(line_addr, way);
    if (!geom.hasData)
        return true;
    for (unsigned i = 0; i < len; ++i) {
        if (!l.vmask[offset + i])
            return false;
    }
    return true;
}

void
Cache::readBytes(Addr line_addr, int way, unsigned offset, unsigned len,
                 uint8_t *out) const
{
    const Line &l = lineAt(line_addr, way);
    tm_assert(geom.hasData, "readBytes on tag-only cache");
    tm_assert(offset + len <= geom.lineBytes, "line read overflow");
    std::copy_n(l.data.begin() + offset, len, out);
}

void
Cache::writeBytes(Addr line_addr, int way, unsigned offset, unsigned len,
                  const uint8_t *data)
{
    Line &l = lineAt(line_addr, way);
    tm_assert(geom.hasData, "writeBytes on tag-only cache");
    tm_assert(offset + len <= geom.lineBytes, "line write overflow");
    std::copy_n(data, len, l.data.begin() + offset);
    std::fill_n(l.vmask.begin() + offset, len, true);
    l.dirty = true;
}

Victim
Cache::allocate(Addr line_addr, int &way_out)
{
    tm_assert(probe(line_addr) < 0, "allocating a resident line");
    unsigned set = setOf(line_addr);

    // Prefer an invalid way; otherwise evict LRU.
    int victim_way = -1;
    uint64_t best = ~0ULL;
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line &l = lines[size_t(set) * geom.assoc + w];
        if (!l.valid) {
            victim_way = static_cast<int>(w);
            best = 0;
            break;
        }
        if (l.lastUse < best) {
            best = l.lastUse;
            victim_way = static_cast<int>(w);
        }
    }

    Line &l = lines[size_t(set) * geom.assoc + unsigned(victim_way)];
    Victim v;
    if (l.valid) {
        v.valid = true;
        v.dirty = l.dirty;
        v.lineAddr = l.lineAddr;
        if (geom.hasData && l.dirty) {
            v.data = l.data;
            v.vmask = l.vmask;
            v.validBytes = static_cast<unsigned>(
                std::count(l.vmask.begin(), l.vmask.end(), true));
        }
        hEvictions.inc();
        if (l.dirty)
            hCopybacks.inc();
    }

    l.valid = true;
    l.dirty = false;
    l.lineAddr = line_addr;
    l.lastUse = ++useTick;
    if (geom.hasData)
        std::fill(l.vmask.begin(), l.vmask.end(), false);
    hAllocations.inc();
    way_out = victim_way;
    return v;
}

void
Cache::fillFromMemory(const MainMemory &mem, Addr line_addr, int way)
{
    Line &l = lineAt(line_addr, way);
    tm_assert(geom.hasData, "fillFromMemory on tag-only cache");
    std::vector<uint8_t> buf(geom.lineBytes);
    mem.read(line_addr, buf.data(), geom.lineBytes);
    for (unsigned i = 0; i < geom.lineBytes; ++i) {
        if (!l.vmask[i]) {
            l.data[i] = buf[i];
            l.vmask[i] = true;
        }
    }
    hRefills.inc();
}

void
Cache::markAllValid(Addr line_addr, int way)
{
    Line &l = lineAt(line_addr, way);
    if (geom.hasData)
        std::fill(l.vmask.begin(), l.vmask.end(), true);
}

bool
Cache::isDirty(Addr line_addr, int way) const
{
    return lineAt(line_addr, way).dirty;
}

void
Cache::flush(MainMemory &mem)
{
    for (auto &l : lines) {
        if (l.valid && l.dirty && geom.hasData) {
            for (unsigned i = 0; i < geom.lineBytes; ++i) {
                if (l.vmask[i])
                    mem.setByte(l.lineAddr + i, l.data[i]);
            }
        }
        l.valid = false;
        l.dirty = false;
    }
}

void
Cache::invalidateAll()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
    }
}

} // namespace tm3270
