#include "cache/cache.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace tm3270
{

Cache::Cache(CacheGeometry g)
    : stats(g.name), geom(std::move(g))
{
    tm_assert(isPow2(geom.lineBytes) && isPow2(geom.assoc) &&
                  isPow2(geom.sizeBytes),
              "cache geometry must be powers of two");
    numSets = geom.numSets();
    tm_assert(numSets > 0 && isPow2(numSets), "bad number of sets");
    setShift = log2i(geom.lineBytes);
    lines.resize(size_t(numSets) * geom.assoc);
    if (geom.hasData) {
        maskWords = (geom.lineBytes + 63) / 64;
        unsigned rem = geom.lineBytes % 64;
        tailMask = rem ? (uint64_t(1) << rem) - 1 : ~uint64_t(0);
        dataArena.resize(lines.size() * geom.lineBytes);
        maskArena.resize(lines.size() * maskWords, 0);
    }
}

void
Cache::allocate(Addr line_addr, int &way_out, Victim &v)
{
    tm_assert(probe(line_addr) < 0, "allocating a resident line");
    unsigned set = setOf(line_addr);

    // Prefer an invalid way; otherwise evict LRU.
    int victim_way = -1;
    uint64_t best = ~0ULL;
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line &l = lines[size_t(set) * geom.assoc + w];
        if (!l.valid) {
            victim_way = static_cast<int>(w);
            best = 0;
            break;
        }
        if (l.lastUse < best) {
            best = l.lastUse;
            victim_way = static_cast<int>(w);
        }
    }

    size_t idx = size_t(set) * geom.assoc + unsigned(victim_way);
    Line &l = lines[idx];
    v.valid = l.valid;
    v.dirty = false;
    v.lineAddr = 0;
    v.validBytes = 0;
    if (l.valid) {
        v.dirty = l.dirty;
        v.lineAddr = l.lineAddr;
        if (geom.hasData && l.dirty) {
            // Only a dirty victim needs its image for the copy-back;
            // clean evictions copy nothing.
            v.data.resize(geom.lineBytes);
            v.vmask.resize(maskWords);
            std::memcpy(v.data.data(), lineData(idx), geom.lineBytes);
            std::memcpy(v.vmask.data(), lineMask(idx),
                        size_t(maskWords) * sizeof(uint64_t));
            v.validBytes = l.validBytes;
        }
        hEvictions.inc();
        if (l.dirty)
            hCopybacks.inc();
    }

    l.valid = true;
    l.dirty = false;
    l.lineAddr = line_addr;
    l.lastUse = ++useTick;
    l.validBytes = 0;
    if (geom.hasData) {
        std::memset(lineMask(idx), 0,
                    size_t(maskWords) * sizeof(uint64_t));
    }
    hAllocations.inc();
    way_out = victim_way;
}

void
Cache::fillFromMemory(const MainMemory &mem, Addr line_addr, int way)
{
    tm_assert(geom.hasData, "fillFromMemory on tag-only cache");
    size_t idx = lineIndex(line_addr, way);
    Line &l = lines[idx];
    if (l.validBytes != geom.lineBytes) {
        uint8_t *d = lineData(idx);
        uint64_t *vm = lineMask(idx);
        for (unsigned w = 0; w < maskWords; ++w) {
            uint64_t full = fullWord(w);
            uint64_t have = vm[w];
            if ((have & full) == full)
                continue;
            unsigned base = w * 64;
            unsigned n = std::min(64u, geom.lineBytes - base);
            if (have == 0) {
                mem.read(line_addr + base, d + base, n);
            } else {
                uint8_t buf[64];
                mem.read(line_addr + base, buf, n);
                uint64_t missing = full & ~have;
                while (missing) {
                    unsigned i = unsigned(std::countr_zero(missing));
                    d[base + i] = buf[i];
                    missing &= missing - 1;
                }
            }
            vm[w] = full;
        }
        l.validBytes = geom.lineBytes;
    }
    hRefills.inc();
}

void
Cache::markAllValid(Addr line_addr, int way)
{
    if (!geom.hasData)
        return;
    size_t idx = lineIndex(line_addr, way);
    uint64_t *vm = lineMask(idx);
    for (unsigned w = 0; w < maskWords; ++w)
        vm[w] = fullWord(w);
    lines[idx].validBytes = geom.lineBytes;
}

void
Cache::flush(MainMemory &mem)
{
    for (size_t i = 0; i < lines.size(); ++i) {
        Line &l = lines[i];
        if (l.valid && l.dirty && geom.hasData) {
            mem.writeMasked(l.lineAddr, lineData(i), geom.lineBytes,
                            lineMask(i));
        }
        l.valid = false;
        l.dirty = false;
    }
}

void
Cache::invalidateAll()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
    }
}

} // namespace tm3270
