/**
 * @file
 * Set-associative cache core used for both the 128 KByte data cache
 * and the 64 KByte instruction cache (paper Table 1 / §4.1).
 *
 * Features modeled after the paper:
 *  - LRU replacement;
 *  - copy-back write policy;
 *  - byte-validity: a per-line bit mask tracks which bytes are valid,
 *    enabling the allocate-on-write-miss policy (a line is allocated
 *    on a write miss without fetching it; only validated bytes are
 *    copied back on eviction);
 *  - refill-merge: a refill only overwrites the *invalid* bytes of an
 *    allocated line, preserving newer store data.
 *
 * The cache stores real data (it is the point of coherency while a
 * line is dirty); the instruction cache runs in tag-only mode.
 *
 * Host data layout (DESIGN.md §8): line data lives in one contiguous
 * set-major arena indexed by set*assoc+way, and the byte-validity
 * masks are packed 64-bits-per-word in a parallel arena, so validity
 * queries, store merges, refills and copy-backs are word-wise mask
 * operations over at most lineBytes/64 words instead of per-byte
 * loops. A per-line valid-byte count makes the fully-valid common
 * case O(1). None of this changes any architectural count.
 */

#ifndef TM3270_CACHE_CACHE_HH
#define TM3270_CACHE_CACHE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "memory/main_memory.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270
{

/** Geometry and policy parameters of one cache. */
struct CacheGeometry
{
    std::string name = "cache";
    uint32_t sizeBytes = 128 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 128;
    bool hasData = true; ///< false: tag-only model (instruction cache)

    unsigned numSets() const { return sizeBytes / (assoc * lineBytes); }
};

/**
 * Information about an evicted line, for the copy-back unit.
 *
 * Designed for reuse: Cache::allocate() fills a caller-owned Victim
 * in place, so the steady state allocates nothing. The data image and
 * packed validity mask are only copied for *dirty* victims (a clean
 * eviction needs no copy-back, so the buffers keep their stale
 * previous contents and must not be read — check dirty first).
 */
struct Victim
{
    bool valid = false;        ///< a line was evicted
    bool dirty = false;        ///< it needs a copy-back
    Addr lineAddr = 0;
    unsigned validBytes = 0;   ///< number of validated bytes (dirty only)
    std::vector<uint8_t> data;   ///< line image (dirty victims only)
    std::vector<uint64_t> vmask; ///< packed validity (bit i = byte i)

    /** Validity of byte @p i of a dirty victim's line. */
    bool
    maskBit(unsigned i) const
    {
        return (vmask[i >> 6] >> (i & 63)) & 1;
    }
};

/** Set-associative cache with byte validity and LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheGeometry geom);

    const CacheGeometry &geometry() const { return geom; }
    unsigned lineBytes() const { return geom.lineBytes; }

    /** 64-bit words per packed per-line validity mask (data mode). */
    unsigned maskWordsPerLine() const { return maskWords; }

    /** Line-aligned address containing @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr & ~(Addr(geom.lineBytes) - 1); }

    /**
     * Tag lookup. Returns the way holding @p line_addr or -1.
     * Does not update LRU state. Inline: this and the other per-access
     * queries below sit on the per-instruction hot path of the LSU and
     * front end, so they must fold into their callers.
     */
    int
    probe(Addr line_addr) const
    {
        unsigned set = setOf(line_addr);
        for (unsigned w = 0; w < geom.assoc; ++w) {
            const Line &l = lines[size_t(set) * geom.assoc + w];
            if (l.valid && l.lineAddr == line_addr)
                return static_cast<int>(w);
        }
        return -1;
    }

    /** Mark @p way of the set of @p line_addr as most recently used. */
    void
    touch(Addr line_addr, int way)
    {
        lines[lineIndex(line_addr, way)].lastUse = ++useTick;
    }

    /** True when bytes [offset, offset+len) of the line are valid. */
    bool
    bytesValid(Addr line_addr, int way, unsigned offset,
               unsigned len) const
    {
        if (!geom.hasData)
            return true;
        size_t idx = lineIndex(line_addr, way);
        const Line &l = lines[idx];
        if (l.validBytes == geom.lineBytes)
            return true; // fully valid line: the common case after refill
        if (len == 0)
            return true;
        const uint64_t *vm = lineMask(idx);
        unsigned w0 = offset >> 6;
        unsigned w1 = (offset + len - 1) >> 6;
        if (w0 == w1) {
            uint64_t need = rangeMask(offset & 63, len);
            return (vm[w0] & need) == need;
        }
        uint64_t first = rangeMask(offset & 63, 64 - (offset & 63));
        if ((vm[w0] & first) != first)
            return false;
        for (unsigned w = w0 + 1; w < w1; ++w) {
            if (~vm[w])
                return false;
        }
        unsigned lastLen = ((offset + len - 1) & 63) + 1;
        uint64_t last = rangeMask(0, lastLen);
        return (vm[w1] & last) == last;
    }

    /** Read bytes from a resident line (data mode only). */
    void
    readBytes(Addr line_addr, int way, unsigned offset, unsigned len,
              uint8_t *out) const
    {
        tm_assert(geom.hasData, "readBytes on tag-only cache");
        tm_assert(offset + len <= geom.lineBytes, "line read overflow");
        std::memcpy(out, lineData(lineIndex(line_addr, way)) + offset,
                    len);
    }

    /**
     * Write bytes into a resident line; marks them valid and the line
     * dirty (copy-back policy).
     */
    void
    writeBytes(Addr line_addr, int way, unsigned offset, unsigned len,
               const uint8_t *data)
    {
        tm_assert(geom.hasData, "writeBytes on tag-only cache");
        tm_assert(offset + len <= geom.lineBytes, "line write overflow");
        size_t idx = lineIndex(line_addr, way);
        Line &l = lines[idx];
        std::memcpy(lineData(idx) + offset, data, len);
        if (len > 0 && l.validBytes != geom.lineBytes) {
            uint64_t *vm = lineMask(idx);
            unsigned added = 0;
            unsigned w = offset >> 6;
            unsigned bit = offset & 63;
            for (unsigned left = len; left > 0; ++w, bit = 0) {
                unsigned n = std::min(left, 64 - bit);
                uint64_t m = rangeMask(bit, n);
                added += unsigned(std::popcount(m & ~vm[w]));
                vm[w] |= m;
                left -= n;
            }
            l.validBytes += added;
        }
        l.dirty = true;
    }

    /**
     * Allocate a line for @p line_addr (all bytes invalid), evicting
     * the LRU way if necessary. Fills the caller-owned @p victim in
     * place (for copy-back; reuse one buffer across calls to stay
     * allocation-free) and returns the allocated way through
     * @p way_out. Clean victims copy no data at all.
     */
    void allocate(Addr line_addr, int &way_out, Victim &victim);

    /** Convenience wrapper returning a fresh Victim (cold paths). */
    Victim
    allocate(Addr line_addr, int &way_out)
    {
        Victim v;
        allocate(line_addr, way_out, v);
        return v;
    }

    /**
     * Refill-merge: copy the memory image of the line into all bytes
     * that are not yet valid, then mark the whole line valid.
     */
    void fillFromMemory(const MainMemory &mem, Addr line_addr, int way);

    /** Mark all bytes of a resident line valid without data (tag-only). */
    void markAllValid(Addr line_addr, int way);

    /** Line dirty? */
    bool
    isDirty(Addr line_addr, int way) const
    {
        return lines[lineIndex(line_addr, way)].dirty;
    }

    /**
     * Write every dirty line's valid bytes back to memory and
     * invalidate the whole cache. Functional (no timing); used at end
     * of run so host code can inspect memory.
     */
    void flush(MainMemory &mem);

    /** Invalidate everything without copy-back. */
    void invalidateAll();

    StatGroup stats;

  private:
    /** Per-line metadata; data and validity live in the arenas. */
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        uint64_t lastUse = 0;
        uint32_t validBytes = 0; ///< popcount of the line's mask words
    };

    CacheGeometry geom;
    unsigned setShift;
    unsigned numSets;
    unsigned maskWords = 0; ///< 64-bit mask words per line (data mode)
    uint64_t tailMask = 0;  ///< valid bits of the last mask word
    std::vector<Line> lines;          ///< set-major: [set * assoc + way]
    std::vector<uint8_t> dataArena;   ///< numLines * lineBytes, set-major
    std::vector<uint64_t> maskArena;  ///< numLines * maskWords, set-major
    uint64_t useTick = 0;

    // Interned counters for the per-access hot path.
    StatHandle hEvictions = stats.handle("evictions");
    StatHandle hCopybacks = stats.handle("copybacks");
    StatHandle hAllocations = stats.handle("allocations");
    StatHandle hRefills = stats.handle("refills");

    /** Bit mask covering bits [offset, offset+len) of one 64-bit word
     *  (offset < 64, len <= 64 - offset). */
    static uint64_t
    rangeMask(unsigned offset, unsigned len)
    {
        uint64_t m = len >= 64 ? ~uint64_t(0) : (uint64_t(1) << len) - 1;
        return m << offset;
    }

    unsigned
    setOf(Addr line_addr) const
    {
        return (line_addr >> setShift) & (numSets - 1);
    }
    size_t
    lineIndex(Addr line_addr, int way) const
    {
        return size_t(setOf(line_addr)) * geom.assoc + unsigned(way);
    }
    uint8_t *lineData(size_t idx) { return &dataArena[idx * geom.lineBytes]; }
    const uint8_t *lineData(size_t idx) const
    {
        return &dataArena[idx * geom.lineBytes];
    }
    uint64_t *lineMask(size_t idx) { return &maskArena[idx * maskWords]; }
    const uint64_t *lineMask(size_t idx) const
    {
        return &maskArena[idx * maskWords];
    }
    /** All-valid image of mask word @p w (tailMask on the last word). */
    uint64_t
    fullWord(unsigned w) const
    {
        return w + 1 == maskWords ? tailMask : ~uint64_t(0);
    }
};

} // namespace tm3270

#endif // TM3270_CACHE_CACHE_HH
