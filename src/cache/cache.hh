/**
 * @file
 * Set-associative cache core used for both the 128 KByte data cache
 * and the 64 KByte instruction cache (paper Table 1 / §4.1).
 *
 * Features modeled after the paper:
 *  - LRU replacement;
 *  - copy-back write policy;
 *  - byte-validity: a per-line bit mask tracks which bytes are valid,
 *    enabling the allocate-on-write-miss policy (a line is allocated
 *    on a write miss without fetching it; only validated bytes are
 *    copied back on eviction);
 *  - refill-merge: a refill only overwrites the *invalid* bytes of an
 *    allocated line, preserving newer store data.
 *
 * The cache stores real data (it is the point of coherency while a
 * line is dirty); the instruction cache runs in tag-only mode.
 */

#ifndef TM3270_CACHE_CACHE_HH
#define TM3270_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memory/main_memory.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270
{

/** Geometry and policy parameters of one cache. */
struct CacheGeometry
{
    std::string name = "cache";
    uint32_t sizeBytes = 128 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 128;
    bool hasData = true; ///< false: tag-only model (instruction cache)

    unsigned numSets() const { return sizeBytes / (assoc * lineBytes); }
};

/** Information about an evicted line, for the copy-back unit. */
struct Victim
{
    bool valid = false;        ///< a line was evicted
    bool dirty = false;        ///< it needs a copy-back
    Addr lineAddr = 0;
    unsigned validBytes = 0;   ///< number of validated bytes
    std::vector<uint8_t> data;
    std::vector<bool> vmask;
};

/** Set-associative cache with byte validity and LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheGeometry geom);

    const CacheGeometry &geometry() const { return geom; }
    unsigned lineBytes() const { return geom.lineBytes; }

    /** Line-aligned address containing @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr & ~(Addr(geom.lineBytes) - 1); }

    /**
     * Tag lookup. Returns the way holding @p line_addr or -1.
     * Does not update LRU state.
     */
    int probe(Addr line_addr) const;

    /** Mark @p way of the set of @p line_addr as most recently used. */
    void touch(Addr line_addr, int way);

    /** True when bytes [offset, offset+len) of the line are valid. */
    bool bytesValid(Addr line_addr, int way, unsigned offset,
                    unsigned len) const;

    /** Read bytes from a resident line (data mode only). */
    void readBytes(Addr line_addr, int way, unsigned offset, unsigned len,
                   uint8_t *out) const;

    /**
     * Write bytes into a resident line; marks them valid and the line
     * dirty (copy-back policy).
     */
    void writeBytes(Addr line_addr, int way, unsigned offset, unsigned len,
                    const uint8_t *data);

    /**
     * Allocate a line for @p line_addr (all bytes invalid), evicting
     * the LRU way if necessary. Returns the victim (for copy-back)
     * and the allocated way through @p way_out.
     */
    Victim allocate(Addr line_addr, int &way_out);

    /**
     * Refill-merge: copy the memory image of the line into all bytes
     * that are not yet valid, then mark the whole line valid.
     */
    void fillFromMemory(const MainMemory &mem, Addr line_addr, int way);

    /** Mark all bytes of a resident line valid without data (tag-only). */
    void markAllValid(Addr line_addr, int way);

    /** Line dirty? */
    bool isDirty(Addr line_addr, int way) const;

    /**
     * Write every dirty line's valid bytes back to memory and
     * invalidate the whole cache. Functional (no timing); used at end
     * of run so host code can inspect memory.
     */
    void flush(MainMemory &mem);

    /** Invalidate everything without copy-back. */
    void invalidateAll();

    StatGroup stats;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        uint64_t lastUse = 0;
        std::vector<uint8_t> data;
        std::vector<bool> vmask;
    };

    CacheGeometry geom;
    unsigned setShift;
    unsigned numSets;
    std::vector<Line> lines; ///< set-major: lines[set * assoc + way]
    uint64_t useTick = 0;

    // Interned counters for the per-access hot path.
    StatHandle hEvictions = stats.handle("evictions");
    StatHandle hCopybacks = stats.handle("copybacks");
    StatHandle hAllocations = stats.handle("allocations");
    StatHandle hRefills = stats.handle("refills");

    unsigned setOf(Addr line_addr) const;
    Line &lineAt(Addr line_addr, int way);
    const Line &lineAt(Addr line_addr, int way) const;
};

} // namespace tm3270

#endif // TM3270_CACHE_CACHE_HH
