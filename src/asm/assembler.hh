/**
 * @file
 * Textual TriMedia-style assembler and disassembler.
 *
 * Syntax (one VLIW instruction per line, operations separated by '|'):
 *
 *     ; comment
 *     loop:
 *         iadd r2 r3 -> r4 | ld32d r6 #8 -> r7
 *         if r5 jmpt @loop
 *         st32d r3 #4 -> r2          ; mem[r3 + 4] = r2
 *         super_dualimix r2 r3 r4 r5 -> r6 r7
 *         halt r0
 *
 * An optional "[s]" prefix pins an operation to issue slot s;
 * otherwise slots are assigned first-fit (loads to slot 5, the TM3270
 * rule). Stores name the value register after "->" (mirroring the
 * disassembler). Branch targets are "@label" or a literal "#index"
 * (instruction index).
 */

#ifndef TM3270_ASM_ASSEMBLER_HH
#define TM3270_ASM_ASSEMBLER_HH

#include <string>
#include <vector>

#include "encode/encoder.hh"
#include "isa/operation.hh"

namespace tm3270
{

/** Result of assembling a source text. */
struct AsmProgram
{
    std::vector<VliwInst> insts;
    std::vector<bool> jumpTargets;

    /** Encode into a binary image. */
    EncodedProgram encode() const { return encodeProgram(insts, jumpTargets); }
};

/** Assemble @p source. Throws FatalError with a line diagnostic. */
AsmProgram assemble(const std::string &source);

/** Disassemble instructions (branch immediates = instruction indices). */
std::string disassemble(const std::vector<VliwInst> &insts,
                        const std::vector<bool> &jump_targets);

/** Disassemble an encoded program (translating byte offsets back). */
std::string disassemble(const EncodedProgram &prog);

} // namespace tm3270

#endif // TM3270_ASM_ASSEMBLER_HH
