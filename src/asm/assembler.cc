#include "asm/assembler.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace tm3270
{

namespace
{

/** Whitespace-and-token scanner for one line. */
struct LineLexer
{
    std::string line;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < line.size() && std::isspace(uint8_t(line[pos])))
            ++pos;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos >= line.size();
    }

    char
    peek()
    {
        skipWs();
        return pos < line.size() ? line[pos] : '\0';
    }

    /** Next token: an identifier, number, or single punctuation. */
    std::string
    next()
    {
        skipWs();
        if (pos >= line.size())
            return "";
        char c = line[pos];
        if (std::isalnum(uint8_t(c)) || c == '_' || c == '-') {
            size_t start = pos;
            while (pos < line.size() &&
                   (std::isalnum(uint8_t(line[pos])) || line[pos] == '_' ||
                    line[pos] == '-')) {
                ++pos;
            }
            return line.substr(start, pos - start);
        }
        ++pos;
        if (c == '-' && pos < line.size() &&
            std::isdigit(uint8_t(line[pos]))) {
            size_t start = pos;
            while (pos < line.size() && std::isdigit(uint8_t(line[pos])))
                ++pos;
            return "-" + line.substr(start, pos - start);
        }
        return std::string(1, c);
    }
};

RegIndex
parseReg(const std::string &tok, int line_no)
{
    if (tok.size() < 2 || tok[0] != 'r')
        fatal("line %d: expected register, got '%s'", line_no,
              tok.c_str());
    int v = std::atoi(tok.c_str() + 1);
    if (v < 0 || v >= int(numRegs))
        fatal("line %d: bad register '%s'", line_no, tok.c_str());
    return static_cast<RegIndex>(v);
}

int32_t
parseInt(const std::string &tok, int line_no)
{
    try {
        size_t idx = 0;
        long v = std::stol(tok, &idx, 0);
        if (idx != tok.size())
            throw std::invalid_argument(tok);
        return static_cast<int32_t>(v);
    } catch (const std::exception &) {
        fatal("line %d: bad integer '%s'", line_no, tok.c_str());
    }
}

struct ParsedOp
{
    Operation op;
    int slot = -1;          ///< explicit slot (0-based) or -1
    std::string pendingLabel; ///< branch label to resolve
};

ParsedOp
parseOp(LineLexer &lx, int line_no)
{
    ParsedOp p;
    // Optional "[s]" slot pin.
    if (lx.peek() == '[') {
        lx.next();
        p.slot = parseInt(lx.next(), line_no) - 1;
        if (p.slot < 0 || p.slot >= int(numSlots))
            fatal("line %d: bad slot", line_no);
        if (lx.next() != "]")
            fatal("line %d: expected ']'", line_no);
    }
    std::string tok = lx.next();
    // Optional "if rN" guard.
    if (tok == "if") {
        p.op.guard = parseReg(lx.next(), line_no);
        tok = lx.next();
    }
    Opcode opc = opFromName(tok);
    if (opc == Opcode::NUM_OPCODES)
        fatal("line %d: unknown operation '%s'", line_no, tok.c_str());
    p.op.opc = opc;
    const OpInfo &oi = opInfo(opc);

    // Sources at their positions.
    for (unsigned i = 0; i < 4; ++i) {
        if (oi.readsSrc(i) && !(oi.isStore && false)) {
            if (oi.isBranch && oi.imm == ImmKind::Imm16)
                break; // imm16 branches have no register sources
            p.op.src[i] = parseReg(lx.next(), line_no);
        }
    }
    // Immediate.
    if (oi.imm != ImmKind::None) {
        char c = lx.peek();
        if (c == '#') {
            lx.next();
            p.op.imm = parseInt(lx.next(), line_no);
        } else if (c == '@') {
            lx.next();
            p.pendingLabel = lx.next();
        } else {
            fatal("line %d: expected '#imm' or '@label' for %s", line_no,
                  tok.c_str());
        }
    }
    // Destinations.
    unsigned ndst = oi.isStore ? 1 : oi.numDst;
    if (ndst > 0) {
        if (lx.next() != "-" || lx.next() != ">")
            fatal("line %d: expected '->' before destinations", line_no);
        for (unsigned i = 0; i < ndst; ++i)
            p.op.dst[i] = parseReg(lx.next(), line_no);
    }
    return p;
}

/** Allowed slots under the assembler's (TM3270) placement rules. */
uint8_t
placementMask(const Operation &op)
{
    const OpInfo &oi = op.info();
    if (oi.isTwoSlot)
        return oi.slotMask;
    if (oi.isLoad)
        return oi.fu == FuClass::FracLoad ? oi.slotMask : slotBit(5);
    return oi.slotMask;
}

} // namespace

AsmProgram
assemble(const std::string &source)
{
    AsmProgram prog;
    std::map<std::string, int> labels;
    std::vector<std::pair<size_t, std::string>> fixups; // flat op, label
    std::istringstream in(source);
    std::string raw;
    int line_no = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments.
        size_t sc = raw.find(';');
        if (sc != std::string::npos)
            raw = raw.substr(0, sc);

        LineLexer lx{raw, 0};
        if (lx.atEnd())
            continue;

        // Labels: "name:" possibly followed by an instruction.
        for (;;) {
            size_t save = lx.pos;
            std::string tok = lx.next();
            if (!tok.empty() && lx.peek() == ':') {
                lx.next();
                if (labels.count(tok))
                    fatal("line %d: duplicate label '%s'", line_no,
                          tok.c_str());
                labels[tok] = static_cast<int>(prog.insts.size());
                continue;
            }
            lx.pos = save;
            break;
        }
        if (lx.atEnd())
            continue;

        VliwInst inst;
        bool slot_busy[numSlots] = {};
        for (;;) {
            ParsedOp p = parseOp(lx, line_no);
            const OpInfo &oi = p.op.info();
            int slot = p.slot;
            if (slot < 0) {
                uint8_t mask = placementMask(p.op);
                for (unsigned s = 0; s < numSlots; ++s) {
                    bool pair_ok = !oi.isTwoSlot ||
                                   (s + 1 < numSlots && !slot_busy[s + 1]);
                    if ((mask & slotBit(s + 1)) && !slot_busy[s] &&
                        pair_ok) {
                        slot = static_cast<int>(s);
                        break;
                    }
                }
                if (slot < 0)
                    fatal("line %d: no free issue slot for %s", line_no,
                          std::string(oi.mnemonic).c_str());
            }
            if (slot_busy[size_t(slot)])
                fatal("line %d: issue slot %d used twice", line_no,
                      slot + 1);
            slot_busy[size_t(slot)] = true;
            if (oi.isTwoSlot) {
                tm_assert(slot + 1 < int(numSlots), "two-slot in slot 5");
                if (slot_busy[size_t(slot) + 1])
                    fatal("line %d: companion slot %d busy", line_no,
                          slot + 2);
                slot_busy[size_t(slot) + 1] = true;
            }
            if (!p.pendingLabel.empty()) {
                fixups.emplace_back(
                    prog.insts.size() * numSlots + size_t(slot),
                    p.pendingLabel);
            }
            inst.slot[size_t(slot)] = p.op;
            if (lx.peek() == '|') {
                lx.next();
                continue;
            }
            if (!lx.atEnd())
                fatal("line %d: trailing junk '%s'", line_no,
                      raw.c_str() + lx.pos);
            break;
        }
        prog.insts.push_back(inst);
    }

    prog.jumpTargets.assign(prog.insts.size(), false);
    for (const auto &[flat, label] : fixups) {
        auto it = labels.find(label);
        if (it == labels.end())
            fatal("undefined label '%s'", label.c_str());
        if (it->second >= int(prog.insts.size()))
            fatal("label '%s' points past the end", label.c_str());
        prog.insts[flat / numSlots].slot[flat % numSlots].imm = it->second;
        prog.jumpTargets[size_t(it->second)] = true;
    }
    // Literal #index branch targets also mark jump targets.
    for (const auto &inst : prog.insts) {
        for (const auto &op : inst.slot) {
            if (op.used() && op.info().isBranch &&
                op.info().imm == ImmKind::Imm16) {
                if (op.imm >= 0 && size_t(op.imm) < prog.insts.size())
                    prog.jumpTargets[size_t(op.imm)] = true;
            }
        }
    }
    return prog;
}

std::string
disassemble(const std::vector<VliwInst> &insts,
            const std::vector<bool> &jump_targets)
{
    std::ostringstream os;
    // Name the labels.
    std::map<size_t, std::string> label_of;
    unsigned next_label = 0;
    for (size_t i = 0; i < insts.size(); ++i) {
        if (i < jump_targets.size() && jump_targets[i]) {
            // Build via += rather than `"L" + std::to_string(...)`:
            // the operator+ form trips GCC 12's spurious -Wrestrict
            // on the inlined string concatenation (GCC PR 105329).
            std::string label = "L";
            label += std::to_string(next_label++);
            label_of[i] = std::move(label);
        }
    }

    for (size_t i = 0; i < insts.size(); ++i) {
        if (auto it = label_of.find(i); it != label_of.end())
            os << it->second << ":\n";
        os << "    ";
        bool first = true;
        bool any = false;
        for (unsigned s = 0; s < numSlots; ++s) {
            const Operation &op = insts[i].slot[s];
            if (!op.used())
                continue;
            if (!first)
                os << " | ";
            first = false;
            any = true;
            os << '[' << (s + 1) << "] ";
            if (op.info().isBranch && op.info().imm == ImmKind::Imm16 &&
                label_of.count(size_t(op.imm))) {
                // Re-format with a label instead of the raw index.
                Operation tmp = op;
                std::string body = formatOperation(tmp);
                size_t hash = body.find('#');
                os << body.substr(0, hash) << '@'
                   << label_of[size_t(op.imm)];
            } else {
                os << formatOperation(op);
            }
        }
        if (!any)
            os << "nop";
        os << '\n';
    }
    return os.str();
}

std::string
disassemble(const EncodedProgram &prog)
{
    // Translate branch byte offsets back to instruction indices.
    std::vector<VliwInst> insts = prog.insts;
    std::vector<bool> targets(insts.size(), false);
    for (auto &inst : insts) {
        for (auto &op : inst.slot) {
            if (op.used() && op.info().isBranch &&
                op.info().imm == ImmKind::Imm16) {
                int idx = prog.indexAt(static_cast<uint32_t>(op.imm));
                tm_assert(idx >= 0, "branch to a non-instruction offset");
                op.imm = idx;
                targets[size_t(idx)] = true;
            }
        }
    }
    return disassemble(insts, targets);
}

} // namespace tm3270
