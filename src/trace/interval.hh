/**
 * @file
 * Interval metrics sampler (DESIGN.md §9): snapshots IPC, cache miss
 * rates and prefetch coverage every N simulated cycles into an
 * in-memory time series, serializable as CSV or JSON.
 *
 * The sampler is pulled by the core's run loop: the processor calls
 * maybeSample() once per issued instruction (guarded by the same
 * null-pointer check as the tracer, so a detached sampler costs one
 * never-taken branch), passing its live issue counters; cache and
 * prefetch counts are read through interned StatHandles bound once at
 * attach time. Rows store cumulative counts; the writers derive
 * per-interval rates, so both the instantaneous and the cumulative
 * view of a run can be reconstructed from one series.
 */

#ifndef TM3270_TRACE_INTERVAL_HH
#define TM3270_TRACE_INTERVAL_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270::trace
{

/** Interned counters the sampler reads each snapshot. The processor
 *  fills this from its own and its LSU's stat groups at attach time
 *  (the trace library stays independent of the core). */
struct SamplerSources
{
    StatHandle icacheAccesses;
    StatHandle icacheMisses;
    StatHandle loads;
    StatHandle loadLineMisses;
    StatHandle prefetchInstalled;
    StatHandle prefetchUseful;
};

/** One cumulative snapshot at the end of an interval. */
struct SampleRow
{
    Cycles cycle;
    uint64_t instrs;
    uint64_t ops;
    uint64_t stallCycles;
    uint64_t icacheAccesses;
    uint64_t icacheMisses;
    uint64_t loads;
    uint64_t loadLineMisses;
    uint64_t prefetchInstalled;
    uint64_t prefetchUseful;
};

class IntervalSampler
{
  public:
    /** Snapshot every @p period cycles (crossings of multiples of
     *  the period; the default keeps short kernels to tens of rows). */
    explicit IntervalSampler(Cycles period = 8192)
        : period_(period ? period : 1), nextAt(period_)
    {}

    /** Bind the stat counters to read. Call before the run starts
     *  (Processor::attachSampler does). */
    void bind(const SamplerSources &s) { src = s; }

    Cycles period() const { return period_; }
    const std::vector<SampleRow> &rows() const { return series; }

    /** Called per issued instruction by the core. Snapshots iff the
     *  cycle counter crossed an interval boundary since the last row. */
    void
    maybeSample(Cycles now, uint64_t instrs, uint64_t ops,
                Cycles stall_cycles)
    {
        if (now < nextAt)
            return;
        sample(now, instrs, ops, stall_cycles);
        nextAt = (now / period_ + 1) * period_;
    }

    /** Record the final partial interval of a run (no-op when the
     *  last row is already at @p now). */
    void
    finishRun(Cycles now, uint64_t instrs, uint64_t ops,
              Cycles stall_cycles)
    {
        if (!series.empty() && series.back().cycle == now)
            return;
        sample(now, instrs, ops, stall_cycles);
        nextAt = (now / period_ + 1) * period_;
    }

    /**
     * Write the series as CSV: cumulative columns plus per-interval
     * derived rates (ipc, stall fraction, miss rates, prefetch
     * coverage = useful prefetches / (useful + load line misses)).
     */
    void writeCsv(std::ostream &os) const;

    /** Write the series as a JSON array of row objects. */
    void writeJson(std::ostream &os) const;

  private:
    void
    sample(Cycles now, uint64_t instrs, uint64_t ops,
           Cycles stall_cycles)
    {
        SampleRow r;
        r.cycle = now;
        r.instrs = instrs;
        r.ops = ops;
        r.stallCycles = stall_cycles;
        r.icacheAccesses = get(src.icacheAccesses);
        r.icacheMisses = get(src.icacheMisses);
        r.loads = get(src.loads);
        r.loadLineMisses = get(src.loadLineMisses);
        r.prefetchInstalled = get(src.prefetchInstalled);
        r.prefetchUseful = get(src.prefetchUseful);
        series.push_back(r);
    }

    static uint64_t
    get(const StatHandle &h)
    {
        return h.valid() ? h.get() : 0;
    }

    Cycles period_;
    Cycles nextAt;
    SamplerSources src;
    std::vector<SampleRow> series;
};

} // namespace tm3270::trace

#endif // TM3270_TRACE_INTERVAL_HH
