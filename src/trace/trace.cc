#include "trace/trace.hh"

#include "support/logging.hh"
#include "support/prof.hh"

namespace tm3270::trace
{

namespace
{

/** Trace-viewer track ("thread") ids. */
enum Track : unsigned
{
    TrackCore = 1,
    TrackLsu = 2,
    TrackBiu = 3,
    TrackDram = 4,
    NumTracks
};

const char *const trackNames[NumTracks] = {nullptr, "core", "lsu", "biu",
                                           "dram"};

/** Chrome trace-event phase of an event kind. */
enum class Phase : char
{
    Counter = 'C',  ///< numeric track (issue-slot occupancy)
    Complete = 'X', ///< interval with ts + dur
    Instant = 'i',
};

/** Static description of one event kind for the JSON writer. */
struct KindInfo
{
    const char *name;
    const char *cat;
    Phase phase;
    Track track;
    /** JSON key of the aux argument (null: omit). */
    const char *auxKey;
};

const KindInfo &
kindInfo(Ev kind)
{
    static const KindInfo table[size_t(Ev::NumKinds)] = {
        // clang-format off
        {"issue_slots",          "issue",    Phase::Counter,  TrackCore, "ops"},
        {"stall:icache",         "stall",    Phase::Complete, TrackCore, nullptr},
        {"icache_miss",          "cache",    Phase::Instant,  TrackCore, nullptr},
        {"stall:dcache_miss",    "stall",    Phase::Complete, TrackLsu,  nullptr},
        {"stall:prefetch_wait",  "stall",    Phase::Complete, TrackLsu,  nullptr},
        {"stall:store_fetch",    "stall",    Phase::Complete, TrackLsu,  nullptr},
        {"stall:copyback",       "stall",    Phase::Complete, TrackLsu,  nullptr},
        {"dcache_load_miss",     "cache",    Phase::Instant,  TrackLsu,  nullptr},
        {"dcache_validity_miss", "cache",    Phase::Instant,  TrackLsu,  nullptr},
        {"dcache_store_miss",    "cache",    Phase::Instant,  TrackLsu,  nullptr},
        {"prefetch_request",     "prefetch", Phase::Instant,  TrackLsu,  nullptr},
        {"prefetch_drop",        "prefetch", Phase::Instant,  TrackLsu,  "reason"},
        {"prefetch_issue",       "prefetch", Phase::Complete, TrackLsu,  nullptr},
        {"prefetch_install",     "prefetch", Phase::Instant,  TrackLsu,  nullptr},
        {"prefetch_hit",         "prefetch", Phase::Instant,  TrackLsu,  nullptr},
        {"biu_demand_read",      "bus",      Phase::Complete, TrackBiu,  "bytes"},
        {"biu_write",            "bus",      Phase::Complete, TrackBiu,  "bytes"},
        {"biu_prefetch_read",    "bus",      Phase::Complete, TrackBiu,  "bytes"},
        {"dram_row_hit",         "dram",     Phase::Instant,  TrackDram, "bank"},
        {"dram_row_miss",        "dram",     Phase::Instant,  TrackDram, "bank"},
        // clang-format on
    };
    tm_assert(kind < Ev::NumKinds, "bad trace event kind %u",
              unsigned(kind));
    return table[size_t(kind)];
}

} // namespace

void
Tracer::writeChromeJson(std::ostream &os) const
{
    TM_PROF_SCOPE(prof::Scope::TraceSerialize);
    hRecorded.set(total);
    hDropped.set(dropped());
    if (dropped() > 0) {
        warn("trace ring overflow: %llu of %llu events overwritten "
             "(oldest lost); raise TM_TRACE_RING to retain more",
             static_cast<unsigned long long>(dropped()),
             static_cast<unsigned long long>(total));
    }
    os << "{\n\"otherData\": {\"cycles_per_us\": 1, \"recorded\": " << total
       << ", \"dropped\": " << dropped() << "},\n";
    os << "\"traceEvents\": [\n";

    // Track-name metadata so viewers label the rows.
    for (unsigned t = TrackCore; t < NumTracks; ++t) {
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
              "\"tid\": "
           << t << ", \"args\": {\"name\": \"" << trackNames[t] << "\"}},\n";
    }

    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
        const Event &e = at(i);
        const KindInfo &ki = kindInfo(e.kind);
        os << "{\"name\": \"" << ki.name << "\", \"cat\": \"" << ki.cat
           << "\", \"ph\": \"" << char(ki.phase) << "\", \"ts\": " << e.ts
           << ", \"pid\": 0, \"tid\": " << unsigned(ki.track);
        if (ki.phase == Phase::Complete)
            os << ", \"dur\": " << e.dur;
        if (ki.phase == Phase::Instant)
            os << ", \"s\": \"t\"";
        // Args block: counters carry their value; others their
        // address and any kind-specific argument.
        bool wantAddr = ki.phase != Phase::Counter && e.addr != 0;
        if (ki.phase == Phase::Counter) {
            os << ", \"args\": {\"" << ki.auxKey << "\": " << e.aux << '}';
        } else if (wantAddr || ki.auxKey) {
            os << ", \"args\": {";
            bool first = true;
            if (wantAddr) {
                os << "\"addr\": " << e.addr;
                first = false;
            }
            if (ki.auxKey) {
                os << (first ? "" : ", ") << '"' << ki.auxKey
                   << "\": " << e.aux;
            }
            os << '}';
        }
        os << '}' << (i + 1 < n ? "," : "") << '\n';
    }
    os << "]\n}\n";
}

} // namespace tm3270::trace
