#include "trace/interval.hh"

#include "support/logging.hh"
#include "support/prof.hh"

namespace tm3270::trace
{

namespace
{

/** Per-interval deltas between two cumulative rows. */
struct Delta
{
    uint64_t cycles, instrs, stall, iacc, imiss, loads, lmiss, pfUseful;

    Delta(const SampleRow &cur, const SampleRow &prev)
        : cycles(cur.cycle - prev.cycle),
          instrs(cur.instrs - prev.instrs),
          stall(cur.stallCycles - prev.stallCycles),
          iacc(cur.icacheAccesses - prev.icacheAccesses),
          imiss(cur.icacheMisses - prev.icacheMisses),
          loads(cur.loads - prev.loads),
          lmiss(cur.loadLineMisses - prev.loadLineMisses),
          pfUseful(cur.prefetchUseful - prev.prefetchUseful)
    {}

    double ipc() const { return ratio(instrs, cycles); }
    double stallFrac() const { return ratio(stall, cycles); }
    double icacheMissRate() const { return ratio(imiss, iacc); }
    double loadMissRate() const { return ratio(lmiss, loads); }
    /** Fraction of would-be misses covered by useful prefetches. */
    double
    prefetchCoverage() const
    {
        return ratio(pfUseful, pfUseful + lmiss);
    }

    static double
    ratio(uint64_t num, uint64_t den)
    {
        return den ? double(num) / double(den) : 0.0;
    }
};

} // namespace

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    TM_PROF_SCOPE(prof::Scope::TraceSerialize);
    os << "cycle,instrs,ops,stall_cycles,icache_accesses,icache_misses,"
          "loads,load_line_misses,prefetch_installed,prefetch_useful,"
          "ipc,stall_frac,icache_miss_rate,load_miss_rate,"
          "prefetch_coverage\n";
    SampleRow prev{};
    for (const SampleRow &r : series) {
        Delta d(r, prev);
        os << strfmt("%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                     "%.6f,%.6f,%.6f,%.6f,%.6f\n",
                     (unsigned long long)r.cycle,
                     (unsigned long long)r.instrs,
                     (unsigned long long)r.ops,
                     (unsigned long long)r.stallCycles,
                     (unsigned long long)r.icacheAccesses,
                     (unsigned long long)r.icacheMisses,
                     (unsigned long long)r.loads,
                     (unsigned long long)r.loadLineMisses,
                     (unsigned long long)r.prefetchInstalled,
                     (unsigned long long)r.prefetchUseful, d.ipc(),
                     d.stallFrac(), d.icacheMissRate(), d.loadMissRate(),
                     d.prefetchCoverage());
        prev = r;
    }
}

void
IntervalSampler::writeJson(std::ostream &os) const
{
    TM_PROF_SCOPE(prof::Scope::TraceSerialize);
    os << "[\n";
    SampleRow prev{};
    for (size_t i = 0; i < series.size(); ++i) {
        const SampleRow &r = series[i];
        Delta d(r, prev);
        os << strfmt("{\"cycle\": %llu, \"instrs\": %llu, \"ops\": %llu, "
                     "\"stall_cycles\": %llu, \"ipc\": %.6f, "
                     "\"stall_frac\": %.6f, \"icache_miss_rate\": %.6f, "
                     "\"load_miss_rate\": %.6f, "
                     "\"prefetch_coverage\": %.6f}%s\n",
                     (unsigned long long)r.cycle,
                     (unsigned long long)r.instrs,
                     (unsigned long long)r.ops,
                     (unsigned long long)r.stallCycles, d.ipc(),
                     d.stallFrac(), d.icacheMissRate(), d.loadMissRate(),
                     d.prefetchCoverage(),
                     i + 1 < series.size() ? "," : "");
        prev = r;
    }
    os << "]\n";
}

} // namespace tm3270::trace
