/**
 * @file
 * Cycle-level event tracer (DESIGN.md §9).
 *
 * Units record timestamped architectural events — issue-slot
 * occupancy, stall intervals with cause, cache misses, prefetch
 * engine decisions, BIU transactions, DRAM bank activity — into a
 * preallocated ring buffer. writeChromeJson() serializes the retained
 * events as Chrome trace-event JSON, loadable in Perfetto or
 * chrome://tracing (one simulated CPU cycle is mapped to one
 * microsecond of trace time).
 *
 * Zero overhead when off: every instrumentation site goes through the
 * TM_TRACE_EVENT macro below, which tests a unit-local `Tracer *`
 * that is null by default. With tracing disabled the hot loops of the
 * fast-path interpreter and the memory hierarchy pay one
 * never-taken, predictable branch per site and execute no tracer
 * code; architectural state and stat counters are never touched by
 * the tracer at all, so enabling tracing cannot perturb simulation
 * results (gated by tests/test_trace.cc and the bench_simrate
 * overhead gate in scripts/verify.sh).
 *
 * Determinism: events carry only architectural values (cycles,
 * addresses, byte counts), so two runs of the same program emit
 * byte-identical JSON.
 */

#ifndef TM3270_TRACE_TRACE_HH
#define TM3270_TRACE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "support/stats.hh"
#include "support/types.hh"

namespace tm3270::trace
{

/** Event kinds. Names/tracks for the JSON writer live in trace.cc. */
enum class Ev : uint8_t
{
    // Core front end / issue.
    Issue,             ///< one VLIW instruction issued; aux = ops
    StallIcache,       ///< dur = instruction-fetch stall cycles
    IcacheMiss,        ///< addr = line address

    // Load/store unit.
    StallDcacheMiss,   ///< dur = demand-refill stall cycles
    StallPrefetchWait, ///< dur = wait on an in-flight prefetch
    StallStoreFetch,   ///< dur = fetch-on-write-miss stall cycles
    StallCopyback,     ///< dur = cache-write-buffer-full stall cycles
    DcacheLoadMiss,    ///< addr = line address
    DcacheValidityMiss,///< allocated line, bytes invalid; addr = line
    DcacheStoreMiss,   ///< addr = line address

    // Prefetch engine.
    PrefetchRequest,   ///< accepted into the queue; addr = line
    PrefetchDrop,      ///< rejected; aux: 0 resident/pending, 1 full
    PrefetchIssue,     ///< on the bus; addr = line, dur = refill time
    PrefetchInstall,   ///< line installed; addr = line
    PrefetchHit,       ///< demand access hit a prefetched line

    // Bus interface unit (X events: ts = bus grant, dur = occupancy).
    BiuDemandRead,     ///< addr, aux = bytes
    BiuWrite,          ///< copy-back drain; addr, aux = bytes
    BiuPrefetchRead,   ///< addr, aux = bytes

    // DRAM bank activity (ts = CPU cycle of the transaction start).
    DramRowHit,        ///< addr, aux = bank
    DramRowMiss,       ///< addr, aux = bank

    NumKinds
};

/** One ring-buffer record; all fields are architectural values. */
struct Event
{
    Cycles ts;     ///< CPU cycle of the event (or interval start)
    uint32_t dur;  ///< interval length in cycles (0 for instants)
    uint32_t addr; ///< address argument (0 when unused)
    uint32_t aux;  ///< kind-specific argument (0 when unused)
    Ev kind;
};

/**
 * Fixed-capacity event recorder. The buffer is allocated once at
 * construction; when it fills, the oldest events are overwritten
 * (most-recent-window semantics) and dropped() reports how many were
 * lost, so a bounded trace of an arbitrarily long run is always
 * available without allocation in the recording path.
 */
class Tracer
{
  public:
    /** @p capacity events are retained (default 256 Ki ≈ 6 MB). */
    explicit Tracer(size_t capacity = size_t(1) << 18)
        : ring(capacity ? capacity : 1)
    {}

    /**
     * The tracer's own stat group ("trace.events_recorded" /
     * "trace.events_dropped"), refreshed by writeChromeJson().
     * Deliberately NOT attached to any System stat group: the tracer
     * is an observer, and its counters in the architectural dump
     * would break the traced-equals-untraced bit-identity gate
     * (tests/test_trace.cc). Harnesses that want the numbers in a
     * manifest read this group directly.
     */
    const StatGroup &stats() const { return statGroup; }

    /** Record one event. Hot when tracing is on: one store + index
     *  wrap, no allocation, no branches on event kind. */
    void
    record(Ev kind, Cycles ts, uint32_t dur = 0, uint32_t addr = 0,
           uint32_t aux = 0)
    {
        ring[head] = {ts, dur, addr, aux, kind};
        if (++head == ring.size())
            head = 0;
        ++total;
    }

    size_t capacity() const { return ring.size(); }
    /** Events recorded over the tracer's lifetime (includes dropped). */
    uint64_t recorded() const { return total; }
    /** Events overwritten because the ring was full. */
    uint64_t
    dropped() const
    {
        return total > ring.size() ? total - ring.size() : 0;
    }
    /** Events currently retained. */
    size_t
    size() const
    {
        return total < ring.size() ? size_t(total) : ring.size();
    }

    /** The @p i-th oldest retained event (0 <= i < size()). */
    const Event &
    at(size_t i) const
    {
        size_t oldest = total <= ring.size() ? 0 : head;
        size_t idx = oldest + i;
        if (idx >= ring.size())
            idx -= ring.size();
        return ring[idx];
    }

    /** Forget all events (capacity is kept). */
    void
    clear()
    {
        head = 0;
        total = 0;
    }

    /**
     * Serialize the retained events as Chrome trace-event JSON
     * ({"traceEvents": [...]}), oldest first, with thread-name
     * metadata for the core/LSU/bus/DRAM tracks and the drop count
     * under "otherData". Deterministic: depends only on the events.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    std::vector<Event> ring;
    size_t head = 0;    ///< next write position
    uint64_t total = 0; ///< lifetime event count

    /** Observer-side stats; see stats(). Handles are interned up
     *  front so writeChromeJson() (const) can set them without a map
     *  lookup; publishing from the serialization path keeps the
     *  record() hot path a plain store. */
    StatGroup statGroup{"trace"};
    StatHandle hRecorded = statGroup.handle("events_recorded");
    StatHandle hDropped = statGroup.handle("events_dropped");
};

/**
 * Instrumentation-site macro: record an event iff a tracer is
 * attached. @p tracer is a `Tracer *` (null = tracing off); the
 * remaining arguments are forwarded to Tracer::record(). Expands to a
 * single never-taken-by-default branch so that instrumented hot loops
 * are unchanged when tracing is off.
 */
#define TM_TRACE_EVENT(tracer, ...)                                         \
    do {                                                                    \
        if ((tracer) != nullptr) [[unlikely]]                               \
            (tracer)->record(__VA_ARGS__);                                  \
    } while (0)

} // namespace tm3270::trace

#endif // TM3270_TRACE_TRACE_HH
