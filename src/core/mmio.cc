#include "core/mmio.hh"

#include "support/logging.hh"

namespace tm3270
{

SocMmio::SocMmio(RegionPrefetcher &pf_, std::function<Cycles()> cycle_fn)
    : pf(pf_), cycleFn(std::move(cycle_fn))
{
}

bool
SocMmio::handles(Addr addr) const
{
    return addr >= mmio_map::base && addr < mmio_map::base + mmio_map::size;
}

Word
SocMmio::read(Addr addr)
{
    if (addr >= mmio_map::pfRegion &&
        addr < mmio_map::pfRegion + 0x10 * RegionPrefetcher::numRegions) {
        unsigned n = (addr - mmio_map::pfRegion) >> 4;
        unsigned reg = ((addr - mmio_map::pfRegion) & 0xf) >> 2;
        if (reg < 3)
            return pfShadow[n][reg];
        return 0;
    }
    switch (addr) {
      case mmio_map::cycleLo:
        return static_cast<Word>(cycleFn());
      case mmio_map::cycleHi:
        return static_cast<Word>(cycleFn() >> 32);
      default:
        return 0;
    }
}

void
SocMmio::write(Addr addr, Word value)
{
    if (addr >= mmio_map::pfRegion &&
        addr < mmio_map::pfRegion + 0x10 * RegionPrefetcher::numRegions) {
        unsigned n = (addr - mmio_map::pfRegion) >> 4;
        unsigned reg = ((addr - mmio_map::pfRegion) & 0xf) >> 2;
        if (reg < 3) {
            pfShadow[n][reg] = value;
            pf.setRegion(n, pfShadow[n][0], pfShadow[n][1],
                         static_cast<int32_t>(pfShadow[n][2]));
        }
        return;
    }
    if (addr == mmio_map::debugChar) {
        debugOut.push_back(static_cast<char>(value & 0xff));
        return;
    }
    // Other addresses in the MMIO window are write-ignored.
}

} // namespace tm3270
