/**
 * @file
 * The TM3270 processor model: a 5-issue-slot VLIW with guarded
 * operations, an exposed pipeline (results commit `latency` issue
 * cycles after issue; earlier reads observe the old value), jump delay
 * slots instead of branch prediction, a front-end with instruction
 * cache and template-chained pre-decode, and the load/store unit of
 * §4. Timing follows the pipeline of paper Fig. 4.
 */

#ifndef TM3270_CORE_PROCESSOR_HH
#define TM3270_CORE_PROCESSOR_HH

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "core/mmio.hh"
#include "encode/decoder.hh"
#include "encode/encoder.hh"
#include "lsu/lsu.hh"
#include "support/stats.hh"

namespace tm3270
{

/** Outcome of a simulation run. */
struct RunResult
{
    bool halted = false;
    Word exitValue = 0;
    Cycles cycles = 0;       ///< wall cycles including stalls
    uint64_t instrs = 0;     ///< VLIW instructions issued
    uint64_t ops = 0;        ///< operations issued (two-slot count 2)
    Cycles stallCycles = 0;  ///< total stall cycles

    double cpi() const { return instrs ? double(cycles) / instrs : 0.0; }
    double opi() const { return instrs ? double(ops) / instrs : 0.0; }
    /** Execution time in microseconds at @p freq_mhz. */
    double
    microseconds(uint32_t freq_mhz) const
    {
        return double(cycles) / freq_mhz;
    }
};

/** The processor. Owns BIU, caches, LSU and MMIO; memory is shared. */
class Processor
{
  public:
    Processor(MachineConfig cfg, MainMemory &mem);

    /** Install a program; the image lives in instruction space. */
    void loadProgram(const EncodedProgram &prog);

    /** Run until HALT or @p max_instrs instructions. */
    RunResult run(uint64_t max_instrs = 1ull << 40);

    /** Architectural register access (r0/r1 read as 0/1). */
    Word reg(RegIndex r) const;
    void setReg(RegIndex r, Word v);

    Lsu &lsu() { return lsu_; }
    Biu &biu() { return biu_; }
    Cache &icache() { return icache_; }
    SocMmio &mmio() { return mmio_; }
    const MachineConfig &config() const { return cfg; }
    Cycles cycles() const { return cycle; }

    /** Reset architectural and micro-architectural state. */
    void reset();

    StatGroup stats{"cpu"};

  private:
    /** Instruction-space timing addresses are offset so that program
     *  fetch traffic uses distinct DRAM rows from data traffic. */
    static constexpr Addr imemTimingBase = 0x40000000;
    static constexpr unsigned wbRingSize = 32;

    MachineConfig cfg;
    MainMemory &mem;
    Biu biu_;
    Lsu lsu_;
    Cache icache_;
    SocMmio mmio_;

    const EncodedProgram *prog = nullptr;
    std::unordered_map<Addr, DecodedInst> decodeCache;

    // Architectural and pipeline state.
    std::array<Word, numRegs> regs{};
    struct Writeback
    {
        RegIndex reg;
        Word value;
    };
    std::array<std::vector<Writeback>, wbRingSize> wbRing;
    std::array<uint64_t, numRegs> readyAt{};

    uint64_t issueTick = 0;
    Cycles cycle = 0;
    Cycles stallTotal = 0;
    Addr pc = 0;
    std::optional<uint16_t> nextTemplate; ///< nullopt: jump target next

    int redirectCount = -1; ///< instructions until redirect; -1 = none
    Addr redirectTarget = 0;
    bool halted = false;
    Word exitValue = 0;
    uint64_t opsIssued = 0;
    uint64_t instrsIssued = 0;

    Addr lastFetchChunk = ~Addr(0);

    const DecodedInst &decodeAt(Addr addr,
                                std::optional<uint16_t> templ);
    Word readReg(RegIndex r);
    void scheduleWriteback(RegIndex r, Word v, unsigned latency);
    void commitWritebacks();
    Cycles fetchTiming(Addr addr, uint32_t size);
    void step();
    unsigned effLoadLatency(Opcode opc) const;
};

} // namespace tm3270

#endif // TM3270_CORE_PROCESSOR_HH
