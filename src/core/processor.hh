/**
 * @file
 * The TM3270 processor model: a 5-issue-slot VLIW with guarded
 * operations, an exposed pipeline (results commit `latency` issue
 * cycles after issue; earlier reads observe the old value), jump delay
 * slots instead of branch prediction, a front-end with instruction
 * cache and template-chained pre-decode, and the load/store unit of
 * §4. Timing follows the pipeline of paper Fig. 4.
 */

#ifndef TM3270_CORE_PROCESSOR_HH
#define TM3270_CORE_PROCESSOR_HH

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "core/mmio.hh"
#include "encode/decoder.hh"
#include "encode/encoder.hh"
#include "lsu/lsu.hh"
#include "support/stats.hh"

namespace tm3270
{

namespace trace
{
class Tracer;
class IntervalSampler;
}

/** Outcome of a simulation run. */
struct RunResult
{
    bool halted = false;
    Word exitValue = 0;
    Cycles cycles = 0;       ///< wall cycles including stalls
    uint64_t instrs = 0;     ///< VLIW instructions issued
    uint64_t ops = 0;        ///< operations issued (two-slot count 2)
    Cycles stallCycles = 0;  ///< total stall cycles

    double cpi() const { return instrs ? double(cycles) / instrs : 0.0; }
    double opi() const { return instrs ? double(ops) / instrs : 0.0; }
    /** Execution time in microseconds at @p freq_mhz. */
    double
    microseconds(uint32_t freq_mhz) const
    {
        return double(cycles) / freq_mhz;
    }
};

/** Execution dispatch class of a predecoded operation. */
enum class ExecClass : uint8_t
{
    Pure,
    Load,
    Store,
    Branch,
    Pref,
};

/**
 * One operation of a predecoded instruction: everything that is
 * invariant for a static operation, hoisted out of the per-cycle
 * loop — metadata pointers, the gather source mask, the two-slot op
 * count, the effective writeback latency and the interned FU counter.
 * Issue-slot legality is asserted once, at predecode time.
 */
struct PredecodedOp
{
    const Operation *op; ///< into the decode cache (node-stable)
    const OpInfo *oi;
    StatHandle fuStat;   ///< interned "cpu.fu_*" counter
    ExecClass cls;
    uint8_t srcMask;     ///< src[] positions read at gather
    uint8_t issueOps;    ///< 1, or 2 for two-slot operations
    uint8_t wbLatency;   ///< effective result latency (loads included)
};

/** A predecoded VLIW instruction: a flat array of micro-ops. */
struct PredecodedInst
{
    uint32_t size;
    uint16_t nextTemplate;
    bool hasNextTemplate;
    uint8_t nOps;
    uint8_t regReads; ///< static register-file reads per issue
    std::array<PredecodedOp, numSlots> ops;
};

/** The processor. Owns BIU, caches, LSU and MMIO; memory is shared. */
class Processor
{
  public:
    Processor(MachineConfig cfg, MainMemory &mem);

    /** Install a program; the image lives in instruction space. */
    void loadProgram(const EncodedProgram &prog);

    /** Run until HALT or @p max_instrs instructions. */
    RunResult run(uint64_t max_instrs = 1ull << 40);

    /** Architectural register access (r0/r1 read as 0/1). */
    Word reg(RegIndex r) const;
    void setReg(RegIndex r, Word v);

    Lsu &lsu() { return lsu_; }
    Biu &biu() { return biu_; }
    Cache &icache() { return icache_; }
    SocMmio &mmio() { return mmio_; }
    const MachineConfig &config() const { return cfg; }
    Cycles cycles() const { return cycle; }

    /** Reset architectural and micro-architectural state. */
    void reset();

    /**
     * Attach/detach the cycle-level event tracer (null: off). Fans out
     * to the LSU, BIU and main memory so one ring buffer collects the
     * whole machine. The tracer only observes: it never feeds back
     * into timing or stats, so traced runs are bit-identical to
     * untraced ones (gated by tests/test_trace.cc).
     */
    void attachTracer(trace::Tracer *t);

    /** Attach/detach the interval sampler (null: off). Binds the
     *  sampler's counter sources to this processor's stat groups. */
    void attachSampler(trace::IntervalSampler *s);

    StatGroup stats{"cpu"};

  private:
    /** Instruction-space timing addresses are offset so that program
     *  fetch traffic uses distinct DRAM rows from data traffic. */
    static constexpr Addr imemTimingBase = 0x40000000;
    static constexpr unsigned wbRingSize = 32;

    MachineConfig cfg;
    MainMemory &mem;
    Biu biu_;
    Lsu lsu_;
    Cache icache_;
    /** Reusable icache eviction buffer (tag-only lines: no copy). */
    Victim icacheVictim;
    SocMmio mmio_;

    const EncodedProgram *prog = nullptr;
    // tm-lint: allow(D1) lookup-only decode memo (try_emplace/clear);
    // never iterated, so its hash order cannot reach stats or traces.
    std::unordered_map<Addr, DecodedInst> decodeCache;

    /** Predecoded micro-op stream: pdIndex maps a byte address of the
     *  program image to an index into pdPool (-1: not yet predecoded).
     *  The deque keeps element addresses stable while growing. */
    std::deque<PredecodedInst> pdPool;
    std::vector<int32_t> pdIndex;

    // Architectural and pipeline state. regs maintains the invariant
    // regs[r0] == 0 and regs[r1] == 1, so gather reads are unchecked
    // array loads.
    std::array<Word, numRegs> regs{};
    struct Writeback
    {
        RegIndex reg;
        Word value;
    };
    /** One writeback-ring slot: fixed-capacity inline array (no
     *  steady-state heap churn). A single issue cycle schedules at
     *  most numSlots ops with up to two destinations each; slots due
     *  the same cycle from different issue cycles share the entry. */
    static constexpr unsigned wbSlotCap = numSlots * 2;
    struct WbSlot
    {
        std::array<Writeback, wbSlotCap> e;
        uint32_t n = 0;
    };
    std::array<WbSlot, wbRingSize> wbRing;
    std::array<uint64_t, numRegs> readyAt{};

    uint64_t issueTick = 0;
    Cycles cycle = 0;
    Cycles stallTotal = 0;
    Addr pc = 0;
    std::optional<uint16_t> nextTemplate; ///< nullopt: jump target next

    int redirectCount = -1; ///< instructions until redirect; -1 = none
    Addr redirectTarget = 0;
    bool halted = false;
    Word exitValue = 0;
    uint64_t opsIssued = 0;
    uint64_t instrsIssued = 0;

    Addr lastFetchChunk = ~Addr(0);

    // Interned counters for the per-cycle hot path.
    StatHandle hRegfileReads = stats.handle("regfile_reads");
    StatHandle hRegfileWrites = stats.handle("regfile_writes");
    StatHandle hIcacheAccesses = stats.handle("icache_accesses");
    StatHandle hIcacheTagReads = stats.handle("icache_tag_reads");
    StatHandle hIcacheDataReads = stats.handle("icache_data_reads");
    StatHandle hIcacheMisses = stats.handle("icache_misses");
    StatHandle hIstallCycles = stats.handle("istall_cycles");
    StatHandle hBranchesTaken = stats.handle("branches_taken");
    StatHandle hBranchesNotTaken = stats.handle("branches_not_taken");
    StatHandle hDstallCycles = stats.handle("dstall_or_istall_cycles");
    StatHandle hCycles = stats.handle("cycles");
    StatHandle hInstrs = stats.handle("instrs");
    StatHandle hOps = stats.handle("ops");

    /** Exhaustive per-cause stall breakdown ("cpu.stall.*"): icache
     *  here, the data-side causes rebound from the LSU. The counters
     *  partition stall_cycles exactly (gated by tests/test_trace.cc). */
    StatGroup stallStats{"stall"};
    StatHandle hStallIcache = stallStats.handle("icache");

    trace::Tracer *tracer_ = nullptr;
    trace::IntervalSampler *sampler_ = nullptr;

    const DecodedInst &decodeAt(Addr addr,
                                std::optional<uint16_t> templ);
    const PredecodedInst &predecodeAt(Addr addr,
                                      std::optional<uint16_t> templ);
    const PredecodedInst &predecode(Addr addr,
                                    std::optional<uint16_t> templ);
    Word gatherRead(RegIndex r);
    void scheduleWriteback(RegIndex r, Word v, unsigned latency);
    void commitWritebacks();
    Cycles fetchTiming(Addr addr, uint32_t size);
    void step();
    unsigned effLoadLatency(Opcode opc) const;
};

} // namespace tm3270

#endif // TM3270_CORE_PROCESSOR_HH
