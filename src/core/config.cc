#include "core/config.hh"

#include "support/logging.hh"

namespace tm3270
{

MachineConfig
tm3270Config()
{
    MachineConfig c;
    c.name = "TM3270";
    c.freqMHz = 350;
    c.icache = CacheGeometry{"icache", 64 * 1024, 8, 128, false};
    c.dcache = CacheGeometry{"dcache", 128 * 1024, 4, 128, true};
    c.lsu.allocateOnWriteMiss = true;
    c.loadLatency = 4;
    c.jumpDelaySlots = 5;
    c.loadSlotMask = slotBit(5);
    c.maxLoadsPerInst = 1;
    c.icacheSequential = true;
    return c;
}

MachineConfig
tm3260Config()
{
    MachineConfig c;
    c.name = "TM3260";
    c.freqMHz = 240;
    c.icache = CacheGeometry{"icache", 64 * 1024, 8, 64, false};
    c.dcache = CacheGeometry{"dcache", 16 * 1024, 8, 64, true};
    c.lsu.allocateOnWriteMiss = false; // fetch-on-write-miss
    c.loadLatency = 3;
    c.jumpDelaySlots = 3;
    c.loadSlotMask = slotBit(4) | slotBit(5);
    c.maxLoadsPerInst = 2;
    c.icacheSequential = false; // parallel cache design
    return c;
}

MachineConfig
configB()
{
    // TM3270 core and cache *design* (128-byte lines,
    // allocate-on-write-miss) at TM3260 cache capacity and frequency.
    MachineConfig c = tm3270Config();
    c.name = "TM3270-B";
    c.freqMHz = 240;
    c.dcache = CacheGeometry{"dcache", 16 * 1024, 4, 128, true};
    return c;
}

MachineConfig
configC()
{
    MachineConfig c = configB();
    c.name = "TM3270-C";
    c.freqMHz = 350;
    return c;
}

MachineConfig
configByLetter(char letter)
{
    switch (letter) {
      case 'A': return tm3260Config();
      case 'B': return configB();
      case 'C': return configC();
      case 'D': return tm3270Config();
      default: fatal("unknown configuration '%c'", letter);
    }
}

} // namespace tm3270
