#include "core/processor.hh"

#include <bit>

#include "isa/semantics.hh"
#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/prof.hh"
#include "trace/interval.hh"
#include "trace/trace.hh"

namespace tm3270
{

namespace
{

/** Stat key for a functional-unit class. */
const char *
fuStatName(FuClass fu)
{
    switch (fu) {
      case FuClass::Const: return "fu_const";
      case FuClass::Alu: return "fu_alu";
      case FuClass::Shifter: return "fu_shifter";
      case FuClass::Mul: return "fu_mul";
      case FuClass::DspAlu: return "fu_dspalu";
      case FuClass::DspMul: return "fu_dspmul";
      case FuClass::FAlu: return "fu_falu";
      case FuClass::FComp: return "fu_fcomp";
      case FuClass::FTough: return "fu_ftough";
      case FuClass::Branch: return "fu_branch";
      case FuClass::Load: return "fu_load";
      case FuClass::Store: return "fu_store";
      case FuClass::FracLoad: return "fu_fracload";
      case FuClass::SuperLd: return "fu_superld";
      case FuClass::SuperMix: return "fu_supermix";
      case FuClass::Cabac: return "fu_cabac";
      default: return "fu_none";
    }
}

} // namespace

Processor::Processor(MachineConfig cfg_, MainMemory &mem_)
    : cfg(std::move(cfg_)),
      mem(mem_),
      biu_(mem_, cfg.freqMHz),
      lsu_(cfg.lsu, cfg.dcache, biu_, mem_, nullptr),
      icache_(cfg.icache),
      mmio_(lsu_.prefetcher(), [this] { return cycle; })
{
    // The LSU is constructed before the MMIO device it routes to;
    // attach the device now.
    lsu_.setMmio(&mmio_);
    // Home the exhaustive stall breakdown under "cpu.stall": icache
    // stalls are counted here, the data-side causes by the LSU through
    // rebound handles.
    stats.addChild(&stallStats);
    lsu_.bindStallStats(stallStats);
    regs[regOne] = 1;
}

void
Processor::attachTracer(trace::Tracer *t)
{
    tracer_ = t;
    lsu_.setTracer(t);
    biu_.setTracer(t);
    mem.setTracer(t);
}

void
Processor::attachSampler(trace::IntervalSampler *s)
{
    sampler_ = s;
    if (!s)
        return;
    trace::SamplerSources src;
    src.icacheAccesses = hIcacheAccesses;
    src.icacheMisses = hIcacheMisses;
    src.loads = lsu_.stats.handle("loads");
    src.loadLineMisses = lsu_.stats.handle("load_line_misses");
    src.prefetchInstalled = lsu_.stats.handle("prefetch_installed");
    src.prefetchUseful = lsu_.stats.handle("prefetch_useful");
    s->bind(src);
}

void
Processor::loadProgram(const EncodedProgram &p)
{
    prog = &p;
    decodeCache.clear();
    pdPool.clear();
    pdIndex.assign(p.bytes.size(), -1);
    pc = 0;
    nextTemplate = std::nullopt; // entry is a jump target
    lastFetchChunk = ~Addr(0);
    redirectCount = -1;
    halted = false;
}

Word
Processor::reg(RegIndex r) const
{
    if (r == regZero)
        return 0;
    if (r == regOne)
        return 1;
    return regs[r];
}

void
Processor::setReg(RegIndex r, Word v)
{
    if (r == regZero || r == regOne)
        return;
    regs[r] = v;
}

Word
Processor::gatherRead(RegIndex r)
{
    if (cfg.strictLatencyCheck && readyAt[r] > issueTick) {
        fatal("latency violation: r%u read at tick %llu, ready at %llu",
              unsigned(r), (unsigned long long)issueTick,
              (unsigned long long)readyAt[r]);
    }
    return regs[r];
}

void
Processor::scheduleWriteback(RegIndex r, Word v, unsigned latency)
{
    tm_assert(latency >= 1 && latency < wbRingSize, "bad latency %u",
              latency);
    if (r == regZero || r == regOne)
        return; // writes to the constant registers are ignored
    uint64_t due = issueTick + latency;
    if (cfg.strictLatencyCheck && readyAt[r] > due) {
        fatal("WAW ordering violation on r%u (due %llu, pending %llu)",
              unsigned(r), (unsigned long long)due,
              (unsigned long long)readyAt[r]);
    }
    readyAt[r] = due;
    WbSlot &slot = wbRing[due % wbRingSize];
    tm_assert(slot.n < wbSlotCap, "writeback ring slot overflow "
              "(capacity %u)", wbSlotCap);
    slot.e[slot.n++] = {r, v};
}

void
Processor::commitWritebacks()
{
    WbSlot &slot = wbRing[issueTick % wbRingSize];
    for (uint32_t i = 0; i < slot.n; ++i)
        regs[slot.e[i].reg] = slot.e[i].value;
    if (slot.n)
        hRegfileWrites.inc(slot.n);
    slot.n = 0;
}

const DecodedInst &
Processor::decodeAt(Addr addr, std::optional<uint16_t> templ)
{
    auto [it, inserted] = decodeCache.try_emplace(addr);
    if (inserted)
        it->second = decodeInst(prog->bytes, addr, templ);
    return it->second;
}

const PredecodedInst &
Processor::predecodeAt(Addr addr, std::optional<uint16_t> templ)
{
    int32_t idx = pdIndex[addr];
    if (idx >= 0)
        return pdPool[size_t(idx)];
    return predecode(addr, templ);
}

/**
 * Build the predecoded form of the instruction at @p addr: hoist all
 * per-static-instruction work (metadata lookup, issue-slot legality,
 * loads-per-instruction limit, effective latencies, FU counter
 * interning, the static register-read count) out of the per-cycle
 * loop. Runs once per static instruction per program.
 */
const PredecodedInst &
Processor::predecode(Addr addr, std::optional<uint16_t> templ)
{
    TM_PROF_SCOPE(prof::Scope::Predecode);
    const DecodedInst &di = decodeAt(addr, templ);
    PredecodedInst pi;
    pi.size = di.size;
    pi.nextTemplate = di.nextTemplate;
    pi.hasNextTemplate = di.hasNextTemplate;
    pi.nOps = 0;
    pi.regReads = 0;

    unsigned loads_this_inst = 0;
    for (unsigned s = 0; s < numSlots; ++s) {
        const Operation &op = di.inst.slot[s];
        if (!op.used())
            continue;
        const OpInfo &oi = op.info();
        PredecodedOp &pd = pi.ops[pi.nOps++];
        pd.op = &op;
        pd.oi = &oi;
        pd.fuStat = stats.handle(fuStatName(oi.fu));
        pd.srcMask = oi.srcPositions() & 0xf;
        pd.issueOps = oi.isTwoSlot ? 2 : 1;
        pd.wbLatency =
            uint8_t(oi.isLoad ? effLoadLatency(op.opc) : oi.latency);
        pd.cls = oi.isBranch               ? ExecClass::Branch
                 : oi.isLoad               ? ExecClass::Load
                 : oi.isStore              ? ExecClass::Store
                 : op.opc == Opcode::PREF  ? ExecClass::Pref
                                           : ExecClass::Pure;
        // Guard + sources + the store value are read every issue.
        pi.regReads += uint8_t(1 + std::popcount(pd.srcMask) +
                               (oi.isStore ? 1 : 0));

        if (oi.isLoad) {
            ++loads_this_inst;
            tm_assert(loads_this_inst <= cfg.maxLoadsPerInst,
                      "too many loads in one instruction for %s",
                      cfg.name.c_str());
        }
        // Issue-slot legality (configuration-dependent for loads).
        uint8_t mask = oi.isLoad && !oi.isTwoSlot &&
                               oi.fu != FuClass::FracLoad
                           ? cfg.loadSlotMask
                           : oi.slotMask;
        if (op.opc == Opcode::SUPER_LD32R)
            mask = oi.slotMask;
        tm_assert(mask & slotBit(s + 1), "%s illegal in slot %u",
                  std::string(oi.mnemonic).c_str(), s + 1);
    }

    pdIndex[addr] = int32_t(pdPool.size());
    pdPool.push_back(pi);
    return pdPool.back();
}

Cycles
Processor::fetchTiming(Addr addr, uint32_t size)
{
    // The front-end fetches 32-byte aligned chunks into the
    // instruction buffer; each new chunk probes the instruction cache.
    Cycles stall = 0;
    Addr first = alignDown(addr, cfg.fetchChunkBytes);
    Addr last = alignDown(addr + size - 1, cfg.fetchChunkBytes);
    for (Addr chunk = first; chunk <= last; chunk += cfg.fetchChunkBytes) {
        if (chunk == lastFetchChunk ||
            (lastFetchChunk != ~Addr(0) && chunk < lastFetchChunk)) {
            continue;
        }
        lastFetchChunk = chunk;
        hIcacheAccesses.inc();
        hIcacheTagReads.inc(cfg.icache.assoc);
        hIcacheDataReads.inc(cfg.icacheSequential ? 1 : cfg.icache.assoc);
        Addr line = icache_.lineAddrOf(chunk);
        int way = icache_.probe(line);
        if (way >= 0) {
            icache_.touch(line, way);
            continue;
        }
        hIcacheMisses.inc();
        TM_TRACE_EVENT(tracer_, trace::Ev::IcacheMiss, cycle + stall, 0,
                       line);
        Cycles done = biu_.demandRead(imemTimingBase + line,
                                      icache_.lineBytes(),
                                      cycle + stall);
        stall += done - (cycle + stall);
        icache_.allocate(line, way, icacheVictim);
        // Instruction cache lines are never dirty: nothing to write back.
        icache_.markAllValid(line, way);
    }
    if (stall) {
        hIstallCycles.inc(stall);
        hStallIcache.inc(stall);
        TM_TRACE_EVENT(tracer_, trace::Ev::StallIcache, cycle,
                       uint32_t(stall));
    }
    return stall;
}

unsigned
Processor::effLoadLatency(Opcode opc) const
{
    if (opc == Opcode::LD_FRAC8) {
        // Collapsed loads with interpolation add the two filter
        // stages X5/X6 (paper Fig. 5) on top of the load pipeline.
        return cfg.loadLatency + 2;
    }
    return cfg.loadLatency;
}

void
Processor::step()
{
    commitWritebacks();

    const PredecodedInst &pi = predecodeAt(pc, nextTemplate);
    Cycles stall = fetchTiming(pc, pi.size);

    // Gather phase: all operations of a VLIW instruction read the
    // register file in parallel, before any result of this or a later
    // instruction commits.
    struct Gathered
    {
        bool guardVal;
        std::array<Word, 4> src;
        Word storeValue;
    };
    std::array<Gathered, numSlots> g;
    const unsigned n_ops = pi.nOps;

    for (unsigned i = 0; i < n_ops; ++i) {
        const PredecodedOp &pd = pi.ops[i];
        const Operation &op = *pd.op;
        Gathered &ge = g[i];
        ge.guardVal = (gatherRead(op.guard) & 1) != 0;
        ge.src = {0, 0, 0, 0};
        for (unsigned k = 0; k < 4; ++k) {
            if (pd.srcMask & (1u << k))
                ge.src[k] = gatherRead(op.src[k]);
        }
        ge.storeValue = pd.oi->isStore ? gatherRead(op.dst[0]) : 0;
        pd.fuStat.inc();
    }
    if (pi.regReads)
        hRegfileReads.inc(pi.regReads);

    // Execute phase.
    bool do_halt = false;
    bool branch_taken = false;
    Addr branch_target = 0;
    const uint64_t ops_before = opsIssued;

    for (unsigned i = 0; i < n_ops; ++i) {
        const PredecodedOp &pd = pi.ops[i];
        const Operation &op = *pd.op;
        opsIssued += pd.issueOps;

        switch (pd.cls) {
          case ExecClass::Branch: {
            bool taken = false;
            Addr target = 0;
            switch (op.opc) {
              case Opcode::JMPT:
                taken = g[i].guardVal;
                target = Addr(op.imm);
                break;
              case Opcode::JMPF:
                taken = !g[i].guardVal;
                target = Addr(op.imm);
                break;
              case Opcode::JMPI:
                taken = true;
                target = Addr(op.imm);
                break;
              case Opcode::JMPR:
                taken = g[i].guardVal;
                target = g[i].src[0];
                break;
              case Opcode::HALT:
                if (g[i].guardVal) {
                    do_halt = true;
                    exitValue = g[i].src[0];
                }
                break;
              default:
                panic("unhandled branch opcode");
            }
            if (taken) {
                tm_assert(!branch_taken && redirectCount < 0,
                          "branch issued while a redirect is pending");
                branch_taken = true;
                branch_target = target;
                hBranchesTaken.inc();
            } else if (op.opc != Opcode::HALT) {
                hBranchesNotTaken.inc();
            }
            break;
          }

          case ExecClass::Load: {
            if (!g[i].guardVal)
                break;
            Addr addr = 0;
            Word aux = 0;
            switch (op.opc) {
              case Opcode::LD8S: case Opcode::LD8U:
              case Opcode::LD16S: case Opcode::LD16U:
              case Opcode::LD32D:
                addr = g[i].src[0] + Addr(op.imm);
                break;
              case Opcode::LD32R:
                addr = g[i].src[0] + g[i].src[1];
                break;
              case Opcode::LD32X:
                addr = g[i].src[0] + 4 * g[i].src[1];
                break;
              case Opcode::LD_FRAC8:
                addr = g[i].src[0];
                aux = g[i].src[1];
                break;
              case Opcode::SUPER_LD32R:
                // Sources live in the second operation of the pair
                // (paper Table 2: rsrc3 + rsrc4).
                addr = g[i].src[2] + g[i].src[3];
                break;
              default:
                panic("unhandled load opcode");
            }
            MemResult mr = lsu_.load(op.opc, addr, aux, cycle + stall);
            stall += mr.stall;
            scheduleWriteback(op.dst[0], mr.data[0], pd.wbLatency);
            if (op.opc == Opcode::SUPER_LD32R)
                scheduleWriteback(op.dst[1], mr.data[1], pd.wbLatency);
            break;
          }

          case ExecClass::Store: {
            if (!g[i].guardVal)
                break;
            Addr addr = op.opc == Opcode::ST32R
                            ? g[i].src[0] + g[i].src[1]
                            : g[i].src[0] + Addr(op.imm);
            stall += lsu_.store(op.opc, addr, g[i].storeValue,
                                cycle + stall);
            break;
          }

          case ExecClass::Pref: {
            if (g[i].guardVal)
                lsu_.softwarePrefetch(g[i].src[0] + Addr(op.imm),
                                      cycle + stall);
            break;
          }

          case ExecClass::Pure: {
            if (!g[i].guardVal)
                break;
            ExecResult er = execPure(op, g[i].src);
            scheduleWriteback(op.dst[0], er.dst[0], pd.wbLatency);
            if (pd.oi->numDst > 1)
                scheduleWriteback(op.dst[1], er.dst[1], pd.wbLatency);
            break;
          }
        }
    }

    // Advance.
    TM_TRACE_EVENT(tracer_, trace::Ev::Issue, cycle, 0, 0,
                   uint32_t(opsIssued - ops_before));
    ++instrsIssued;
    ++issueTick;
    cycle += 1 + stall;
    stallTotal += stall;
    if (stall)
        hDstallCycles.inc(stall);
    lsu_.tick(cycle);

    if (do_halt) {
        halted = true;
        return;
    }

    if (branch_taken) {
        redirectCount = static_cast<int>(cfg.jumpDelaySlots);
        redirectTarget = branch_target;
    }

    if (redirectCount >= 0 && --redirectCount < 0) {
        pc = redirectTarget;
        nextTemplate = std::nullopt; // jump targets are uncompressed
        lastFetchChunk = ~Addr(0);   // new fetch stream
        redirectCount = -1;
    } else {
        pc += pi.size;
        nextTemplate = pi.hasNextTemplate
                           ? std::optional<uint16_t>(pi.nextTemplate)
                           : std::nullopt;
    }
}

RunResult
Processor::run(uint64_t max_instrs)
{
    TM_PROF_SCOPE(prof::Scope::CoreRun);
    tm_assert(prog != nullptr, "no program loaded");
    RunResult r;
    uint64_t start_instrs = instrsIssued;
    Cycles start_cycles = cycle;
    uint64_t start_ops = opsIssued;
    Cycles start_stall = stallTotal;

    while (!halted && instrsIssued - start_instrs < max_instrs) {
        if (pc >= prog->bytes.size())
            fatal("PC 0x%08x ran past the end of the program image", pc);
        step();
        if (sampler_ != nullptr) [[unlikely]] {
            sampler_->maybeSample(cycle, instrsIssued, opsIssued,
                                  stallTotal);
        }
    }
    if (sampler_ != nullptr)
        sampler_->finishRun(cycle, instrsIssued, opsIssued, stallTotal);

    r.halted = halted;
    r.exitValue = exitValue;
    r.cycles = cycle - start_cycles;
    r.instrs = instrsIssued - start_instrs;
    r.ops = opsIssued - start_ops;
    r.stallCycles = stallTotal - start_stall;
    hCycles.set(cycle);
    hInstrs.set(instrsIssued);
    hOps.set(opsIssued);
    return r;
}

void
Processor::reset()
{
    regs.fill(0);
    regs[regOne] = 1;
    readyAt.fill(0);
    for (auto &slot : wbRing)
        slot.n = 0;
    issueTick = 0;
    cycle = 0;
    stallTotal = 0;
    pc = 0;
    nextTemplate = std::nullopt;
    redirectCount = -1;
    halted = false;
    exitValue = 0;
    opsIssued = 0;
    instrsIssued = 0;
    lastFetchChunk = ~Addr(0);
    icache_.invalidateAll();
    decodeCache.clear();
    pdPool.clear();
    pdIndex.assign(prog ? prog->bytes.size() : 0, -1);
}

} // namespace tm3270
