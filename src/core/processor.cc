#include "core/processor.hh"

#include "isa/semantics.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace tm3270
{

namespace
{

/** Stat key for a functional-unit class. */
const char *
fuStatName(FuClass fu)
{
    switch (fu) {
      case FuClass::Const: return "fu_const";
      case FuClass::Alu: return "fu_alu";
      case FuClass::Shifter: return "fu_shifter";
      case FuClass::Mul: return "fu_mul";
      case FuClass::DspAlu: return "fu_dspalu";
      case FuClass::DspMul: return "fu_dspmul";
      case FuClass::FAlu: return "fu_falu";
      case FuClass::FComp: return "fu_fcomp";
      case FuClass::FTough: return "fu_ftough";
      case FuClass::Branch: return "fu_branch";
      case FuClass::Load: return "fu_load";
      case FuClass::Store: return "fu_store";
      case FuClass::FracLoad: return "fu_fracload";
      case FuClass::SuperLd: return "fu_superld";
      case FuClass::SuperMix: return "fu_supermix";
      case FuClass::Cabac: return "fu_cabac";
      default: return "fu_none";
    }
}

} // namespace

Processor::Processor(MachineConfig cfg_, MainMemory &mem_)
    : cfg(std::move(cfg_)),
      mem(mem_),
      biu_(mem_, cfg.freqMHz),
      lsu_(cfg.lsu, cfg.dcache, biu_, mem_, nullptr),
      icache_(cfg.icache),
      mmio_(lsu_.prefetcher(), [this] { return cycle; })
{
    // The LSU is constructed before the MMIO device it routes to;
    // attach the device now.
    lsu_.setMmio(&mmio_);
}

void
Processor::loadProgram(const EncodedProgram &p)
{
    prog = &p;
    decodeCache.clear();
    pc = 0;
    nextTemplate = std::nullopt; // entry is a jump target
    lastFetchChunk = ~Addr(0);
    redirectCount = -1;
    halted = false;
}

Word
Processor::reg(RegIndex r) const
{
    if (r == regZero)
        return 0;
    if (r == regOne)
        return 1;
    return regs[r];
}

void
Processor::setReg(RegIndex r, Word v)
{
    if (r == regZero || r == regOne)
        return;
    regs[r] = v;
}

Word
Processor::readReg(RegIndex r)
{
    if (cfg.strictLatencyCheck && readyAt[r] > issueTick) {
        fatal("latency violation: r%u read at tick %llu, ready at %llu",
              unsigned(r), (unsigned long long)issueTick,
              (unsigned long long)readyAt[r]);
    }
    stats.inc("regfile_reads");
    return reg(r);
}

void
Processor::scheduleWriteback(RegIndex r, Word v, unsigned latency)
{
    tm_assert(latency >= 1 && latency < wbRingSize, "bad latency %u",
              latency);
    if (r == regZero || r == regOne)
        return; // writes to the constant registers are ignored
    uint64_t due = issueTick + latency;
    if (cfg.strictLatencyCheck && readyAt[r] > due) {
        fatal("WAW ordering violation on r%u (due %llu, pending %llu)",
              unsigned(r), (unsigned long long)due,
              (unsigned long long)readyAt[r]);
    }
    readyAt[r] = due;
    wbRing[due % wbRingSize].push_back({r, v});
}

void
Processor::commitWritebacks()
{
    auto &slot = wbRing[issueTick % wbRingSize];
    for (const auto &wb : slot) {
        regs[wb.reg] = wb.value;
        stats.inc("regfile_writes");
    }
    slot.clear();
}

const DecodedInst &
Processor::decodeAt(Addr addr, std::optional<uint16_t> templ)
{
    auto it = decodeCache.find(addr);
    if (it != decodeCache.end())
        return it->second;
    DecodedInst d = decodeInst(prog->bytes, addr, templ);
    return decodeCache.emplace(addr, std::move(d)).first->second;
}

Cycles
Processor::fetchTiming(Addr addr, uint32_t size)
{
    // The front-end fetches 32-byte aligned chunks into the
    // instruction buffer; each new chunk probes the instruction cache.
    Cycles stall = 0;
    Addr first = alignDown(addr, cfg.fetchChunkBytes);
    Addr last = alignDown(addr + size - 1, cfg.fetchChunkBytes);
    for (Addr chunk = first; chunk <= last; chunk += cfg.fetchChunkBytes) {
        if (chunk == lastFetchChunk ||
            (lastFetchChunk != ~Addr(0) && chunk < lastFetchChunk)) {
            continue;
        }
        lastFetchChunk = chunk;
        stats.inc("icache_accesses");
        stats.inc("icache_tag_reads", cfg.icache.assoc);
        stats.inc("icache_data_reads",
                  cfg.icacheSequential ? 1 : cfg.icache.assoc);
        Addr line = icache_.lineAddrOf(chunk);
        int way = icache_.probe(line);
        if (way >= 0) {
            icache_.touch(line, way);
            continue;
        }
        stats.inc("icache_misses");
        Cycles done = biu_.demandRead(imemTimingBase + line,
                                      icache_.lineBytes(),
                                      cycle + stall);
        stall += done - (cycle + stall);
        Victim v = icache_.allocate(line, way);
        (void)v; // instruction cache lines are never dirty
        icache_.markAllValid(line, way);
    }
    if (stall)
        stats.inc("istall_cycles", stall);
    return stall;
}

unsigned
Processor::effLoadLatency(Opcode opc) const
{
    if (opc == Opcode::LD_FRAC8) {
        // Collapsed loads with interpolation add the two filter
        // stages X5/X6 (paper Fig. 5) on top of the load pipeline.
        return cfg.loadLatency + 2;
    }
    return cfg.loadLatency;
}

void
Processor::step()
{
    commitWritebacks();

    const DecodedInst &di = decodeAt(pc, nextTemplate);
    Cycles stall = fetchTiming(pc, di.size);

    // Gather phase: all operations of a VLIW instruction read the
    // register file in parallel, before any result of this or a later
    // instruction commits.
    struct Gathered
    {
        const Operation *op;
        bool guardVal;
        std::array<Word, 4> src;
        Word storeValue;
    };
    std::array<Gathered, numSlots> g;
    unsigned n_ops = 0;
    unsigned loads_this_inst = 0;

    for (unsigned s = 0; s < numSlots; ++s) {
        const Operation &op = di.inst.slot[s];
        if (!op.used())
            continue;
        const OpInfo &oi = op.info();
        Gathered &ge = g[n_ops++];
        ge.op = &op;
        ge.guardVal = (readReg(op.guard) & 1) != 0;
        ge.src = {0, 0, 0, 0};
        for (unsigned i = 0; i < 4; ++i) {
            if (oi.readsSrc(i))
                ge.src[i] = readReg(op.src[i]);
        }
        ge.storeValue = oi.isStore ? readReg(op.dst[0]) : 0;

        stats.inc(fuStatName(oi.fu));
        if (oi.isLoad) {
            ++loads_this_inst;
            tm_assert(loads_this_inst <= cfg.maxLoadsPerInst,
                      "too many loads in one instruction for %s",
                      cfg.name.c_str());
        }
        // Issue-slot legality (configuration-dependent for loads).
        uint8_t mask = oi.isLoad && !oi.isTwoSlot &&
                               oi.fu != FuClass::FracLoad
                           ? cfg.loadSlotMask
                           : oi.slotMask;
        if (op.opc == Opcode::SUPER_LD32R)
            mask = oi.slotMask;
        tm_assert(mask & slotBit(s + 1), "%s illegal in slot %u",
                  std::string(oi.mnemonic).c_str(), s + 1);
    }

    // Execute phase.
    bool do_halt = false;
    bool branch_taken = false;
    Addr branch_target = 0;

    for (unsigned i = 0; i < n_ops; ++i) {
        const Operation &op = *g[i].op;
        const OpInfo &oi = op.info();
        opsIssued += oi.isTwoSlot ? 2 : 1;

        if (oi.isBranch) {
            bool taken = false;
            Addr target = 0;
            switch (op.opc) {
              case Opcode::JMPT:
                taken = g[i].guardVal;
                target = Addr(op.imm);
                break;
              case Opcode::JMPF:
                taken = !g[i].guardVal;
                target = Addr(op.imm);
                break;
              case Opcode::JMPI:
                taken = true;
                target = Addr(op.imm);
                break;
              case Opcode::JMPR:
                taken = g[i].guardVal;
                target = g[i].src[0];
                break;
              case Opcode::HALT:
                if (g[i].guardVal) {
                    do_halt = true;
                    exitValue = g[i].src[0];
                }
                break;
              default:
                panic("unhandled branch opcode");
            }
            if (taken) {
                tm_assert(!branch_taken && redirectCount < 0,
                          "branch issued while a redirect is pending");
                branch_taken = true;
                branch_target = target;
                stats.inc("branches_taken");
            } else if (op.opc != Opcode::HALT) {
                stats.inc("branches_not_taken");
            }
            continue;
        }

        if (oi.isLoad) {
            if (!g[i].guardVal)
                continue;
            Addr addr = 0;
            Word aux = 0;
            switch (op.opc) {
              case Opcode::LD8S: case Opcode::LD8U:
              case Opcode::LD16S: case Opcode::LD16U:
              case Opcode::LD32D:
                addr = g[i].src[0] + Addr(op.imm);
                break;
              case Opcode::LD32R:
                addr = g[i].src[0] + g[i].src[1];
                break;
              case Opcode::LD32X:
                addr = g[i].src[0] + 4 * g[i].src[1];
                break;
              case Opcode::LD_FRAC8:
                addr = g[i].src[0];
                aux = g[i].src[1];
                break;
              case Opcode::SUPER_LD32R:
                // Sources live in the second operation of the pair
                // (paper Table 2: rsrc3 + rsrc4).
                addr = g[i].src[2] + g[i].src[3];
                break;
              default:
                panic("unhandled load opcode");
            }
            MemResult mr = lsu_.load(op.opc, addr, aux, cycle + stall);
            stall += mr.stall;
            scheduleWriteback(op.dst[0], mr.data[0],
                              effLoadLatency(op.opc));
            if (op.opc == Opcode::SUPER_LD32R) {
                scheduleWriteback(op.dst[1], mr.data[1],
                                  effLoadLatency(op.opc));
            }
            continue;
        }

        if (oi.isStore) {
            if (!g[i].guardVal)
                continue;
            Addr addr = op.opc == Opcode::ST32R
                            ? g[i].src[0] + g[i].src[1]
                            : g[i].src[0] + Addr(op.imm);
            stall += lsu_.store(op.opc, addr, g[i].storeValue,
                                cycle + stall);
            continue;
        }

        if (op.opc == Opcode::PREF) {
            if (g[i].guardVal)
                lsu_.softwarePrefetch(g[i].src[0] + Addr(op.imm),
                                      cycle + stall);
            continue;
        }

        // Pure operation.
        if (!g[i].guardVal)
            continue;
        ExecResult er = execPure(op, g[i].src);
        scheduleWriteback(op.dst[0], er.dst[0], oi.latency);
        if (oi.numDst > 1)
            scheduleWriteback(op.dst[1], er.dst[1], oi.latency);
    }

    // Advance.
    ++instrsIssued;
    ++issueTick;
    cycle += 1 + stall;
    stallTotal += stall;
    if (stall)
        stats.inc("dstall_or_istall_cycles", stall);
    lsu_.tick(cycle);

    if (do_halt) {
        halted = true;
        return;
    }

    if (branch_taken) {
        redirectCount = static_cast<int>(cfg.jumpDelaySlots);
        redirectTarget = branch_target;
    }

    if (redirectCount >= 0 && --redirectCount < 0) {
        pc = redirectTarget;
        nextTemplate = std::nullopt; // jump targets are uncompressed
        lastFetchChunk = ~Addr(0);   // new fetch stream
        redirectCount = -1;
    } else {
        pc += di.size;
        nextTemplate = di.hasNextTemplate
                           ? std::optional<uint16_t>(di.nextTemplate)
                           : std::nullopt;
    }
}

RunResult
Processor::run(uint64_t max_instrs)
{
    tm_assert(prog != nullptr, "no program loaded");
    RunResult r;
    uint64_t start_instrs = instrsIssued;
    Cycles start_cycles = cycle;
    uint64_t start_ops = opsIssued;
    Cycles start_stall = stallTotal;

    while (!halted && instrsIssued - start_instrs < max_instrs) {
        if (pc >= prog->bytes.size())
            fatal("PC 0x%08x ran past the end of the program image", pc);
        step();
    }

    r.halted = halted;
    r.exitValue = exitValue;
    r.cycles = cycle - start_cycles;
    r.instrs = instrsIssued - start_instrs;
    r.ops = opsIssued - start_ops;
    r.stallCycles = stallTotal - start_stall;
    stats.set("cycles", cycle);
    stats.set("instrs", instrsIssued);
    stats.set("ops", opsIssued);
    return r;
}

void
Processor::reset()
{
    regs.fill(0);
    readyAt.fill(0);
    for (auto &slot : wbRing)
        slot.clear();
    issueTick = 0;
    cycle = 0;
    stallTotal = 0;
    pc = 0;
    nextTemplate = std::nullopt;
    redirectCount = -1;
    halted = false;
    exitValue = 0;
    opsIssued = 0;
    instrsIssued = 0;
    lastFetchChunk = ~Addr(0);
    icache_.invalidateAll();
    decodeCache.clear();
}

} // namespace tm3270
