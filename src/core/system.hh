/**
 * @file
 * Convenience wrapper owning a memory and a processor, plus host-side
 * helpers to stage data. All multi-byte values in the simulated memory
 * are big-endian (matching the memory operation semantics).
 */

#ifndef TM3270_CORE_SYSTEM_HH
#define TM3270_CORE_SYSTEM_HH

#include <cstring>
#include <memory>
#include <vector>

#include "core/processor.hh"

namespace tm3270
{

/** A memory plus a processor. */
class System
{
  public:
    explicit System(const MachineConfig &cfg,
                    size_t mem_bytes = 32 * 1024 * 1024)
        : memory(mem_bytes), processor(cfg, memory)
    {}

    MainMemory memory;
    Processor processor;

    /** Write a big-endian 32-bit word to simulated memory. */
    void
    poke32(Addr addr, Word v)
    {
        uint8_t b[4] = {uint8_t(v >> 24), uint8_t(v >> 16),
                        uint8_t(v >> 8), uint8_t(v)};
        memory.write(addr, b, 4);
    }

    /** Read a big-endian 32-bit word from simulated memory. */
    Word
    peek32(Addr addr) const
    {
        uint8_t b[4];
        memory.read(addr, b, 4);
        return (Word(b[0]) << 24) | (Word(b[1]) << 16) | (Word(b[2]) << 8)
               | b[3];
    }

    void
    writeBytes(Addr addr, const void *data, size_t len)
    {
        memory.write(addr, static_cast<const uint8_t *>(data), len);
    }

    void
    readBytes(Addr addr, void *out, size_t len) const
    {
        memory.read(addr, static_cast<uint8_t *>(out), len);
    }

    /**
     * Run a program to completion, flush caches so host code can
     * inspect memory, and return the result.
     */
    RunResult
    runProgram(const EncodedProgram &prog,
               uint64_t max_instrs = 1ull << 40)
    {
        processor.loadProgram(prog);
        RunResult r = processor.run(max_instrs);
        processor.lsu().flushCaches();
        return r;
    }
};

} // namespace tm3270

#endif // TM3270_CORE_SYSTEM_HH
