/**
 * @file
 * Memory-mapped peripherals of the processor: the prefetch region
 * registers (paper §2.3), a cycle counter, and a debug character
 * output used by examples.
 */

#ifndef TM3270_CORE_MMIO_HH
#define TM3270_CORE_MMIO_HH

#include <functional>
#include <string>

#include "lsu/mmio.hh"
#include "prefetch/region_prefetcher.hh"
#include "support/types.hh"

namespace tm3270
{

/** MMIO register map. */
namespace mmio_map
{
inline constexpr Addr base = 0xE0000000;
inline constexpr Addr size = 0x00001000;
/** PFn_START_ADDR at base + 0x10*n, END at +4, STRIDE at +8. */
inline constexpr Addr pfRegion = base + 0x000;
inline constexpr Addr cycleLo = base + 0x100;
inline constexpr Addr cycleHi = base + 0x104;
inline constexpr Addr debugChar = base + 0x200;
} // namespace mmio_map

/** The SoC peripherals visible to the processor. */
class SocMmio : public MmioDevice
{
  public:
    /**
     * @param pf          the prefetcher whose regions the registers
     *                    program
     * @param cycle_fn    returns the current cycle count
     */
    SocMmio(RegionPrefetcher &pf, std::function<Cycles()> cycle_fn);

    bool handles(Addr addr) const override;
    Word read(Addr addr) override;
    void write(Addr addr, Word value) override;

    /** Characters written to the debug output register. */
    const std::string &debugOutput() const { return debugOut; }
    void clearDebugOutput() { debugOut.clear(); }

  private:
    RegionPrefetcher &pf;
    std::function<Cycles()> cycleFn;
    std::string debugOut;

    /** Raw register shadow so reads return what was written. */
    Word pfShadow[RegionPrefetcher::numRegions][3] = {};
};

} // namespace tm3270

#endif // TM3270_CORE_MMIO_HH
