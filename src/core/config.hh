/**
 * @file
 * Machine configurations. Table 6 of the paper defines the TM3260 and
 * TM3270 characteristics; §6 defines the four measured configurations:
 *
 *   A: TM3260 (240 MHz, 16 KB D$, 64 B lines, 8-way,
 *      fetch-on-write-miss, 3-cycle loads, 2 loads/instr, 3 delay
 *      slots, parallel I$)
 *   B: TM3270 core with TM3260 cache capacity at 240 MHz
 *   C: as B at 350 MHz
 *   D: TM3270 (350 MHz, 128 KB D$, 128 B lines, 4-way,
 *      allocate-on-write-miss, 4-cycle loads, 1 load/instr, 5 delay
 *      slots, sequential I$)
 */

#ifndef TM3270_CORE_CONFIG_HH
#define TM3270_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "lsu/lsu.hh"

namespace tm3270
{

/** Full parameterization of one processor configuration. */
struct MachineConfig
{
    std::string name = "tm3270";
    uint32_t freqMHz = 350;

    CacheGeometry icache{"icache", 64 * 1024, 8, 128, false};
    CacheGeometry dcache{"dcache", 128 * 1024, 4, 128, true};
    LsuConfig lsu{};

    /** Architectural load-use latency (Table 6). */
    unsigned loadLatency = 4;
    /** Jump delay slots (Table 6). */
    unsigned jumpDelaySlots = 5;
    /** Issue slots that may hold a load (bitmask, bit s-1 = slot s). */
    uint8_t loadSlotMask = 0x10; // slot 5 only
    /** Maximum loads per VLIW instruction (Table 6). */
    unsigned maxLoadsPerInst = 1;
    /**
     * Sequential instruction cache design (tag then data) as on the
     * TM3270; false models the TM3260's parallel design. Affects the
     * power model's activity counts only.
     */
    bool icacheSequential = true;
    /** Fetch chunk: a 32-byte aligned block per cycle (paper §3). */
    unsigned fetchChunkBytes = 32;
    /**
     * Check that no operation reads a register before its pending
     * writeback is due: catches scheduler latency violations.
     */
    bool strictLatencyCheck = true;

    /** Supply voltage in volts (power model; 1.2 V typical, 0.8 min). */
    double voltage = 1.2;
};

/** Configuration D: the TM3270. */
MachineConfig tm3270Config();

/** Configuration A: the TM3260 baseline. */
MachineConfig tm3260Config();

/** Configuration B: TM3270 core, TM3260 cache capacity, 240 MHz. */
MachineConfig configB();

/** Configuration C: TM3270 core, TM3260 cache capacity, 350 MHz. */
MachineConfig configC();

/** Lookup by letter 'A'..'D'. */
MachineConfig configByLetter(char letter);

} // namespace tm3270

#endif // TM3270_CORE_CONFIG_HH
